"""Figure 7 bench: standard projection vs smart addressing."""

from repro.experiments import fig7_projection


def test_fig7_projection(benchmark, shape):
    result = benchmark.pedantic(fig7_projection.run, rounds=1, iterations=1)
    shape.render(result)

    sa = result.series_named("FV-SA")
    t256 = result.series_named("FV-t256B")
    t512 = result.series_named("FV-t512B")

    # Smart addressing beats the standard scan on 512 B tuples...
    shape.dominates(sa, t512, "fig7")
    # ...but the sequential scan wins for narrow 256 B tuples, i.e. the
    # crossover sits between the two tuple widths (paper §6.3).
    shape.dominates(t256, sa, "fig7")

    # At scale the SA advantage over t512B is roughly the ratio of bytes
    # touched; expect at least 1.5x at the largest point.
    largest = sa.xs[-1]
    assert t512.y_at(largest) / sa.y_at(largest) >= 1.5

    for series in (sa, t256, t512):
        shape.monotonic(series, "fig7")
