"""Property tests: IR -> SQL -> IR round-trips, and execution matches
the serial reference model.

Two properties lock the compiler front end:

* **Structural round-trip** — random canonical IR DAGs rendered through
  :func:`repro.core.ir.render_sql` re-parse to the *identical* tree
  (rendering is fully parenthesized, so operator precedence can never
  reassociate a condition).
* **Differential execution** — the executable subset of those DAGs runs
  through the real engine (single node, offload and ship) and must be
  sha256-identical to :mod:`repro.baselines.sql_model`.

Generator invariants mirror the grammar's own validation rules (tested
separately in test_core_sql.py): grouped queries select only group
columns and aggregates, expression items carry aliases, HAVING
aggregates also appear in the select list, ORDER BY keys come from the
select list, and output names never collide.
"""

from __future__ import annotations

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sql_model import execute_model
from repro.common.records import Column, Schema
from repro.core.api import FarviewClient, canonical_result_bytes
from repro.core.ir import (AggCall, Arith, BoolAnd, BoolNot, BoolOr, Cmp,
                           Col, Distinct, Filter, Join, Lit, Limit, Project,
                           Scan, Sort, render_sql)
from repro.core.node import FarviewNode
from repro.core.table import FTable
from repro.core.ir import Aggregate
from repro.core.compile import parse_sql
from repro.sim.engine import Simulator

T_SCHEMA = Schema([Column("a", "int64"), Column("b", "int64"),
                   Column("c", "int64"), Column("f", "float64")])
D_SCHEMA = Schema([Column("id", "int64"), Column("v", "int64")])

INT_COLS = ("a", "b", "c")
NUM_COLS = INT_COLS + ("f",)
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
AGG_FUNCS = ("count", "sum", "min", "max", "avg")

NUM_ROWS = 64
DIM_ROWS = 16


def make_rows(seed: int = 42) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = T_SCHEMA.empty(NUM_ROWS)
    for name in INT_COLS:
        rows[name] = rng.integers(0, 12, NUM_ROWS)
    rows["f"] = rng.integers(0, 40, NUM_ROWS) * 0.25
    return rows


def make_dim(seed: int = 43) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = D_SCHEMA.empty(DIM_ROWS)
    rows["id"] = np.arange(DIM_ROWS)          # unique build keys
    rows["v"] = rng.integers(0, 100, DIM_ROWS)
    return rows


# -- strategies ---------------------------------------------------------------

cols = st.sampled_from([Col(name) for name in INT_COLS])
int_lits = st.integers(min_value=0, max_value=12).map(Lit)

comparisons = st.builds(Cmp, op=st.sampled_from(CMP_OPS), left=cols,
                        right=int_lits)

conditions = st.recursive(
    comparisons,
    lambda inner: st.one_of(
        st.builds(BoolAnd, left=inner, right=inner),
        st.builds(BoolOr, left=inner, right=inner),
        st.builds(BoolNot, operand=inner)),
    max_leaves=4)

# Single-level arithmetic: col op (col | small literal); '/' only by a
# non-zero literal so the model's python division can never trap where
# numpy would emit inf.
safe_arith = st.one_of(
    st.builds(Arith, op=st.sampled_from(("+", "-", "*")),
              left=cols, right=st.one_of(cols, int_lits)),
    st.builds(Arith, op=st.just("/"), left=cols,
              right=st.integers(min_value=2, max_value=9).map(Lit)))


@st.composite
def plain_selects(draw):
    """Non-aggregated SELECT: columns + aliased expressions, optional
    DISTINCT / WHERE / ORDER BY / LIMIT (and optionally one join)."""
    star = draw(st.booleans())
    join = draw(st.booleans())
    items: list[tuple] = []
    out_names: list[str] = []
    if star:
        out_names = list(INT_COLS) + ["f"] + (["v"] if join else [])
    else:
        picked = draw(st.lists(st.sampled_from(NUM_COLS + (("v",) if join
                                                           else ())),
                               min_size=1, max_size=4, unique=True))
        for name in picked:
            items.append((Col(name), None))
            out_names.append(name)
        for i, expr in enumerate(draw(st.lists(safe_arith, max_size=2))):
            alias = f"e{i}"
            items.append((expr, alias))
            out_names.append(alias)
    rel = Scan("t")
    if join:
        rel = Join(rel, "d", Col("a"), Col("id"))
    condition = draw(st.none() | conditions)
    if condition is not None:
        rel = Filter(rel, condition)
    rel = Project(rel, items=tuple(items), star=star)
    if draw(st.booleans()):
        rel = Distinct(rel)
    sort_names = draw(st.lists(st.sampled_from(out_names), max_size=2,
                               unique=True))
    if sort_names:
        rel = Sort(rel, tuple((Col(name), draw(st.booleans()))
                              for name in sort_names))
    limit = draw(st.none() | st.integers(min_value=1, max_value=32))
    if limit is not None:
        rel = Limit(rel, limit)
    return rel


@st.composite
def aggregate_selects(draw):
    """Grouped / whole-table aggregation with optional HAVING and
    ORDER BY over the output columns."""
    group_names = draw(st.lists(st.sampled_from(INT_COLS), max_size=2,
                                unique=True))
    aggs: list[AggCall] = []
    n_aggs = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_aggs):
        func = draw(st.sampled_from(AGG_FUNCS))
        if func == "count" and draw(st.booleans()):
            arg = None
        elif draw(st.booleans()):
            arg = Col(draw(st.sampled_from(NUM_COLS)))
        else:
            arg = draw(safe_arith)
        aggs.append(AggCall(func, arg, alias=f"g{i}"))
    having = None
    if group_names and draw(st.booleans()):
        target = draw(st.sampled_from(aggs))
        having = Cmp(draw(st.sampled_from(CMP_OPS)),
                     AggCall(target.func, target.arg, alias=""),
                     Lit(draw(st.integers(min_value=0, max_value=20))))
    condition = draw(st.none() | conditions)
    rel = Scan("t")
    if condition is not None:
        rel = Filter(rel, condition)
    rel = Aggregate(rel, tuple(Col(n) for n in group_names),
                    tuple(aggs), having)
    items = ([(Col(n), None) for n in group_names]
             + [(agg, None) for agg in aggs])
    rel = Project(rel, items=tuple(items), star=False)
    out_names = list(group_names) + [agg.alias for agg in aggs]
    sort_names = draw(st.lists(st.sampled_from(out_names), max_size=2,
                               unique=True))
    if sort_names:
        rel = Sort(rel, tuple((Col(name), draw(st.booleans()))
                              for name in sort_names))
    limit = draw(st.none() | st.integers(min_value=1, max_value=8))
    if limit is not None:
        rel = Limit(rel, limit)
    return rel


select_dags = st.one_of(plain_selects(), aggregate_selects())


# -- properties ---------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(select_dags)
def test_render_parse_roundtrip(rel):
    """render_sql(ir) re-parses to the structurally identical DAG."""
    statement = render_sql(rel)
    parsed = parse_sql(statement)
    assert parsed.ir == rel, (
        f"round-trip changed the DAG for {statement!r}:\n"
        f"  sent   {rel}\n  got    {parsed.ir}")
    # And rendering is a fixpoint: render(parse(render(ir))) == render(ir).
    assert render_sql(parsed.ir) == statement


def _engine_client() -> FarviewClient:
    client = FarviewClient(FarviewNode(Simulator()))
    client.open_connection()
    for name, schema, rows in (("t", T_SCHEMA, make_rows()),
                               ("d", D_SCHEMA, make_dim())):
        table = FTable(name, schema, len(rows))
        client.alloc_table_mem(table)
        client.table_write(table, rows)
    return client


MODEL_TABLES = {"t": (T_SCHEMA, make_rows()), "d": (D_SCHEMA, make_dim())}


@settings(max_examples=40, deadline=None)
@given(select_dags)
def test_execution_matches_model(rel):
    """The engine's bytes (offload and ship) equal the serial model's."""
    statement = render_sql(rel)
    schema, rows = execute_model(statement, MODEL_TABLES)
    expected = hashlib.sha256(schema.to_bytes(rows)).hexdigest()
    for placement in ("offload", "ship"):
        client = _engine_client()
        result, _ = client.sql(statement, placement=placement)
        digest = hashlib.sha256(
            canonical_result_bytes(result)).hexdigest()
        assert digest == expected, (
            f"{placement} diverged from the model for {statement!r} "
            f"({len(rows)} model rows)")
