"""Queue pairs and client-side receive buffers (paper §4.3).

"In RDMA, the information describing a single node-to-node connection or
RDMA flow is associated with a queue pair. Farview identifies flows using
such queue pairs" — each QP carries a unique id used for routing, fair
arbitration, and isolation, plus credit-based flow control state.

The client posts a *local buffer* into which Farview's one-sided writes
deposit results; :class:`ClientBuffer` models that memory functionally.
"""

from __future__ import annotations

import itertools

from ..common.errors import NetworkError
from ..sim.engine import Simulator
from ..sim.resources import CreditPool

_qp_ids = itertools.count(1)


class ClientBuffer:
    """Client-local memory region receiving one-sided RDMA writes."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise NetworkError(f"client buffer needs positive capacity: {capacity}")
        self.capacity = capacity
        self._data = bytearray(capacity)
        self.bytes_received = 0

    def deposit(self, offset: int, chunk: bytes) -> None:
        """Land one packet's payload at ``offset`` (out-of-order friendly)."""
        if offset < 0 or offset + len(chunk) > self.capacity:
            raise NetworkError(
                f"deposit [{offset}, +{len(chunk)}) overflows client buffer "
                f"of {self.capacity} bytes")
        self._data[offset:offset + len(chunk)] = chunk
        self.bytes_received += len(chunk)

    def read(self, offset: int = 0, length: int | None = None) -> bytes:
        if length is None:
            length = self.capacity - offset
        if offset < 0 or offset + length > self.capacity:
            raise NetworkError(
                f"read [{offset}, +{length}) overflows client buffer")
        return bytes(self._data[offset:offset + length])

    def reset(self) -> None:
        self._data = bytearray(self.capacity)
        self.bytes_received = 0


class QueuePair:
    """One RDMA flow: routing id, credits, and the client receive buffer."""

    def __init__(self, sim: Simulator, buffer_capacity: int,
                 credits: int, qp_id: int | None = None):
        self.qp_id = qp_id if qp_id is not None else next(_qp_ids)
        self.sim = sim
        self.buffer = ClientBuffer(buffer_capacity)
        self.credits = CreditPool(sim, credits, name=f"qp{self.qp_id}")
        self.connected = False
        self.region_index: int | None = None
        self.domain: int | None = None
        self.requests_sent = 0
        self.responses_received = 0

    def __repr__(self) -> str:
        state = "connected" if self.connected else "idle"
        return f"QueuePair(id={self.qp_id}, {state}, region={self.region_index})"
