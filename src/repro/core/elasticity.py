"""Query-processing elasticity: admission control and region leasing.

The paper defers "query processing elasticity" to future work (§1).  This
module provides the mechanism: instead of failing when all dynamic regions
are busy, tenants can *wait* for a region lease, and short-lived query
threads can attach/detach without holding a region idle.

:class:`RegionLeaseManager` wraps a node with a FIFO admission queue:

* :meth:`acquire` — a process that resolves to an open connection as soon
  as a region frees up (FIFO order, no starvation);
* :meth:`release` — closes the connection and wakes the next waiter;
* :meth:`with_lease` — convenience process: acquire, run a client
  function, release — the borrow pattern compute-side query threads use.
"""

from __future__ import annotations

from collections import deque

from ..common.errors import RegionUnavailableError
from ..sim.engine import Event, Simulator
from .api import FarviewClient
from .node import FarviewNode


class RegionLeaseManager:
    """FIFO admission control over a node's dynamic regions."""

    def __init__(self, node: FarviewNode,
                 buffer_capacity: int = 8 * 1024 * 1024):
        self.node = node
        self.sim: Simulator = node.sim
        self.buffer_capacity = buffer_capacity
        self._waiters: deque[Event] = deque()
        self.leases_granted = 0
        self.max_queue_depth = 0

    # -- lease lifecycle ---------------------------------------------------------
    def acquire(self):
        """Process: resolves to a connected :class:`FarviewClient`."""
        while True:
            try:
                client = FarviewClient(self.node, self.buffer_capacity)
                client.open_connection()
                self.leases_granted += 1
                return client
            except RegionUnavailableError:
                ticket = self.sim.event()
                self._waiters.append(ticket)
                self.max_queue_depth = max(self.max_queue_depth,
                                           len(self._waiters))
                yield ticket  # woken by a release

    def release(self, client: FarviewClient) -> None:
        """Return the lease; wakes the oldest waiter."""
        client.close_connection()
        if self._waiters:
            self._waiters.popleft().succeed()

    def with_lease(self, fn):
        """Process: borrow a client, run ``fn`` (a process function taking
        the client), release — even if ``fn`` raises."""
        client = yield from self.acquire()
        try:
            result = yield from fn(client)
        finally:
            self.release(client)
        return result

    @property
    def queued(self) -> int:
        return len(self._waiters)
