"""Calibration constants for the timing models.

Every constant is annotated with its provenance: either a number stated in
the Farview paper (cited by section/figure) or a value chosen so the
simulated curves reproduce the *shape* of the paper's measured curves
(orderings, ratios, crossovers).  Absolute microseconds are not the target —
the authors ran on an Alveo u250 + ConnectX-5 testbed, we run a simulator.

Constants are grouped by subsystem.  :mod:`repro.common.config` exposes them
as dataclass defaults so experiments can override any of them.
"""

from __future__ import annotations

from .units import GBPS, KB, MB, US, gbit, mhz_cycle_ns

# ---------------------------------------------------------------------------
# Network (paper §4.3, §6.2, Figure 6)
# ---------------------------------------------------------------------------

#: Line rate of the 100 Gbps RoCE v2 link (paper §1, §6.1). 12.5 B/ns raw.
NETWORK_LINE_RATE = gbit(100.0)

#: Packet payload size used throughout the evaluation (paper §6.2: "We set
#: the packet size to 1 kB").
PACKET_SIZE = 1 * KB

#: RoCE v2 per-packet header overhead: Eth(14+4) + IP(20) + UDP(8) + BTH(12)
#: + RETH(16) + ICRC(4) ≈ 78 bytes; rounded to 80 for inter-frame gap share.
PACKET_HEADER_OVERHEAD = 80

#: One-way propagation + switch latency inside the XACC cluster (single
#: switch hop).  Chosen so small-transfer RTTs land in the 2-3 us band of
#: Figure 6(b).
LINK_ONE_WAY_LATENCY_NS = 750.0

#: Fixed processing *latency* of the FPGA network stack per request
#: (request parsing, QP lookup, response generation) — the pipeline depth a
#: request traverses on the 250 MHz softcore stack.  Higher than the
#: commercial NIC's, which is why RNIC wins response time at small
#: transfers (Fig 6(b) discussion).
FV_NIC_REQUEST_OVERHEAD_NS = 1_200.0

#: Per-request *occupancy* of the request engine (issue rate limit).  The
#: stack is deeply pipelined, so requests can be accepted far faster than
#: any single one completes.
FV_REQUEST_ISSUE_NS = 100.0

#: Per-packet processing *occupancy* in the FPGA network stack's send path.
#: Zero: the 64 B x 250 MHz datapath (16 GBps) outruns the 100 Gbps line
#: rate, so per-packet work pipelines entirely behind wire serialization
#: ("operator processing overhead can be efficiently hidden", §5.1) and FV
#: reads peak at wire goodput (~12 GBps, Fig 6(a)).
FV_PER_PACKET_OVERHEAD_NS = 0.0

#: Per-packet overhead of the commercial NIC's *latency* path, including
#: per-packet PCIe fetch handling ("the multi-packet processing and page
#: handling in the FPGA network stack performs better", Fig 6(b)).
#: Calibrated so FV's response-time advantage at 32 kB reaches the
#: paper's ">= 20%" while RNIC stays ahead below ~4 kB.
RNIC_PER_PACKET_OVERHEAD_NS = 160.0

#: Per-packet cost on the RNIC's *pipelined* (throughput) path — DMA
#: engines overlap fetches, so the sustained cost is lower.
RNIC_PIPELINED_PER_PACKET_NS = 90.0

#: Fixed request latency of the commercial NIC path (doorbell, WQE fetch).
RNIC_REQUEST_OVERHEAD_NS = 400.0

#: Per-request issue occupancy of the commercial NIC.
RNIC_REQUEST_ISSUE_NS = 50.0

#: PCIe Gen3 x16 effective bandwidth cap for the RNIC path (Fig 6(a):
#: "throughput peaks at ~11 GBps because it is bound by the PCIe bus").
RNIC_PCIE_BANDWIDTH = 11.0 * GBPS

#: Extra first-access latency for crossing PCIe to host DRAM on the RNIC
#: path (Fig 6(b): "The difference during reads is ~1 us, consistent with
#: PCIe latencies"; DMA pipelining hides part of it).
RNIC_PCIE_LATENCY_NS = 700.0

#: Outstanding-request window used by the throughput microbenchmarks
#: (standard RDMA read benchmarking practice; paper §6.2 saturates the
#: network by varying transfer size under a fixed in-flight window).
THROUGHPUT_WINDOW = 16

#: Per-request overhead of a scattered (non-sequential) DRAM access, used
#: by the smart-addressing timing model: bank activate/precharge for each
#: discrete column request (§5.2).  Calibrated so the Figure 7 crossover
#: between standard projection and smart addressing falls between 256 B
#: and 512 B tuples, as the paper reports.
SA_REQUEST_OVERHEAD_NS = 30.0

#: Peak effective throughput of FV reads ("Reading from local on-board FPGA
#: memory peaks at 12 GBps", Fig 6(a)).  Emerges from line rate minus header
#: overhead; kept as an assertion anchor for tests.
FV_PEAK_READ_GBPS = 12.0

# ---------------------------------------------------------------------------
# Memory stack (paper §4.4, §6.1)
# ---------------------------------------------------------------------------

#: Theoretical bandwidth of one on-board DRAM channel (paper §4.4: 64 B wide
#: controller at 300 MHz -> ~18 GBps; §6.1 repeats "maximum theoretical
#: bandwidth of 18GB/s").
DRAM_CHANNEL_BANDWIDTH = 18.0 * GBPS

#: Sustained fraction of theoretical DRAM bandwidth (row misses, refresh).
DRAM_EFFICIENCY = 0.90

#: DRAM access latency for the first beat of a burst (CAS + controller).
DRAM_ACCESS_LATENCY_NS = 90.0

#: Number of channels used in the paper's experiments (§6.1: "we used two of
#: the four available channels").
DRAM_CHANNELS = 2

#: Capacity per channel (§6.1 hardware: 16 GB per channel).  The simulator
#: backs channels with real bytearrays, so the default is sized for the
#: paper's working sets (tables up to a few MB, six concurrent clients);
#: experiments that need more override it.
DRAM_CHANNEL_CAPACITY = 64 * MB

#: MMU page size (§4.4: "naturally aligned 2 MB pages").
PAGE_SIZE = 2 * MB

#: TLB hit latency (BRAM lookup, 1 cycle at 300 MHz) and miss penalty.
TLB_HIT_LATENCY_NS = mhz_cycle_ns(300.0)
TLB_MISS_PENALTY_NS = 12 * mhz_cycle_ns(300.0)

#: Memory-stack clock (§4.1: 300 MHz).
MEMORY_CLOCK_MHZ = 300.0

# ---------------------------------------------------------------------------
# Operator stack / FPGA fabric (paper §4.1, §4.5, §5)
# ---------------------------------------------------------------------------

#: Operator and network stack clock (§4.1: 250 MHz).
OPERATOR_CLOCK_MHZ = 250.0

#: Datapath width into/out of a dynamic region (§4.5: 64-byte datapath,
#: 512 bit * N_DDR_CHAN into the region).
DATAPATH_BYTES = 64

#: Number of dynamic regions deployed in the evaluation (§6.1).
DYNAMIC_REGIONS = 6

#: Pipeline fill latency of a typical operator pipeline, in operator-clock
#: cycles (deep pipelining, §4.1).
PIPELINE_FILL_CYCLES = 48

#: Partial reconfiguration time for a dynamic region (§3.2: "on the order of
#: milliseconds").
RECONFIGURATION_TIME_NS = 4.0 * 1e6  # 4 ms

#: Latency added by the group-by flush phase per group entry (hash-table
#: lookup + queue pop + send preparation), in operator cycles.
GROUPBY_FLUSH_CYCLES_PER_GROUP = 4

#: LRU shift-register depth (one slot per cuckoo table; §5.4: latency
#: "depends on the number of cuckoo hash tables").
LRU_CACHE_DEPTH_PER_TABLE = 4

#: Number of cuckoo hash tables looked up in parallel (§5.4).
CUCKOO_TABLES = 4

#: Capacity of each on-chip cuckoo hash table in entries.  BRAM-bounded; the
#: paper's multi-client experiment keeps distinct counts small.
CUCKOO_TABLE_SLOTS = 16_384

#: Maximum evictions followed before an insert overflows to the client.
CUCKOO_MAX_KICKS = 32

# ---------------------------------------------------------------------------
# CPU baselines (paper §6.1: Xeon 6248 @3.0-3.7 GHz local, Xeon 6154 remote)
# ---------------------------------------------------------------------------

#: Single-thread streaming read bandwidth from DRAM (cold cache).  A Xeon
#: Gold sustains ~12-15 GBps per core on streaming loads.
CPU_DRAM_READ_BANDWIDTH = 12.0 * GBPS

#: Single-thread streaming write bandwidth to DRAM (write allocate makes
#: writes cost roughly 2x reads per byte moved).
CPU_DRAM_WRITE_BANDWIDTH = 8.0 * GBPS

#: Fixed software overhead per query invocation (syscall-free hot loop, but
#: timer reads, setup of output buffers).  Keeps small-input LCPU times in
#: the tens-of-us band of Figures 8-9.
CPU_QUERY_SETUP_NS = 15_000.0

#: Per-tuple cost of the scalar selection/projection loop (predicate eval,
#: branch, copy decision) on the local CPU.
CPU_SELECT_COST_PER_TUPLE_NS = 1.6

#: Per-tuple cost of hashing + hash-map probe/insert (parallel-hashmap,
#: "very fast hash map library", §6.5) when the map fits in cache.
CPU_HASH_COST_PER_TUPLE_NS = 12.0

#: Amortized extra per-tuple cost from hash-map growth/rehashing when the
#: number of resident entries keeps growing (Fig 9(a): "memory resizing of
#: the hash table as more elements are added").
CPU_HASH_RESIZE_COST_PER_TUPLE_NS = 16.0

#: Per-tuple cost of updating aggregate state in a group-by (on top of the
#: hash probe): read-modify-write of the accumulator fields.
CPU_AGG_UPDATE_COST_PER_TUPLE_NS = 10.0

#: RE2 matching cost per input byte (LCPU baseline, §6.6).  RE2 streams at
#: roughly 0.7-1.4 GB/s for simple patterns on one core.
CPU_RE2_COST_PER_BYTE_NS = 1.0

#: Cryptopp AES-128-CTR cost per byte on one core without AES-NI pipelining
#: losses (~1.3 GB/s effective with cold data, §6.7).
CPU_AES_COST_PER_BYTE_NS = 0.75

#: Two-sided RDMA software round-trip overhead on the RCPU baseline
#: (request post, completion polling on both sides).
RCPU_TWO_SIDED_OVERHEAD_NS = 3_500.0

#: Multi-process interference factor per additional active CPU client
#: sharing DRAM + LLC (Fig 12 discussion).  Effective bandwidth of each
#: process is divided by (1 + factor * (nclients - 1)).
CPU_INTERFERENCE_FACTOR = 0.55

#: Aggregate DRAM bandwidth of the CPU socket shared by all processes.
CPU_SOCKET_DRAM_BANDWIDTH = 40.0 * GBPS

# ---------------------------------------------------------------------------
# Reporting anchors used by tests (paper-quoted values)
# ---------------------------------------------------------------------------

#: Figure 6(b) anchor: FV response-time advantage at large transfers >= 20 %.
FV_LARGE_TRANSFER_LATENCY_ADVANTAGE = 0.20

#: Figure 8 anchor: FV-V ~2x faster than FV at 25 % selectivity.
FV_V_SPEEDUP_AT_25PCT = 2.0

#: TPC-H Q6 selectivity quoted in §5.3 ("only 2% of the data is finally
#: selected").
TPCH_Q6_SELECTIVITY = 0.02

#: Small-transfer regime where RNIC beats FV (Fig 6: "Below 4 kB ... RNIC
#: achieves better throughput").
RNIC_ADVANTAGE_BELOW_BYTES = 4 * KB

#: Microsecond band sanity-check for single-table experiments (Figures 8-12
#: report tens to hundreds of microseconds).
EXPECTED_RESPONSE_TIME_BAND_US = (1.0, 2_000.0)


def operator_cycle_ns() -> float:
    """Clock period of the operator/network stacks."""
    return mhz_cycle_ns(OPERATOR_CLOCK_MHZ)


def memory_cycle_ns() -> float:
    """Clock period of the memory stack."""
    return mhz_cycle_ns(MEMORY_CLOCK_MHZ)


def pipeline_fill_latency_ns() -> float:
    """Time for the first tuple to traverse an operator pipeline."""
    return PIPELINE_FILL_CYCLES * operator_cycle_ns()


def reconfiguration_latency_ns(region_fraction: float = 1.0) -> float:
    """Partial-reconfiguration time scaled by relative region size.

    The paper notes the swap takes milliseconds "depending on the size of
    the region" (§3.2).
    """
    if not 0.0 < region_fraction <= 1.0:
        raise ValueError(f"region_fraction out of (0, 1]: {region_fraction}")
    return RECONFIGURATION_TIME_NS * region_fraction
