"""Tallies, medians, percentiles, series, throughput meters."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import Series, Tally, ThroughputMeter, median, percentile


def test_tally_basic():
    t = Tally("lat")
    t.record_many([1.0, 2.0, 3.0, 4.0])
    assert t.count == 4
    assert t.mean == pytest.approx(2.5)
    assert t.minimum == 1.0
    assert t.maximum == 4.0
    assert t.stdev == pytest.approx(1.2909944, rel=1e-6)


def test_tally_empty_mean_is_nan():
    assert math.isnan(Tally().mean)


def test_tally_single_value_zero_variance():
    t = Tally()
    t.record(5.0)
    assert t.variance == 0.0


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == pytest.approx(2.5)


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_percentile():
    values = list(map(float, range(1, 101)))
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=100))
def test_median_is_order_statistic(values):
    m = median(values)
    below = sum(1 for v in values if v <= m)
    above = sum(1 for v in values if v >= m)
    assert below >= len(values) / 2
    assert above >= len(values) / 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=200))
def test_tally_mean_matches_numpy_semantics(values):
    t = Tally()
    t.record_many(values)
    assert t.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-9)


def test_series():
    s = Series("FV")
    s.add(64, 100.0, runs=10)
    s.add(128, 180.0)
    assert s.xs == [64, 128]
    assert s.ys == [100.0, 180.0]
    assert s.y_at(64) == 100.0
    assert len(s) == 2
    with pytest.raises(KeyError):
        s.y_at(999)


def test_throughput_meter():
    m = ThroughputMeter()
    m.record(1000, 100.0)  # 10 B/ns
    m.record(1000, 100.0)
    assert m.gbps == pytest.approx(10.0)


def test_throughput_meter_empty_is_zero():
    assert ThroughputMeter().gbps == 0.0


def test_throughput_meter_rejects_negative_time():
    with pytest.raises(ValueError):
        ThroughputMeter().record(1, -1.0)
