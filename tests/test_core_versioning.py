"""Versioned write path: MVCC snapshot isolation, delta segments,
compaction, and the cluster-wide two-phase epoch broadcast.

The central property, asserted many ways below: a reader that opened
epoch E returns bytes sha256-identical to a quiesced scan at E — with
concurrent writers, with compaction running mid-scan, single-node and on
a 4-node cluster.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.common.config import FarviewConfig, MemoryConfig
from repro.common.errors import QueryError
from repro.common.records import Column, Schema, default_schema
from repro.core.api import ClusterClient, FarviewClient, canonical_result_bytes
from repro.core.cluster import FarviewCluster
from repro.core.cost_model import PlanStats
from repro.core.node import FarviewNode
from repro.core.partition import PartitionSpec
from repro.core.query import JoinSpec, Query, group_by_sum, select_distinct
from repro.core.versioning import (ROWID_COLUMN, VersionedTable, delta_schema,
                                   rows_from_literals)
from repro.operators.selection import And, Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import make_rows

KB = 1024
MB = 1024 * KB

#: Small pages so many-segment chains never exhaust the striped allocator.
TEST_CONFIG = FarviewConfig(memory=MemoryConfig(
    channels=2, channel_capacity=8 * MB, page_size=64 * KB))


def sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def make_client(sim=None, config=TEST_CONFIG):
    sim = sim if sim is not None else Simulator()
    client = FarviewClient(FarviewNode(sim, config))
    client.open_connection()
    return client


def seeded_rows(schema, n, seed, start_a=0):
    rows = make_rows(schema, n, seed=seed)
    rows["a"] = np.arange(start_a, start_a + n)
    return rows


def full_scan_query(schema):
    return Query(projection=tuple(schema.names), label="read")


#: Dimension side of the machines' join actions.
JOIN_DIM_SCHEMA = Schema([Column("id", "int64"), Column("rate", "float64")])


def make_join_dim(num_keys=64):
    rows = JOIN_DIM_SCHEMA.empty(num_keys)
    rows["id"] = np.arange(num_keys)
    rows["rate"] = np.arange(num_keys) * 0.5
    return rows


def join_expected_bytes(fact_rows, fact_schema, dim_rows):
    """Serial re-execution model of ``fact JOIN dim ON a = id``."""
    out_schema = Schema(list(fact_schema.columns)
                        + [Column("rate", "float64")])
    build = {int(k): i for i, k in enumerate(dim_rows["id"])}
    picks, rates = [], []
    for i in range(len(fact_rows)):
        j = build.get(int(fact_rows["a"][i]))
        if j is not None:
            picks.append(i)
            rates.append(float(dim_rows["rate"][j]))
    out = out_schema.empty(len(picks))
    for name in fact_schema.names:
        out[name] = fact_rows[name][picks]
    out["rate"] = rates
    return out_schema.to_bytes(out)


# ---------------------------------------------------------------------------
# Basic write-path semantics
# ---------------------------------------------------------------------------

class TestWriteVerbs:
    def test_epoch_lifecycle_and_as_of(self):
        client = make_client()
        schema = default_schema()
        rows = seeded_rows(schema, 64, seed=1)
        vt = client.create_versioned_table("t", schema, rows)
        assert (vt.epoch, vt.oldest_epoch, vt.num_rows) == (0, 0, 64)

        extra = seeded_rows(schema, 8, seed=2, start_a=1000)
        epoch, _ = client.insert(vt, extra)
        assert epoch == 1 and vt.num_rows == 72

        epoch, _ = client.update_where(vt, Compare("a", "<", 10), {"c": 7})
        assert epoch == 2 and vt.num_rows == 72

        epoch, _ = client.delete_where(vt, Compare("a", ">=", 1004))
        assert epoch == 3 and vt.num_rows == 68

        model = np.concatenate([rows, extra])
        m2 = model.copy()
        m2["c"][m2["a"] < 10] = 7
        m3 = m2[m2["a"] < 1004]
        query = full_scan_query(schema)
        for as_of, expected in [(0, rows), (1, model), (2, m2), (3, m3)]:
            result, _ = client.scan_versioned(vt, query, as_of=as_of)
            assert result.data == schema.to_bytes(expected), f"epoch {as_of}"

    def test_no_match_writes_commit_noop_epochs(self):
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 16, seed=3))
        epoch, _ = client.update_where(vt, Compare("a", ">", 10**9), {"c": 1})
        assert epoch == 1 and vt.num_deltas == 0
        epoch, _ = client.delete_where(vt, Compare("a", ">", 10**9))
        assert epoch == 2 and vt.num_deltas == 0
        result, _ = client.scan_versioned(vt, full_scan_query(schema),
                                          as_of=1)
        base, _ = client.scan_versioned(vt, full_scan_query(schema), as_of=0)
        assert result.data == base.data

    def test_delete_then_reinsert_uses_fresh_rowids(self):
        client = make_client()
        schema = default_schema()
        rows = seeded_rows(schema, 8, seed=4)
        vt = client.create_versioned_table("t", schema, rows)
        client.delete_where(vt, None)                  # delete everything
        assert vt.num_rows == 0
        client.insert(vt, rows)
        result, _ = client.scan_versioned(vt, full_scan_query(schema))
        assert result.data == schema.to_bytes(rows)

    def test_reserved_rowid_column_rejected(self):
        client = make_client()
        schema = Schema([Column(ROWID_COLUMN, "uint64", 8),
                         Column("x", "int64", 8)])
        with pytest.raises(QueryError, match="reserved"):
            client.create_versioned_table("t", schema, schema.empty(4))

    def test_smart_addressing_rejected_on_versioned_scan(self):
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 16, seed=5))
        query = Query(projection=("a", "b"), smart_addressing=True)
        with pytest.raises(QueryError, match="smart addressing"):
            client.scan_versioned(vt, query)

    def test_rows_from_literals_types_and_errors(self):
        schema = Schema([Column("i", "int64", 8), Column("f", "float64", 8),
                         Column("s", "char", 4)])
        rows = rows_from_literals(schema, [(1, 2.5, "ab"), (-3, 4, "")])
        assert rows["i"].tolist() == [1, -3]
        assert rows["f"].tolist() == [2.5, 4.0]
        assert rows["s"].tolist() == [b"ab", b""]
        with pytest.raises(QueryError, match="does not fit"):
            rows_from_literals(schema, [(1, 2.0, "toolong")])
        with pytest.raises(QueryError, match="3 columns"):
            rows_from_literals(schema, [(1, 2.0)])
        with pytest.raises(QueryError, match="non-integral"):
            rows_from_literals(schema, [(1.5, 2.0, "x")])
        with pytest.raises(QueryError, match="out of range"):
            rows_from_literals(schema, [(2 ** 70, 2.0, "x")])


class TestCompaction:
    def test_compaction_preserves_bytes_and_frees_segments(self):
        client = make_client()
        node = client.node
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 256, seed=6))
        client.update_where(vt, Compare("a", "<", 64), {"d": 1})
        client.insert(vt, seeded_rows(schema, 32, seed=7, start_a=5000))
        client.delete_where(vt, Compare("a", ">=", 5016))
        before, _ = client.scan_versioned(vt, full_scan_query(schema))
        assert vt.num_deltas == 3

        free_before = node.mmu.allocator.free_pages
        epoch, _ = client.compact(vt)
        assert vt.num_deltas == 0 and vt.compactions == 1
        assert epoch == vt.epoch == vt.oldest_epoch == 3
        assert node.mmu.allocator.free_pages >= free_before  # chain folded
        after, _ = client.scan_versioned(vt, full_scan_query(schema))
        assert after.data == before.data

    def test_pre_compaction_epochs_become_unreadable(self):
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 32, seed=8))
        client.update_where(vt, Compare("a", "<", 4), {"c": 1})
        client.compact(vt)
        with pytest.raises(QueryError, match="not readable"):
            client.scan_versioned(vt, full_scan_query(schema), as_of=0)

    def test_compacting_empty_visible_set_refuses(self):
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 8, seed=9))
        client.delete_where(vt, None)
        with pytest.raises(Exception, match="cannot compact"):
            client.compact(vt)


class TestDropTable:
    def test_drop_plain_table_by_handle_and_name(self):
        client = make_client()
        node = client.node
        schema = default_schema()
        free0 = node.mmu.allocator.free_pages
        from repro.core.table import FTable
        table = FTable("p", schema, 64)
        client.alloc_table_mem(table)
        client.table_write(table, seeded_rows(schema, 64, seed=10))
        client.drop_table(table)
        assert node.mmu.allocator.free_pages == free0
        assert "p" not in client.catalog

        table2 = FTable("q", schema, 64)
        client.alloc_table_mem(table2)
        client.drop_table("q")
        assert node.mmu.allocator.free_pages == free0

    def test_drop_versioned_table_frees_whole_chain(self):
        client = make_client()
        node = client.node
        free0 = node.mmu.allocator.free_pages
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 64, seed=11))
        client.update_where(vt, Compare("a", "<", 8), {"c": 1})
        client.insert(vt, seeded_rows(schema, 8, seed=12, start_a=900))
        client.compact(vt)
        client.update_where(vt, Compare("a", "<", 4), {"c": 2})
        client.drop_table(vt)
        assert node.mmu.allocator.free_pages == free0
        assert "t" not in client.catalog

    def test_cluster_drop_reuses_single_node_drop(self):
        sim = Simulator()
        cluster = FarviewCluster(sim, 2, TEST_CONFIG)
        cc = ClusterClient(cluster)
        cc.open_connection()
        free0 = [n.mmu.allocator.free_pages for n in cluster.nodes]
        schema = default_schema()
        rows = seeded_rows(schema, 64, seed=13)
        st_plain = cc.create_table("p", schema, rows)
        st_versioned = cc.create_versioned_table("v", schema, rows)
        cc.update_where(st_versioned, Compare("a", "<", 10), {"c": 5})
        cc.drop_table(st_plain)
        cc.drop_table(st_versioned)
        assert [n.mmu.allocator.free_pages for n in cluster.nodes] == free0
        assert "p" not in cc.catalog and "v" not in cc.catalog


# ---------------------------------------------------------------------------
# Snapshot isolation under concurrency
# ---------------------------------------------------------------------------

class TestScanUnderUpdate:
    def test_scan_pins_epoch_against_concurrent_writer(self):
        client = make_client()
        sim = client.sim
        schema = default_schema()
        rows = seeded_rows(schema, 2048, seed=14)
        vt = client.create_versioned_table("t", schema, rows)
        query = select_distinct(["c"])
        client.scan_versioned(vt, query)           # deploy

        captured = {}

        def reader():
            captured["epoch"] = vt.epoch
            result = yield from client.scan_versioned_proc(vt, query)
            captured["result"] = result
            captured["epoch_at_finish"] = vt.epoch

        def writer():
            for batch in range(3):
                yield from client.update_where_proc(
                    vt, Compare("a", "<", 500 * (batch + 1)),
                    {"c": 10_000 + batch})

        procs = [sim.process(reader()), sim.process(writer())]
        sim.run()
        assert all(p.triggered for p in procs)
        # The writer really did commit while the scan was in flight.
        assert captured["epoch_at_finish"] > captured["epoch"]
        replay, _ = client.scan_versioned(vt, query,
                                          as_of=captured["epoch"])
        assert replay.data == captured["result"].data
        assert vt.active_pins == 0

    def test_compaction_mid_scan_defers_frees_until_reader_ends(self):
        client = make_client()
        sim = client.sim
        schema = default_schema()
        rows = seeded_rows(schema, 2048, seed=15)
        vt = client.create_versioned_table("t", schema, rows)
        client.update_where(vt, Compare("a", "<", 512), {"c": 1})
        client.insert(vt, seeded_rows(schema, 64, seed=16, start_a=9000))
        query = full_scan_query(schema)
        expected, _ = client.scan_versioned(vt, query)   # also deploys

        captured = {}

        def reader():
            result = yield from client.scan_versioned_proc(vt, query)
            captured["result"] = result

        def compactor():
            yield from client.compact_proc(vt)
            # Observed the instant compaction finished: the reader must
            # still be pinning the superseded segments.
            captured["pins_at_compaction"] = vt.active_pins
            captured["retired_at_compaction"] = vt.retired_segments

        procs = [sim.process(reader()), sim.process(compactor())]
        sim.run()
        assert all(p.triggered for p in procs)
        assert captured["pins_at_compaction"] >= 1, \
            "compaction should have completed mid-scan"
        assert captured["retired_at_compaction"] > 0, \
            "superseded segments must be parked, not freed, under a pin"
        assert captured["result"].data == expected.data
        # Once the reader released its pin, the retired batch was freed.
        assert vt.retired_segments == 0 and vt.active_pins == 0


# ---------------------------------------------------------------------------
# Cost-based placement over version chains
# ---------------------------------------------------------------------------

class TestVersionedPlacement:
    def _chained_table(self, client, n=2048, batches=4):
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, n, seed=17))
        per = n // (2 * batches)
        for b in range(batches):
            client.update_where(
                vt, And(Compare("a", ">=", b * per),
                        Compare("a", "<", (b + 1) * per)),
                {"c": 100 + b})
        return schema, vt

    def test_ship_and_auto_match_offload_bytes(self):
        client = make_client()
        schema, vt = self._chained_table(client)
        query = Query(predicate=Compare("a", "<", 1024), label="sel")
        stats = PlanStats(selectivity=0.5)
        offload, _ = client.scan_versioned(vt, query, placement="offload")
        ship, _ = client.scan_versioned(vt, query, placement="ship",
                                        stats=stats)
        auto, _ = client.scan_versioned(vt, query, placement="auto",
                                        stats=stats)
        assert (canonical_result_bytes(ship)
                == canonical_result_bytes(offload))
        assert (canonical_result_bytes(auto)
                == canonical_result_bytes(offload))
        assert ship.explain is not None and ship.explain.chosen == "ship"

    def test_crossover_shifts_with_delta_fraction(self):
        """The ship estimate must grow faster than the offload estimate
        as the chain deepens (the client pays the software merge)."""
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table(
            "t", schema, seeded_rows(schema, 2048, seed=18))
        query = Query(predicate=Compare("a", "<", 1024), label="sel")
        plan0 = client.plan_versioned(vt, query)
        ratio0 = plan0.explain.est_ship_ns / plan0.explain.est_offload_ns
        for b in range(6):
            client.update_where(vt, Compare("a", "<", 1024), {"c": b})
        plan6 = client.plan_versioned(vt, query)
        ratio6 = plan6.explain.est_ship_ns / plan6.explain.est_offload_ns
        assert plan6.explain.est_ship_ns > plan0.explain.est_ship_ns
        assert ratio6 > ratio0


# ---------------------------------------------------------------------------
# SQL write statements end to end
# ---------------------------------------------------------------------------

class TestSqlWritePath:
    def test_insert_update_delete_statements(self):
        client = make_client()
        schema = default_schema()
        vt = client.create_versioned_table("t", schema,
                                           seeded_rows(schema, 32, seed=19))
        epoch, _ = client.sql(
            "INSERT INTO t VALUES (500, 1.5, 2, 3, 4, 5, 6, 7), "
            "(501, -2.5, 2, 3, 4, 5, 6, 7)")
        assert epoch == 1 and vt.num_rows == 34
        epoch, _ = client.sql("UPDATE t SET d = -9, e = 4 WHERE a >= 500")
        assert epoch == 2
        epoch, _ = client.sql("DELETE FROM t WHERE a = 501;")
        assert epoch == 3 and vt.num_rows == 33
        result, _ = client.sql("SELECT a, d FROM t WHERE a >= 500")
        assert result.num_rows == 1
        row = result.rows()[0]
        assert int(row["a"]) == 500 and int(row["d"]) == -9

    def test_write_statement_against_plain_table_fails(self):
        client = make_client()
        schema = default_schema()
        from repro.core.table import FTable
        table = FTable("p", schema, 8)
        client.alloc_table_mem(table)
        client.table_write(table, seeded_rows(schema, 8, seed=20))
        with pytest.raises(QueryError, match="not versioned"):
            client.sql("DELETE FROM p WHERE a = 1")


# ---------------------------------------------------------------------------
# 4-node cluster: two-phase epoch broadcast
# ---------------------------------------------------------------------------

def make_cluster_pair(num_rows=256, num_nodes=4, seed=21):
    """Single-node client + N-node cluster client over identical data."""
    schema = default_schema()
    rows = seeded_rows(schema, num_rows, seed=seed)
    rows["c"] = rows["a"] % 13
    single = make_client()
    vt = single.create_versioned_table("t", schema, rows)
    cc = ClusterClient(FarviewCluster(Simulator(), num_nodes, TEST_CONFIG))
    cc.open_connection()
    vst = cc.create_versioned_table("t", schema, rows)
    return schema, rows, single, vt, cc, vst


class TestClusterVersioning:
    def test_every_epoch_byte_identical_to_single_node(self):
        schema, rows, single, vt, cc, vst = make_cluster_pair()
        extra = seeded_rows(schema, 16, seed=22, start_a=4000)
        extra["c"] = extra["a"] % 13
        for client, table in ((single, vt), (cc, vst)):
            assert client.insert(table, extra)[0] == 1
            assert client.update_where(table, Compare("a", "<", 40),
                                       {"e": 9})[0] == 2
            assert client.delete_where(table, Compare("a", ">=", 4008))[0] == 3
        assert [s.table.epoch for s in vst.shards] == [3] * 4
        query = full_scan_query(schema)
        for epoch in range(4):
            r1, _ = single.scan_versioned(vt, query, as_of=epoch)
            r4, _ = cc.scan_versioned(vst, query, as_of=epoch)
            assert sha(r4.data) == sha(r1.data), f"epoch {epoch}"

    def test_distinct_and_int_groupby_merges_match_single_node(self):
        schema, rows, single, vt, cc, vst = make_cluster_pair()
        for client, table in ((single, vt), (cc, vst)):
            client.update_where(table, Compare("a", "<", 100), {"c": 99})
        d1, _ = single.far_view(vt, select_distinct(["c"]))
        d4, _ = cc.far_view(vst, select_distinct(["c"]))
        assert d4.data == d1.data
        g1, _ = single.far_view(vt, group_by_sum("c", "d"))
        g4, _ = cc.far_view(vst, group_by_sum("c", "d"))
        assert g4.data == g1.data

    def test_cluster_snapshot_under_concurrent_writer(self):
        schema, rows, single, vt, cc, vst = make_cluster_pair(num_rows=1024)
        sim = cc.sim
        query = select_distinct(["c"])
        cc.scan_versioned(vst, query)          # deploy shard pipelines

        captured = {}

        def reader():
            captured["epoch"] = cc.snapshot(vst)
            result = yield from cc.scan_versioned_proc(vst, query)
            captured["result"] = result

        def writer():
            for batch in range(3):
                yield from cc.update_where_proc(
                    vst, Compare("a", "<", 300 * (batch + 1)),
                    {"c": 50 + batch})

        procs = [sim.process(reader()), sim.process(writer())]
        sim.run()
        assert all(p.triggered for p in procs)
        assert cc.snapshot(vst) == 3
        replay, _ = cc.scan_versioned(vst, query, as_of=captured["epoch"])
        assert replay.data == captured["result"].data

    def test_cluster_compaction_and_sql_writes(self):
        schema, rows, single, vt, cc, vst = make_cluster_pair()
        statement = "UPDATE t SET e = 123 WHERE a < 77"
        for client in (single, cc):
            client.sql(statement)
            client.sql("INSERT INTO t VALUES (9000, 0.5, 1, 2, 3, 4, 5, 6)")
        cc.compact(vst)
        single.compact(vt)
        query = full_scan_query(schema)
        r1, _ = single.scan_versioned(vt, query)
        r4, _ = cc.scan_versioned(vst, query)
        assert r4.data == r1.data
        assert vst.num_deltas == 0

    def test_non_chunk_partition_rejected(self):
        cc = ClusterClient(FarviewCluster(Simulator(), 2, TEST_CONFIG))
        cc.open_connection()
        schema = default_schema()
        with pytest.raises(QueryError, match="chunk"):
            cc.create_versioned_table(
                "t", schema, seeded_rows(schema, 32, seed=23),
                partition=PartitionSpec("hash", key="a"))


# ---------------------------------------------------------------------------
# Hypothesis: stateful interleaving of writers and snapshot readers
# ---------------------------------------------------------------------------

class VersioningMachine(RuleBasedStateMachine):
    """Random write batches against both the simulated node and a pure
    numpy model; every scan at a random readable epoch must be
    sha256-identical to the model's serialization at that epoch (the
    serial re-execution oracle)."""

    def __init__(self):
        super().__init__()
        self.client = make_client()
        self.schema = default_schema()
        rows = seeded_rows(self.schema, 48, seed=31)
        self.vt = self.client.create_versioned_table("t", self.schema, rows)
        self.model = rows.copy()
        self.history = {0: self.schema.to_bytes(rows)}
        self.next_a = 10_000
        self.batch = 0
        self.query = full_scan_query(self.schema)
        # A versioned dimension table for the join-under-update action.
        dim_rows = make_join_dim()
        self.dim = self.client.create_versioned_table(
            "dim", JOIN_DIM_SCHEMA, dim_rows)
        self.dim_model = dim_rows.copy()

    def _record(self, epoch):
        self.history[epoch] = self.schema.to_bytes(self.model)

    @rule(n=st.integers(min_value=1, max_value=12))
    def insert(self, n):
        rows = seeded_rows(self.schema, n, seed=100 + self.batch,
                           start_a=self.next_a)
        self.next_a += n
        self.batch += 1
        epoch, _ = self.client.insert(self.vt, rows)
        self.model = np.concatenate([self.model, rows])
        self._record(epoch)

    @rule(cut=st.integers(min_value=0, max_value=60),
          value=st.integers(min_value=-1000, max_value=1000))
    def update(self, cut, value):
        epoch, _ = self.client.update_where(self.vt, Compare("a", "<", cut),
                                            {"d": value})
        self.model = self.model.copy()
        self.model["d"][self.model["a"] < cut] = value
        self._record(epoch)

    @rule(cut=st.integers(min_value=0, max_value=80))
    def delete(self, cut):
        epoch, _ = self.client.delete_where(
            self.vt, And(Compare("a", ">=", cut),
                         Compare("a", "<", cut + 8)))
        keep = ~((self.model["a"] >= cut) & (self.model["a"] < cut + 8))
        self.model = self.model[keep]
        self._record(epoch)

    @precondition(lambda self: self.vt.num_deltas > 0
                  and self.vt.num_rows > 0)
    @rule()
    def compact(self):
        self.client.compact(self.vt)
        self.history = {e: img for e, img in self.history.items()
                        if e >= self.vt.oldest_epoch}

    @rule(data=st.data())
    def scan_random_epoch(self, data):
        epoch = data.draw(st.integers(self.vt.oldest_epoch, self.vt.epoch))
        result, _ = self.client.scan_versioned(self.vt, self.query,
                                               as_of=epoch)
        assert sha(result.data) == sha(self.history[epoch]), \
            f"snapshot at epoch {epoch} diverged from serial re-execution"

    @rule(value=st.integers(min_value=-100, max_value=100))
    def join_under_dim_update(self, value):
        """A join racing a dimension update pins its epoch: the probe
        must see the pre-update dimension, never a mix."""
        sim = self.client.sim
        query = Query(join=JoinSpec(self.dim, "id", "a", ("rate",)),
                      label="join-under-update")
        captured = {}

        def reader():
            result = yield from self.client.far_view_proc(self.vt, query)
            captured["result"] = result

        def dim_writer():
            yield from self.client.update_where_proc(
                self.dim, None, {"rate": float(value)})

        procs = [sim.process(reader()), sim.process(dim_writer())]
        sim.run()
        assert all(p.triggered for p in procs)
        expected = join_expected_bytes(self.model, self.schema,
                                       self.dim_model)
        assert sha(captured["result"].data) == sha(expected), \
            "concurrent dim update leaked into a pinned join"
        self.dim_model = self.dim_model.copy()
        self.dim_model["rate"] = float(value)

    @precondition(lambda self: self.dim.num_deltas > 0)
    @rule()
    def join_after_dim_compaction(self):
        """Compacting the dimension chain must not change join bytes."""
        self.client.compact(self.dim)
        result, _ = self.client.far_view(
            self.vt, Query(join=JoinSpec(self.dim, "id", "a", ("rate",)),
                           label="join-compacted"))
        expected = join_expected_bytes(self.model, self.schema,
                                       self.dim_model)
        assert sha(result.data) == sha(expected)

    @invariant()
    def visible_row_count_matches_model(self):
        assert self.vt.num_rows == len(self.model)
        assert self.vt.active_pins == 0
        assert self.dim.active_pins == 0


VersioningMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None)
TestVersioningMachine = VersioningMachine.TestCase


class ClusterVersioningMachine(RuleBasedStateMachine):
    """The same oracle on a 4-node cluster: every cluster-wide snapshot
    read must serialize identically to the numpy model at that epoch
    (which the single-node tests already pin to single-node bytes)."""

    def __init__(self):
        super().__init__()
        self.schema = default_schema()
        rows = seeded_rows(self.schema, 40, seed=41)
        self.cc = ClusterClient(
            FarviewCluster(Simulator(), 4, TEST_CONFIG))
        self.cc.open_connection()
        self.vst = self.cc.create_versioned_table("t", self.schema, rows)
        self.model = rows.copy()
        self.history = {0: self.schema.to_bytes(rows)}
        self.next_a = 10_000
        self.batch = 0
        self.query = full_scan_query(self.schema)
        # A plain sharded dimension for the broadcast-join action.
        dim_rows = make_join_dim()
        self.dim = self.cc.create_table("dim", JOIN_DIM_SCHEMA, dim_rows)
        self.dim_model = dim_rows.copy()

    def _record(self, epoch):
        self.history[epoch] = self.schema.to_bytes(self.model)

    @rule(n=st.integers(min_value=1, max_value=10))
    def insert(self, n):
        rows = seeded_rows(self.schema, n, seed=200 + self.batch,
                           start_a=self.next_a)
        self.next_a += n
        self.batch += 1
        epoch, _ = self.cc.insert(self.vst, rows)
        self.model = np.concatenate([self.model, rows])
        self._record(epoch)

    @rule(cut=st.integers(min_value=0, max_value=50),
          value=st.integers(min_value=-99, max_value=99))
    def update(self, cut, value):
        epoch, _ = self.cc.update_where(self.vst, Compare("a", "<", cut),
                                        {"e": value})
        self.model = self.model.copy()
        self.model["e"][self.model["a"] < cut] = value
        self._record(epoch)

    @rule(cut=st.integers(min_value=0, max_value=60))
    def delete(self, cut):
        epoch, _ = self.cc.delete_where(
            self.vst, And(Compare("a", ">=", cut),
                          Compare("a", "<", cut + 6)))
        keep = ~((self.model["a"] >= cut) & (self.model["a"] < cut + 6))
        self.model = self.model[keep]
        self._record(epoch)

    @rule(data=st.data())
    def scan_random_epoch(self, data):
        floor = max(s.table.oldest_epoch for s in self.vst.shards)
        epoch = data.draw(st.integers(floor, self.vst.epoch))
        result, _ = self.cc.scan_versioned(self.vst, self.query,
                                           as_of=epoch)
        assert sha(result.data) == sha(self.history[epoch]), \
            f"cluster snapshot at epoch {epoch} diverged"

    @rule(value=st.integers(min_value=-99, max_value=99))
    def broadcast_join_under_update(self, value):
        """A scatter-gather broadcast join racing a cluster-wide fact
        update must merge to the pre-update model's bytes."""
        sim = self.cc.sim
        query = Query(join=JoinSpec(self.dim, "id", "a", ("rate",)),
                      label="cluster-join")
        captured = {}

        def reader():
            result = yield from self.cc.far_view_proc(self.vst, query)
            captured["result"] = result

        def fact_writer():
            yield from self.cc.update_where_proc(
                self.vst, Compare("a", "<", 30), {"d": value})

        procs = [sim.process(reader()), sim.process(fact_writer())]
        sim.run()
        assert all(p.triggered for p in procs)
        expected = join_expected_bytes(self.model, self.schema,
                                       self.dim_model)
        assert sha(captured["result"].data) == sha(expected), \
            "concurrent fact update leaked into a pinned broadcast join"
        self.model = self.model.copy()
        self.model["d"][self.model["a"] < 30] = value
        self._record(self.vst.epoch)

    @invariant()
    def shard_epochs_agree(self):
        assert all(s.table.epoch == self.vst.epoch
                   for s in self.vst.shards)


ClusterVersioningMachine.TestCase.settings = settings(
    max_examples=5, stateful_step_count=10, deadline=None)
TestClusterVersioningMachine = ClusterVersioningMachine.TestCase
