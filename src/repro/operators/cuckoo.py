"""Cuckoo hash tables with an overflow buffer (paper §5.4).

"To guarantee full pipelining and constant lookup times, the hash table
that we implement does not handle collisions.  Instead, collisions are
written into a buffer, which is sent to the client to be deduplicated in
software.  To greatly reduce the collision likelihood, we implement cuckoo
hashing, with several hash tables that can be looked up in parallel."

This is a faithful functional model: N ways, parallel lookup, background
eviction chains bounded by ``max_kicks``, and an overflow list that the
node ships back to the client for software post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..common.errors import OperatorError
from .hashing import HashFamily, hash_key_batch


@dataclass
class _Entry:
    key: bytes
    value: object


class CuckooHashTable:
    """N-way cuckoo hash over byte keys with per-way parallel lookup."""

    def __init__(self, ways: int = 4, slots_per_way: int = 16_384,
                 max_kicks: int = 32):
        if ways <= 0 or slots_per_way <= 0:
            raise OperatorError(
                f"cuckoo table needs positive ways/slots, got "
                f"{ways}/{slots_per_way}")
        if max_kicks <= 0:
            raise OperatorError(f"max_kicks must be positive: {max_kicks}")
        self.ways = ways
        self.slots_per_way = slots_per_way
        self.max_kicks = max_kicks
        self._family = HashFamily(ways)
        self._tables: list[list[_Entry | None]] = [
            [None] * slots_per_way for _ in range(ways)]
        self.size = 0
        self.overflow: list[tuple[bytes, object]] = []
        self.kicks = 0

    @property
    def capacity(self) -> int:
        return self.ways * self.slots_per_way

    # -- lookup -----------------------------------------------------------------
    def batch_slots(self, raw: bytes | memoryview,
                    width: int) -> list[list[int]]:
        """Per-way slot indices for a packed batch of fixed-width keys.

        Hashing dominates the streaming operators' per-tuple cost, so the
        operators hash whole batches vectorized up front and thread the
        precomputed slot rows through :meth:`_probe` / :meth:`put` /
        :meth:`get` — bit-identical to hashing each key on demand.
        """
        cols = [hash_key_batch(raw, width, seed=way) % self.slots_per_way
                for way in range(self.ways)]
        return np.stack(cols, axis=1).tolist()

    def _probe(self, key: bytes,
               slots: Optional[Sequence[int]] = None
               ) -> tuple[int, int, _Entry] | None:
        """Parallel lookup across all ways; returns (way, slot, entry)."""
        tables = self._tables
        if slots is None:
            family_slot = self._family.slot
            nslots = self.slots_per_way
            for way in range(self.ways):
                slot = family_slot(way, key, nslots)
                entry = tables[way][slot]
                if entry is not None and entry.key == key:
                    return way, slot, entry
        else:
            for way, slot in enumerate(slots):
                entry = tables[way][slot]
                if entry is not None and entry.key == key:
                    return way, slot, entry
        return None

    def get(self, key: bytes,
            slots: Optional[Sequence[int]] = None) -> object | None:
        hit = self._probe(key, slots)
        return hit[2].value if hit else None

    def __contains__(self, key: bytes) -> bool:
        return self._probe(key) is not None

    def contains_at(self, key: bytes, slots: Sequence[int]) -> bool:
        """``key in table`` with precomputed per-way slots."""
        return self._probe(key, slots) is not None

    def __len__(self) -> int:
        return self.size

    # -- insert / update -----------------------------------------------------------
    def put(self, key: bytes, value: object,
            slots: Optional[Sequence[int]] = None) -> bool:
        """Insert or update; returns False if the entry overflowed.

        Overflowed entries are appended to :attr:`overflow` — they are *not*
        resident and subsequent lookups will miss, exactly like the
        hardware, where the overflow buffer is opaque to the pipeline.
        ``slots`` may carry the key's precomputed per-way slot indices;
        evicted residents are re-hashed on demand (the rare path).
        """
        hit = self._probe(key, slots)
        if hit is not None:
            hit[2].value = value
            return True
        entry = _Entry(key, value)
        entry_slots = slots
        way = self._way_hint(key, slots)
        for _ in range(self.max_kicks):
            slot = (entry_slots[way] if entry_slots is not None
                    else self._family.slot(way, entry.key, self.slots_per_way))
            resident = self._tables[way][slot]
            if resident is None:
                self._tables[way][slot] = entry
                self.size += 1
                return True
            # Evict the resident entry and move it to the next way
            # ("Upon the eviction from one of the tables, the evicted entry
            # is inserted into the next hash table with a different
            # function", §5.4).
            self._tables[way][slot] = entry
            entry = resident
            entry_slots = None
            way = (way + 1) % self.ways
            self.kicks += 1
        self.overflow.append((entry.key, entry.value))
        return False

    def update_in_place(self, key: bytes, fn) -> bool:
        """Apply ``fn(old_value) -> new_value`` to a resident entry."""
        hit = self._probe(key)
        if hit is None:
            return False
        hit[2].value = fn(hit[2].value)
        return True

    def _way_hint(self, key: bytes,
                  slots: Optional[Sequence[int]] = None) -> int:
        # Start insertion at the way whose slot is empty if any (parallel
        # lookup sees all ways at once), else way 0.
        if slots is None:
            for way in range(self.ways):
                slot = self._family.slot(way, key, self.slots_per_way)
                if self._tables[way][slot] is None:
                    return way
        else:
            for way, slot in enumerate(slots):
                if self._tables[way][slot] is None:
                    return way
        return 0

    # -- iteration / draining ---------------------------------------------------------
    def items(self) -> Iterator[tuple[bytes, object]]:
        """Resident entries (excludes overflow), in table order."""
        for table in self._tables:
            for entry in table:
                if entry is not None:
                    yield entry.key, entry.value

    def drain_overflow(self) -> list[tuple[bytes, object]]:
        out = self.overflow
        self.overflow = []
        return out

    @property
    def load_factor(self) -> float:
        return self.size / self.capacity
