"""Aggregation operators: count, min, max, sum, average (paper §5.4).

Aggregations run either *standalone* ("simple computations are performed
directly on the passing data streams") or on top of the group-by operator
(each hash-table entry carries accumulator state).  This module provides
the accumulator machinery shared by both and the standalone operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import OperatorError, QueryError
from ..common.records import Column, Schema
from .base import RowOperator

SUPPORTED_FUNCS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation: ``func(column) AS alias``.

    ``count`` ignores ``column`` (may be ``"*"``).
    """

    func: str
    column: str
    alias: str = ""

    def __post_init__(self) -> None:
        if self.func not in SUPPORTED_FUNCS:
            raise QueryError(
                f"unsupported aggregate {self.func!r}; supported: "
                f"{SUPPORTED_FUNCS}")
        if not self.alias:
            object.__setattr__(self, "alias", f"{self.func}_{self.column}"
                               .replace("*", "star"))

    def validate(self, schema: Schema) -> None:
        if self.func == "count" and self.column == "*":
            return
        col = schema.column(self.column)
        if col.kind == "char":
            raise QueryError(
                f"cannot aggregate char column {self.column!r} with "
                f"{self.func!r}")

    def output_column(self, schema: Schema) -> Column:
        if self.func == "count":
            return Column(self.alias, "uint64", 8)
        if self.func == "avg":
            return Column(self.alias, "float64", 8)
        kind = schema.column(self.column).kind
        return Column(self.alias, kind, 8)


class Accumulator:
    """Running state for one group's aggregates (one hash-table entry)."""

    __slots__ = ("count", "sums", "mins", "maxs")

    def __init__(self, num_value_columns: int):
        self.count = 0
        self.sums = [0.0] * num_value_columns
        self.mins = [None] * num_value_columns
        self.maxs = [None] * num_value_columns

    def update(self, values: tuple, weight: int = 1) -> None:
        self.count += weight
        for i, v in enumerate(values):
            self.sums[i] += v * weight
            if self.mins[i] is None or v < self.mins[i]:
                self.mins[i] = v
            if self.maxs[i] is None or v > self.maxs[i]:
                self.maxs[i] = v

    def merge(self, other: "Accumulator") -> None:
        self.count += other.count
        for i in range(len(self.sums)):
            self.sums[i] += other.sums[i]
            for mine, theirs, pick in ((self.mins, other.mins, min),
                                       (self.maxs, other.maxs, max)):
                if theirs[i] is not None:
                    mine[i] = (theirs[i] if mine[i] is None
                               else pick(mine[i], theirs[i]))

    def result(self, spec: AggregateSpec, column_index: int):
        if self.count == 0:
            raise OperatorError("empty accumulator has no result")
        if spec.func == "count":
            return self.count
        if spec.func == "sum":
            return self.sums[column_index]
        if spec.func == "avg":
            return self.sums[column_index] / self.count
        if spec.func == "min":
            return self.mins[column_index]
        return self.maxs[column_index]


def batch_accumulate(acc: Accumulator, batch: np.ndarray,
                     value_columns: list[str]) -> None:
    """Vectorized accumulation of a whole batch into one accumulator."""
    n = len(batch)
    if n == 0:
        return
    acc.count += n
    for i, name in enumerate(value_columns):
        col = batch[name]
        acc.sums[i] += float(col.sum())
        lo = col.min()
        hi = col.max()
        if acc.mins[i] is None or lo < acc.mins[i]:
            acc.mins[i] = lo
        if acc.maxs[i] is None or hi > acc.maxs[i]:
            acc.maxs[i] = hi


# -- distributed partial aggregation ------------------------------------------

#: Alias prefix for synthesized shard-local partial columns; reserved so it
#: can never collide with user aliases or group-key names.
PARTIAL_PREFIX = "__fvpart_"

#: How a shard-local partial column merges across shards, keyed by the
#: *shard* aggregate function that produced it.  ``avg`` never appears
#: here: :func:`decompose_partials` rewrites it into sum + count.
PARTIAL_MERGE = {
    "count": lambda a, b: a + b,
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class PartialPlan:
    """How one original aggregate is rebuilt from merged shard partials.

    ``mode`` is ``"direct"`` (the merged column *is* the final value) or
    ``"ratio"`` (final = sources[0] / sources[1], the avg = sum / count
    decomposition); ``sources`` are aliases into the shard output schema.
    """

    spec: AggregateSpec
    mode: str
    sources: tuple[str, ...]

    def finalize(self, merged: dict):
        """Final value of this aggregate from the merged partial columns."""
        if self.mode == "direct":
            return merged[self.sources[0]]
        numerator, count = (merged[s] for s in self.sources)
        if count == 0:
            raise OperatorError(f"{self.spec.alias}: empty group in merge")
        return numerator / count


def decompose_partials(
        specs: list[AggregateSpec] | tuple[AggregateSpec, ...],
) -> tuple[list[AggregateSpec], list[PartialPlan]]:
    """Rewrite aggregates into shard-local partials that merge exactly.

    ``count``, ``sum``, ``min`` and ``max`` are already decomposable (the
    per-shard partial merges with :data:`PARTIAL_MERGE`); ``avg`` is not —
    averages of averages are wrong under skew — so it is replaced by a
    synthesized ``sum`` + ``count(*)`` pair and recomputed at merge time.

    Returns ``(shard_specs, plans)``: the aggregate list the *shards*
    execute, and one :class:`PartialPlan` per original spec describing how
    the scatter-gather router rebuilds the final column.
    """
    shard_specs: list[AggregateSpec] = []
    by_alias: dict[str, AggregateSpec] = {}

    def ensure(spec: AggregateSpec) -> str:
        existing = by_alias.get(spec.alias)
        if existing is None:
            by_alias[spec.alias] = spec
            shard_specs.append(spec)
        elif existing != spec:
            raise QueryError(
                f"aggregate alias {spec.alias!r} is ambiguous across shards")
        return spec.alias

    plans: list[PartialPlan] = []
    for spec in specs:
        if spec.func == "avg":
            total = ensure(AggregateSpec(
                "sum", spec.column, f"{PARTIAL_PREFIX}sum_{spec.column}"))
            count = ensure(AggregateSpec(
                "count", "*", f"{PARTIAL_PREFIX}count"))
            plans.append(PartialPlan(spec, "ratio", (total, count)))
        else:
            ensure(spec)
            plans.append(PartialPlan(spec, "direct", (spec.alias,)))
    return shard_specs, plans


class StandaloneAggregateOperator(RowOperator):
    """Whole-table aggregation without grouping: emits one row at flush."""

    fill_latency_cycles = 6

    def __init__(self, specs: list[AggregateSpec]):
        super().__init__("aggregation")
        if not specs:
            raise OperatorError("aggregation needs at least one spec")
        self.specs = list(specs)
        self._value_columns = sorted(
            {s.column for s in self.specs if not (s.func == "count" and s.column == "*")})
        self._acc = Accumulator(len(self._value_columns))
        self._out_schema: Schema | None = None

    def _bind(self, schema: Schema) -> Schema:
        try:
            for spec in self.specs:
                spec.validate(schema)
        except QueryError as exc:
            raise OperatorError(str(exc)) from exc
        aliases = [s.alias for s in self.specs]
        if len(set(aliases)) != len(aliases):
            raise OperatorError(f"duplicate aggregate aliases: {aliases}")
        self._out_schema = Schema([s.output_column(schema) for s in self.specs])
        return self._out_schema

    def _process(self, batch: np.ndarray) -> np.ndarray:
        assert self._out_schema is not None
        batch_accumulate(self._acc, batch, self._value_columns)
        return self._out_schema.empty(0)

    def flush(self) -> np.ndarray | None:
        assert self._out_schema is not None
        if self._acc.count == 0:
            return self._out_schema.empty(0)
        row = self._out_schema.empty(1)
        for spec in self.specs:
            idx = (self._value_columns.index(spec.column)
                   if spec.column in self._value_columns else 0)
            row[spec.alias] = self._acc.result(spec, idx)
        self.rows_out += 1
        return row

    def flush_cycles(self) -> int:
        return 4  # one result row
