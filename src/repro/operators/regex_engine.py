"""A from-scratch regular-expression engine (Thompson NFA construction).

Farview integrates an FPGA regex library (Caribou [42]) whose key property
is that "the performance of the operator is dominated by the length of the
string and does not depend on the complexity of the regular expression".
A Thompson NFA simulation has exactly that property in software: O(n * m)
with no backtracking blow-up, linear in string length for a fixed pattern.

Supported syntax (byte-oriented):

* literals, ``.`` (any byte except newline), escapes ``\\d \\w \\s \\D \\W \\S``
  and escaped metacharacters,
* character classes ``[a-z0-9_]`` and negated classes ``[^...]``,
* grouping ``( ... )``, alternation ``|``,
* repetition ``* + ?`` and bounded ``{m}``, ``{m,}``, ``{m,n}``,
* anchors ``^`` (pattern start) and ``$`` (pattern end).

The public API is :class:`CompiledRegex` with RE2-style ``search`` /
``fullmatch`` predicates over ``bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import RegexSyntaxError

_MAX_BOUNDED_REPEAT = 256


# --------------------------------------------------------------------------
# Parsing: pattern -> AST
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _CharClass:
    """A predicate over byte values, stored as a 256-bit membership table."""

    table: frozenset[int]

    def matches(self, byte: int) -> bool:
        return byte in self.table


def _class_from_ranges(ranges: list[tuple[int, int]], negate: bool) -> _CharClass:
    members = set()
    for lo, hi in ranges:
        if lo > hi:
            raise RegexSyntaxError(f"bad class range {chr(lo)}-{chr(hi)}")
        members.update(range(lo, hi + 1))
    if negate:
        members = set(range(256)) - members
    return _CharClass(frozenset(members))


_DIGITS = [(ord("0"), ord("9"))]
_WORD = [(ord("a"), ord("z")), (ord("A"), ord("Z")), (ord("0"), ord("9")),
         (ord("_"), ord("_"))]
_SPACE = [(ord(c), ord(c)) for c in " \t\n\r\f\v"]

_ESCAPE_CLASSES = {
    "d": _class_from_ranges(_DIGITS, negate=False),
    "D": _class_from_ranges(_DIGITS, negate=True),
    "w": _class_from_ranges(_WORD, negate=False),
    "W": _class_from_ranges(_WORD, negate=True),
    "s": _class_from_ranges(_SPACE, negate=False),
    "S": _class_from_ranges(_SPACE, negate=True),
}

_ANY = _CharClass(frozenset(b for b in range(256) if b != ord("\n")))


# AST nodes
@dataclass(frozen=True)
class _Char:
    cls: _CharClass


@dataclass(frozen=True)
class _Concat:
    parts: tuple


@dataclass(frozen=True)
class _Alt:
    options: tuple


@dataclass(frozen=True)
class _Repeat:
    inner: object
    min_count: int
    max_count: int | None  # None = unbounded


@dataclass(frozen=True)
class _Empty:
    pass


class _Parser:
    """Recursive-descent parser for the supported regex subset."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0
        self.anchored_start = False
        self.anchored_end = False

    def parse(self):
        if self._peek() == "^":
            self.anchored_start = True
            self.pos += 1
        node = self._alternation()
        if self.pos < len(self.pattern):
            raise RegexSyntaxError(
                f"unexpected {self.pattern[self.pos]!r} at {self.pos} in "
                f"{self.pattern!r}")
        return node

    # grammar: alternation := concat ('|' concat)*
    def _alternation(self):
        options = [self._concat()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return _Alt(tuple(options))

    def _concat(self):
        parts = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            if ch == "$" and self.pos == len(self.pattern) - 1:
                self.anchored_end = True
                self.pos += 1
                break
            parts.append(self._repetition())
        if not parts:
            return _Empty()
        if len(parts) == 1:
            return parts[0]
        return _Concat(tuple(parts))

    def _repetition(self):
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                atom = _Repeat(atom, 0, None)
            elif ch == "+":
                self.pos += 1
                atom = _Repeat(atom, 1, None)
            elif ch == "?":
                self.pos += 1
                atom = _Repeat(atom, 0, 1)
            elif ch == "{":
                atom = _Repeat(atom, *self._braces())
            else:
                return atom

    def _braces(self) -> tuple[int, int | None]:
        end = self.pattern.find("}", self.pos)
        if end < 0:
            raise RegexSyntaxError(f"unterminated {{...}} in {self.pattern!r}")
        body = self.pattern[self.pos + 1:end]
        self.pos = end + 1
        try:
            if "," not in body:
                m = int(body)
                bounds = (m, m)
            else:
                lo_s, hi_s = body.split(",", 1)
                lo = int(lo_s)
                bounds = (lo, int(hi_s) if hi_s.strip() else None)
        except ValueError as exc:
            raise RegexSyntaxError(f"bad repetition {{{body}}}") from exc
        lo, hi = bounds
        if lo < 0 or (hi is not None and (hi < lo or hi > _MAX_BOUNDED_REPEAT)):
            raise RegexSyntaxError(f"bad repetition bounds {{{body}}}")
        return bounds

    def _atom(self):
        ch = self._peek()
        if ch is None:
            raise RegexSyntaxError(f"dangling operator in {self.pattern!r}")
        if ch == "(":
            self.pos += 1
            node = self._alternation()
            if self._peek() != ")":
                raise RegexSyntaxError(f"unbalanced '(' in {self.pattern!r}")
            self.pos += 1
            return node
        if ch == "[":
            return _Char(self._char_class())
        if ch == ".":
            self.pos += 1
            return _Char(_ANY)
        if ch == "\\":
            return _Char(self._escape())
        if ch in "*+?{":
            raise RegexSyntaxError(
                f"repetition {ch!r} with nothing to repeat at {self.pos}")
        if ch in ")|":
            raise RegexSyntaxError(f"unexpected {ch!r} at {self.pos}")
        self.pos += 1
        return _Char(_CharClass(frozenset({ord(ch)})))

    def _escape(self) -> _CharClass:
        self.pos += 1
        if self.pos >= len(self.pattern):
            raise RegexSyntaxError(f"dangling escape in {self.pattern!r}")
        ch = self.pattern[self.pos]
        self.pos += 1
        if ch in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[ch]
        if ch == "n":
            return _CharClass(frozenset({ord("\n")}))
        if ch == "t":
            return _CharClass(frozenset({ord("\t")}))
        if ch == "r":
            return _CharClass(frozenset({ord("\r")}))
        # Escaped literal (metacharacters and anything else).
        return _CharClass(frozenset({ord(ch)}))

    def _char_class(self) -> _CharClass:
        # self.pattern[self.pos] == '['
        self.pos += 1
        negate = self._peek() == "^"
        if negate:
            self.pos += 1
        ranges: list[tuple[int, int]] = []
        closed = False
        while self.pos < len(self.pattern):
            ch = self.pattern[self.pos]
            if ch == "]" and ranges:
                self.pos += 1
                closed = True
                break
            if ch == "\\":
                cls = self._escape()
                ranges.extend((b, b) for b in cls.table)
                continue
            self.pos += 1
            lo = ord(ch)
            if (self._peek() == "-" and self.pos + 1 < len(self.pattern)
                    and self.pattern[self.pos + 1] != "]"):
                self.pos += 1
                hi = ord(self.pattern[self.pos])
                self.pos += 1
                ranges.append((lo, hi))
            else:
                ranges.append((lo, lo))
        if not closed:
            raise RegexSyntaxError(f"unterminated class in {self.pattern!r}")
        return _class_from_ranges(ranges, negate)

    def _peek(self) -> str | None:
        if self.pos >= len(self.pattern):
            return None
        return self.pattern[self.pos]


# --------------------------------------------------------------------------
# Compilation: AST -> NFA (Thompson construction)
# --------------------------------------------------------------------------

@dataclass
class _State:
    index: int
    #: character edges: list of (char class, target state index)
    edges: list[tuple[_CharClass, int]] = field(default_factory=list)
    #: epsilon edges: target state indices
    eps: list[int] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.states: list[_State] = []

    def new_state(self) -> int:
        state = _State(len(self.states))
        self.states.append(state)
        return state.index

    def compile(self, node, start: int, accept: int) -> None:
        """Wire ``node`` between ``start`` and ``accept``."""
        if isinstance(node, _Empty):
            self.states[start].eps.append(accept)
        elif isinstance(node, _Char):
            self.states[start].edges.append((node.cls, accept))
        elif isinstance(node, _Concat):
            current = start
            for part in node.parts[:-1]:
                nxt = self.new_state()
                self.compile(part, current, nxt)
                current = nxt
            self.compile(node.parts[-1], current, accept)
        elif isinstance(node, _Alt):
            for option in node.options:
                s = self.new_state()
                self.states[start].eps.append(s)
                self.compile(option, s, accept)
        elif isinstance(node, _Repeat):
            self._compile_repeat(node, start, accept)
        else:  # pragma: no cover - parser produces only the above
            raise RegexSyntaxError(f"unknown AST node {node!r}")

    def _compile_repeat(self, node: _Repeat, start: int, accept: int) -> None:
        lo, hi = node.min_count, node.max_count
        current = start
        # Mandatory copies.
        for _ in range(lo):
            nxt = self.new_state()
            self.compile(node.inner, current, nxt)
            current = nxt
        if hi is None:
            # Kleene loop: current --inner--> current, current --eps--> accept
            loop = self.new_state()
            self.states[current].eps.append(loop)
            inner_end = self.new_state()
            self.compile(node.inner, loop, inner_end)
            self.states[inner_end].eps.append(loop)
            self.states[loop].eps.append(accept)
        else:
            # Optional copies.
            for _ in range(hi - lo):
                self.states[current].eps.append(accept)
                nxt = self.new_state()
                self.compile(node.inner, current, nxt)
                current = nxt
            self.states[current].eps.append(accept)


class CompiledRegex:
    """A compiled pattern supporting ``search`` and ``fullmatch`` on bytes."""

    def __init__(self, pattern: str):
        parser = _Parser(pattern)
        ast = parser.parse()
        self.pattern = pattern
        self.anchored_start = parser.anchored_start
        self.anchored_end = parser.anchored_end
        builder = _Builder()
        self._start = builder.new_state()
        self._accept = builder.new_state()
        builder.compile(ast, self._start, self._accept)
        self._states = builder.states
        # Precompute per-state byte-transition tables for speed.
        self._closure_cache: dict[frozenset[int], frozenset[int]] = {}

    # -- NFA simulation ----------------------------------------------------------
    def _eps_closure(self, states: frozenset[int]) -> frozenset[int]:
        cached = self._closure_cache.get(states)
        if cached is not None:
            return cached
        stack = list(states)
        seen = set(states)
        while stack:
            s = stack.pop()
            for target in self._states[s].eps:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        result = frozenset(seen)
        self._closure_cache[states] = result
        return result

    def _step(self, states: frozenset[int], byte: int) -> frozenset[int]:
        nxt = set()
        for s in states:
            for cls, target in self._states[s].edges:
                if cls.matches(byte):
                    nxt.add(target)
        if not nxt:
            return frozenset()
        return self._eps_closure(frozenset(nxt))

    def fullmatch(self, data: bytes) -> bool:
        """Whether the pattern matches the entire input."""
        current = self._eps_closure(frozenset({self._start}))
        for byte in data:
            if not current:
                return False
            current = self._step(current, byte)
        return self._accept in current

    def search(self, data: bytes) -> bool:
        """Whether the pattern matches anywhere in the input (RE2 semantics,
        honouring ``^``/``$`` anchors)."""
        if self.anchored_start and self.anchored_end:
            return self.fullmatch(data)
        start_closure = self._eps_closure(frozenset({self._start}))
        current: frozenset[int] = frozenset()
        for i in range(len(data) + 1):
            if not self.anchored_start or i == 0:
                current = self._eps_closure(current | start_closure)
            if self._accept in current and not self.anchored_end:
                return True
            if i == len(data):
                break
            current = self._step(current, data[i])
        return self._accept in current

    @property
    def num_states(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return f"CompiledRegex({self.pattern!r}, states={self.num_states})"


def compile_pattern(pattern: str) -> CompiledRegex:
    """Compile ``pattern``; raises :class:`RegexSyntaxError` on bad syntax."""
    return CompiledRegex(pattern)
