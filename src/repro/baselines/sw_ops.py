"""Functional software operators used by the CPU baselines.

These mirror what the paper's C++ baseline code does: tight scans with all
compiler optimizations (numpy vector kernels here), hashing through a fast
resizable map (:class:`SoftwareHashMap`), RE2-style regex matching (our
linear-time engine), and Cryptopp-style AES (our AES-CTR).  They return
both the result and the instrumentation the cost model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import OperatorError
from ..common.records import Schema
from ..operators.aggregate import Accumulator, AggregateSpec, batch_accumulate
from ..operators.crypto import AesCtr
from ..operators.join import join_output_schema
from ..operators.regex_engine import CompiledRegex
from ..operators.selection import Predicate
from .hashmap import SoftwareHashMap


def software_select(rows: np.ndarray, predicate: Predicate) -> np.ndarray:
    """Scan + filter, as the LCPU query thread would."""
    if len(rows) == 0:
        return rows
    return rows[predicate.evaluate(rows)]


def software_project(rows: np.ndarray, schema: Schema,
                     columns: list[str]) -> np.ndarray:
    out_schema = schema.project(columns)
    out = out_schema.empty(len(rows))
    for name in columns:
        out[name] = rows[name]
    return out


@dataclass
class DistinctOutput:
    rows: np.ndarray
    map_resizes: int
    rehashed_entries: int


def software_distinct(rows: np.ndarray, schema: Schema,
                      key_columns: list[str]) -> DistinctOutput:
    """Hash-based DISTINCT through the resizable software map."""
    key_schema = schema.project(key_columns)
    keys = key_schema.empty(len(rows))
    for name in key_columns:
        keys[name] = rows[name]
    raw = key_schema.to_bytes(keys)
    width = key_schema.row_width
    table = SoftwareHashMap()
    keep = np.zeros(len(rows), dtype=bool)
    for i in range(len(rows)):
        key = raw[i * width:(i + 1) * width]
        if table.put(key, True):
            keep[i] = True
    return DistinctOutput(rows=rows[keep], map_resizes=table.resizes,
                          rehashed_entries=table.rehashed_entries)


@dataclass
class GroupByOutput:
    rows: np.ndarray
    num_groups: int
    map_resizes: int


def software_groupby(rows: np.ndarray, schema: Schema,
                     key_columns: list[str],
                     aggregates: list[AggregateSpec]) -> GroupByOutput:
    """Hash aggregation through the resizable software map."""
    key_schema = schema.project(key_columns)
    keys = key_schema.empty(len(rows))
    for name in key_columns:
        keys[name] = rows[name]
    raw = key_schema.to_bytes(keys)
    width = key_schema.row_width
    value_columns = sorted({s.column for s in aggregates
                            if not (s.func == "count" and s.column == "*")})
    columns = [rows[name] for name in value_columns]
    table = SoftwareHashMap()
    order: list[bytes] = []
    for i in range(len(rows)):
        key = raw[i * width:(i + 1) * width]
        acc = table.get(key)
        if acc is None:
            acc = Accumulator(len(value_columns))
            table.put(key, acc)
            order.append(key)
        acc.update(tuple(float(col[i]) for col in columns))
    out_columns = ([schema.column(k) for k in key_columns]
                   + [s.output_column(schema) for s in aggregates])
    out_schema = Schema(out_columns)
    out = out_schema.empty(len(order))
    for i, key in enumerate(order):
        acc = table.get(key)
        key_row = key_schema.from_bytes(key)
        for name in key_columns:
            out[name][i] = key_row[name][0]
        for spec in aggregates:
            idx = (value_columns.index(spec.column)
                   if spec.column in value_columns else 0)
            out[spec.alias][i] = acc.result(spec, idx)
    return GroupByOutput(rows=out, num_groups=len(order),
                         map_resizes=table.resizes)


def software_aggregate(rows: np.ndarray, schema: Schema,
                       aggregates: list[AggregateSpec]) -> np.ndarray:
    """Whole-table aggregation without grouping: one output row.

    Byte-compatible with the offloaded
    :class:`~repro.operators.aggregate.StandaloneAggregateOperator`
    (same output schema, same accumulator arithmetic), so the hybrid
    planner can run the final aggregation on the client.
    """
    value_columns = sorted({s.column for s in aggregates
                            if not (s.func == "count" and s.column == "*")})
    acc = Accumulator(len(value_columns))
    # Same accumulation kernel as the offloaded operator (min/max stay in
    # the column dtype, no per-value float round-trip), so large-integer
    # extremes survive bit-exactly.
    batch_accumulate(acc, rows, value_columns)
    out_schema = Schema([s.output_column(schema) for s in aggregates])
    if acc.count == 0:
        return out_schema.empty(0)
    out = out_schema.empty(1)
    for spec in aggregates:
        idx = (value_columns.index(spec.column)
               if spec.column in value_columns else 0)
        out[spec.alias][0] = acc.result(spec, idx)
    return out


def software_join(rows: np.ndarray, schema: Schema,
                  build_rows: np.ndarray, build_schema: Schema,
                  build_key: str, probe_key: str,
                  payload_columns: list[str]) -> np.ndarray:
    """Inner hash join on the client, as the LCPU query thread would.

    Byte-compatible with
    :class:`~repro.operators.join.SmallTableJoinOperator`: the build hash
    is keyed on the serialized key image, build keys must be unique, and
    matched probe tuples are emitted in probe order with the payload
    columns appended under the same collision-renaming rule — so the
    hybrid planner can ship a join and still produce the offloaded bytes
    exactly.  Unlike the on-chip hash there is no capacity ceiling: this
    kernel is where a build-overflow refusal sends the join.
    """
    probe_col = schema.column(probe_key)
    build_col = build_schema.column(build_key)
    if probe_col.kind != build_col.kind or probe_col.width != build_col.width:
        raise OperatorError(
            f"join key type mismatch: probe {probe_key!r} is "
            f"{probe_col.kind}({probe_col.width}), build "
            f"{build_key!r} is {build_col.kind}({build_col.width})")
    key_schema = build_schema.project([build_key])
    width = key_schema.row_width
    bkeys = key_schema.empty(len(build_rows))
    bkeys[build_key] = build_rows[build_key]
    braw = key_schema.to_bytes(bkeys)
    # The same resizable map the other software kernels use — it is the
    # structure the cost model's hash/resize terms are calibrated to.
    table = SoftwareHashMap()
    for i in range(len(build_rows)):
        key = braw[i * width:(i + 1) * width]
        if not table.put(key, i):
            raise OperatorError(
                f"duplicate build key at row {i}: the small table must "
                f"have unique join keys")
    pkeys = key_schema.empty(len(rows))
    pkeys[build_key] = rows[probe_key]
    praw = key_schema.to_bytes(pkeys)
    probe_idx: list[int] = []
    build_idx: list[int] = []
    for i in range(len(rows)):
        j = table.get(praw[i * width:(i + 1) * width])
        if j is not None:
            probe_idx.append(i)
            build_idx.append(j)
    out_schema = join_output_schema(schema, build_schema, payload_columns)
    out = out_schema.empty(len(probe_idx))
    payload_names = list(out_schema.names[len(schema.names):])
    pidx = np.asarray(probe_idx, dtype=np.int64)
    bidx = np.asarray(build_idx, dtype=np.int64)
    for name in schema.names:
        out[name] = rows[name][pidx]
    for out_name, src_name in zip(payload_names, payload_columns):
        out[out_name] = build_rows[src_name][bidx]
    return out


def software_sort(rows: np.ndarray, keys: list[tuple[str, bool]]
                  ) -> np.ndarray:
    """Deterministic multi-key sort (ORDER BY's client-side kernel).

    Stable lexicographic sort: iterate the keys last-to-first, each pass
    a stable argsort.  Descending keys are handled by negating the
    *rank* of each value (``np.unique`` inverse), not the value itself,
    so char and float columns order correctly without overflow.
    """
    if len(rows) == 0:
        return rows
    idx = np.arange(len(rows))
    for name, ascending in reversed(keys):
        codes = np.unique(rows[name][idx], return_inverse=True)[1]
        if not ascending:
            codes = -codes
        idx = idx[np.argsort(codes, kind="stable")]
    return rows[idx]


def software_limit(rows: np.ndarray, count: int) -> np.ndarray:
    """LIMIT: the first ``count`` rows of the (already ordered) input."""
    return rows[:count]


def software_regex(rows: np.ndarray, column: str,
                   pattern: str) -> np.ndarray:
    """RE2-equivalent filter over a char column."""
    regex = CompiledRegex(pattern)
    keep = np.zeros(len(rows), dtype=bool)
    values = rows[column]
    for i in range(len(rows)):
        keep[i] = regex.search(bytes(values[i]))
    return rows[keep]


def software_decrypt(image: bytes, key: bytes, nonce: bytes) -> bytes:
    """Cryptopp-equivalent AES-128-CTR decryption of a table image."""
    return AesCtr(key, nonce).process(image)
