"""CPU baselines: functional equality with oracles + cost-model behaviour."""

import numpy as np
import pytest

from repro.baselines.cpu_model import CostBreakdown, CpuCostModel
from repro.baselines.hashmap import SoftwareHashMap
from repro.baselines.lcpu import LcpuBaseline
from repro.baselines.rcpu import RcpuBaseline
from repro.baselines.rnic import RnicBaseline
from repro.common import calibration as cal
from repro.common.config import CpuConfig
from repro.common.errors import ConfigurationError, OperatorError
from repro.operators.aggregate import AggregateSpec
from repro.operators.encryption_op import encrypt_table_image
from repro.workloads.generator import (
    distinct_workload,
    groupby_workload,
    selection_workload,
    string_workload,
)

KB = 1024


# --- software hash map ----------------------------------------------------------

def test_hashmap_put_get():
    m = SoftwareHashMap()
    assert m.put(b"a", 1)
    assert not m.put(b"a", 2)  # update, not new
    assert m.get(b"a") == 2
    assert b"a" in m and b"b" not in m
    assert len(m) == 1


def test_hashmap_grows():
    m = SoftwareHashMap(initial_slots=16)
    for i in range(100):
        m.put(f"key{i}".encode(), i)
    assert len(m) == 100
    assert m.resizes >= 3
    assert m.rehashed_entries > 0
    for i in range(100):
        assert m.get(f"key{i}".encode()) == i


def test_hashmap_items():
    m = SoftwareHashMap()
    m.put(b"x", 1)
    m.put(b"y", 2)
    assert dict(m.items()) == {b"x": 1, b"y": 2}


def test_hashmap_validates_slots():
    with pytest.raises(OperatorError):
        SoftwareHashMap(initial_slots=12)  # not power of two


def test_hashmap_matches_dict_oracle():
    import random
    rng = random.Random(42)
    m = SoftwareHashMap()
    oracle = {}
    for _ in range(500):
        k = f"k{rng.randrange(100)}".encode()
        v = rng.randrange(1000)
        m.put(k, v)
        oracle[k] = v
    assert dict(m.items()) == oracle


# --- cost model --------------------------------------------------------------------

def test_cost_breakdown_totals():
    cb = CostBreakdown()
    cb.add("read", 100.0)
    cb.add("read", 50.0)
    cb.add("write", 25.0)
    assert cb.total_ns == 175.0
    with pytest.raises(ConfigurationError):
        cb.add("bad", -1.0)


def test_interference_shrinks_bandwidth():
    solo = CpuCostModel(active_clients=1)
    six = CpuCostModel(active_clients=6)
    assert six.read_bandwidth < solo.read_bandwidth
    # With 6 clients the socket ceiling also binds.
    assert six.read_bandwidth <= CpuConfig().socket_dram_bandwidth / 6 + 1e-9


def test_growing_hash_costs_more():
    m = CpuCostModel()
    assert m.hash_ns(1000, growing=True) > m.hash_ns(1000, growing=False)


def test_model_validates_clients():
    with pytest.raises(ConfigurationError):
        CpuCostModel(active_clients=0)


# --- LCPU functional equality ----------------------------------------------------------

def test_lcpu_select_matches_numpy():
    wl = selection_workload(2048, 0.5)
    result, elapsed, cost = LcpuBaseline().select(wl.schema, wl.rows,
                                                  wl.predicate)
    expected = wl.rows[wl.predicate.evaluate(wl.rows)]
    np.testing.assert_array_equal(result["a"], expected["a"])
    assert elapsed > 0
    assert set(cost.parts) == {"setup", "read", "predicate", "write"}


def test_lcpu_distinct_matches_set():
    schema, rows = distinct_workload(1024, 200)
    result, elapsed, cost = LcpuBaseline().distinct(schema, rows, ["a"])
    assert sorted(result["a"].tolist()) == sorted(set(rows["a"].tolist()))
    assert "hash" in cost.parts


def test_lcpu_groupby_matches_dict():
    schema, rows = groupby_workload(1024, 32)
    result, _, _ = LcpuBaseline().group_by(
        schema, rows, ["a"], [AggregateSpec("sum", "b")])
    got = {int(k): v for k, v in zip(result["a"], result["sum_b"])}
    expected = {}
    for k, v in zip(rows["a"], rows["b"]):
        expected[int(k)] = expected.get(int(k), 0.0) + float(v)
    assert got.keys() == expected.keys()
    for k in expected:
        assert got[k] == pytest.approx(expected[k])


def test_lcpu_regex_matches_substring_oracle():
    schema, rows = string_workload(256, 64, match_fraction=0.5)
    result, _, cost = LcpuBaseline().regex(schema, rows, "s", "farview")
    expected_ids = {int(r["id"]) for r in rows if b"farview" in bytes(r["s"])}
    assert set(result["id"].tolist()) == expected_ids
    assert "re2" in cost.parts


def test_lcpu_decrypt_round_trip():
    key, nonce = b"k" * 16, b"n" * 12
    wl = selection_workload(256, 1.0)
    image = encrypt_table_image(wl.schema.to_bytes(wl.rows), key, nonce)
    rows, _, cost = LcpuBaseline().decrypt(wl.schema, image, key, nonce)
    np.testing.assert_array_equal(rows["a"], wl.rows["a"])
    assert "aes" in cost.parts


# --- RCPU is LCPU + shipping ---------------------------------------------------------------

def test_rcpu_slower_than_lcpu_everywhere():
    wl = selection_workload(4096, 0.5)
    _, t_l, _ = LcpuBaseline().select(wl.schema, wl.rows, wl.predicate)
    _, t_r, _ = RcpuBaseline().select(wl.schema, wl.rows, wl.predicate)
    assert t_r > t_l  # §6.4: "in all the cases it is slower than LCPU"


def test_rcpu_result_identical_to_lcpu():
    schema, rows = distinct_workload(512, 64)
    r_l, _, _ = LcpuBaseline().distinct(schema, rows, ["a"])
    r_r, _, _ = RcpuBaseline().distinct(schema, rows, ["a"])
    np.testing.assert_array_equal(r_l["a"], r_r["a"])


def test_rcpu_ship_cost_grows_with_result_size():
    wl_small = selection_workload(4096, 0.1)
    wl_large = selection_workload(4096, 0.9)
    _, _, cost_small = RcpuBaseline().select(wl_small.schema, wl_small.rows,
                                             wl_small.predicate)
    _, _, cost_large = RcpuBaseline().select(wl_large.schema, wl_large.rows,
                                             wl_large.predicate)
    assert cost_large.parts["ship_result"] > cost_small.parts["ship_result"]


# --- RNIC microbenchmark model (Figure 6 anchors) ------------------------------------------------

def test_rnic_throughput_peaks_near_11():
    rnic = RnicBaseline()
    peak = max(rnic.read_throughput_gbps(s)
               for s in (8 * KB, 16 * KB, 32 * KB))
    assert 10.0 <= peak <= 11.5  # "peaks at ~11 GBps" (PCIe bound)


def test_rnic_response_time_monotonic_in_size():
    rnic = RnicBaseline()
    times = [rnic.read_response_time_ns(s)
             for s in (512, 2 * KB, 8 * KB, 32 * KB)]
    assert times == sorted(times)


def test_rnic_pcie_latency_visible_at_small_sizes():
    rnic = RnicBaseline()
    rt = rnic.read_response_time_ns(512)
    assert rt > cal.RNIC_PCIE_LATENCY_NS  # the crossing is paid


def test_rnic_validates_inputs():
    rnic = RnicBaseline()
    with pytest.raises(ConfigurationError):
        rnic.read_response_time_ns(0)
    with pytest.raises(ConfigurationError):
        rnic.read_throughput_gbps(1024, window=0)
