"""Multi-tenant pool: six clients share one Farview node (§6.8).

Each client gets its own dynamic region, protection domain and queue pair.
The experiment shows three properties from the paper:

* **isolation** — a client cannot read another client's table
  (protection domains, §4.4);
* **concurrency** — six DISTINCT queries execute simultaneously; the
  fair-share arbiters split DRAM/network bandwidth so completion times
  stay tightly grouped (§4.3);
* **elastic regions** — closing a connection frees its region for the
  next tenant, and a seventh concurrent tenant is refused while all six
  regions are busy.

Run:  python examples/multi_tenant.py
"""

from repro.common.errors import RegionUnavailableError, TranslationFault
from repro.common.units import to_us
from repro.core.api import FarviewClient
from repro.core.node import FarviewNode
from repro.core.query import select_distinct
from repro.core.table import FTable
from repro.sim.engine import Simulator
from repro.workloads.generator import distinct_workload

NUM_CLIENTS = 6
ROWS = 8_192  # 512 kB per tenant


def main() -> None:
    sim = Simulator()
    node = FarviewNode(sim)
    clients: list[FarviewClient] = []
    tables: list[FTable] = []

    for i in range(NUM_CLIENTS):
        client = FarviewClient(node)
        client.open_connection()
        schema, rows = distinct_workload(ROWS, 128, seed=i)
        table = FTable(f"tenant{i}", schema, len(rows))
        client.alloc_table_mem(table)
        client.table_write(table, rows)
        clients.append(client)
        tables.append(table)
    print(f"{NUM_CLIENTS} tenants connected; free regions: "
          f"{node.free_regions}")

    # ---- isolation: addresses are per protection domain --------------------------
    # Both tenants' tables sit at the same *virtual* address, but each
    # domain translates it to its own physical pages: tenant 1 reading
    # tenant 0's vaddr sees its own bytes, never tenant 0's.
    via_0 = node.mmu.peek(clients[0].connection.domain, tables[0].vaddr, 64)
    via_1 = node.mmu.peek(clients[1].connection.domain, tables[0].vaddr, 64)
    assert via_0 != via_1, "domains must map the same vaddr differently"
    print("isolation: identical vaddr resolves to different tenants' pages")
    # And an address a tenant never allocated faults outright.
    try:
        node.mmu.peek(clients[1].connection.domain, 1 << 40, 64)
        raise AssertionError("isolation violated!")
    except TranslationFault:
        print("isolation: unmapped address raises TranslationFault")

    # ---- a seventh tenant is refused while regions are full ---------------------
    try:
        FarviewClient(node).open_connection()
        raise AssertionError("expected region exhaustion")
    except RegionUnavailableError:
        print(f"admission control: tenant {NUM_CLIENTS} refused "
              f"(all regions busy)")

    # ---- six concurrent DISTINCT queries -----------------------------------------
    query = select_distinct(["a"])
    for client, table in zip(clients, tables):
        client.far_view(table, query)  # deploy pipelines (ms, one-off)

    finish_times: dict[int, float] = {}

    def run_tenant(idx: int):
        result = yield from clients[idx].far_view_proc(tables[idx], query)
        assert len(result.rows()) == 128
        finish_times[idx] = sim.now

    start = sim.now
    for i in range(NUM_CLIENTS):
        sim.process(run_tenant(i))
    sim.run()

    times_us = {i: to_us(t - start) for i, t in finish_times.items()}
    spread = max(times_us.values()) - min(times_us.values())
    print("\nconcurrent DISTINCT per tenant:")
    for i in sorted(times_us):
        print(f"  tenant {i}: {times_us[i]:8.1f} us")
    print(f"fairness spread: {spread:.1f} us "
          f"({spread / max(times_us.values()):.1%} of the slowest)")

    # ---- release a region and admit the waiting tenant -----------------------------
    clients[0].close_connection()
    late = FarviewClient(node)
    late.open_connection()
    print(f"\ntenant 0 left; late tenant admitted "
          f"(region {late.connection.region.index}). done.")


if __name__ == "__main__":
    main()
