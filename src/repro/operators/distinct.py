"""DISTINCT operator: cuckoo hash tables + shift-register LRU (paper §5.4).

Architecture (Figure 5): each tuple's key is first probed in the LRU cache
(hides hash-table pipeline latency / data hazards), then looked up in N
cuckoo tables in parallel.  Unseen keys are emitted immediately (fully
streaming) and inserted; keys that fail insertion after the eviction chain
land in the *overflow buffer*, "which is sent to the client to be
deduplicated in software".

Overflowed keys are emitted too (the hardware cannot suppress what it
cannot remember) and the node surfaces ``overflow_keys`` so the client-side
software dedup can be applied — the integration tests verify end-to-end
exactness of that contract.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import OperatorError
from ..common.records import Schema
from .base import RowOperator
from .cuckoo import CuckooHashTable
from .lru_cache import ShiftRegisterLru


class DistinctOperator(RowOperator):
    """Eliminate duplicate tuples on the given key columns."""

    fill_latency_cycles = 10  # deeper block: hash + table lookup stages

    def __init__(self, key_columns: list[str] | None = None,
                 ways: int = 4, slots_per_way: int = 16_384,
                 max_kicks: int = 32, lru_depth_per_way: int = 4):
        super().__init__("distinct")
        self.key_columns = list(key_columns) if key_columns else None
        self.table = CuckooHashTable(ways, slots_per_way, max_kicks)
        self.lru = ShiftRegisterLru(ways * lru_depth_per_way)
        self.duplicates_dropped = 0
        self.overflow_count = 0
        self._schema: Schema | None = None
        self._key_schema: Schema | None = None
        #: O(1) mirror of the keys resident in the cuckoo table (kept in
        #: lock-step with every put/overflow) so the streaming probe is one
        #: hash lookup instead of a four-way table walk.
        self._resident: set[bytes] = set()

    def _bind(self, schema: Schema) -> Schema:
        if self.key_columns is None:
            self.key_columns = list(schema.names)
        for name in self.key_columns:
            schema.column(name)  # validates
        self._schema = schema
        self._key_schema = schema.project(self.key_columns)
        return schema

    def _key_image(self, batch: np.ndarray) -> bytes:
        """Serialized key columns, one fixed-width key per row."""
        assert self._key_schema is not None
        key_schema = self._key_schema
        keys = key_schema.empty(len(batch))
        for name in self.key_columns:
            keys[name] = batch[name]
        return key_schema.to_bytes(keys)

    def _process(self, batch: np.ndarray) -> np.ndarray:
        n = len(batch)
        if n == 0:
            return batch
        raw = self._key_image(batch)
        width = self._key_schema.row_width
        # Hash every key for every way in one vectorized pass; the per-row
        # scan below then runs on O(1) dict/set operations only.
        slots = self.table.batch_slots(raw, width)
        keep = np.zeros(n, dtype=bool)
        lru_probe = self.lru.lookup_or_insert
        resident = self._resident
        table = self.table
        overflow = table.overflow
        dropped = 0
        for i in range(n):
            key = raw[i * width:(i + 1) * width]
            if lru_probe(key) or key in resident:
                dropped += 1
                continue
            keep[i] = True
            resident.add(key)
            if not table.put(key, True, slots[i]):
                # The eviction chain pushed exactly one key (possibly this
                # one) out of residency into the overflow buffer.
                self.overflow_count += 1
                resident.discard(overflow[-1][0])
        self.duplicates_dropped += dropped
        return batch[keep]

    @property
    def distinct_seen(self) -> int:
        return len(self.table)

    def drain_overflow_keys(self) -> list[bytes]:
        """Overflowed keys for client-side software dedup (§5.4)."""
        return [key for key, _ in self.table.drain_overflow()]
