"""Stores, bandwidth pipes, credit pools, and fair arbitration."""

import pytest

from repro.common.errors import FlowControlError
from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import BandwidthPipe, CreditPool, RoundRobinArbiter, Store


# --- Store -------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put("a")
        yield store.put("b")
        first = yield store.get()
        second = yield store.get()
        return first, second

    assert sim.run_process(proc()) == ("a", "b")


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return item, sim.now

    def producer():
        yield sim.timeout(25.0)
        yield store.put("x")

    def main():
        c = sim.process(consumer())
        sim.process(producer())
        result = yield c
        return result

    item, when = sim.run_process(main())
    assert item == "x"
    assert when == pytest.approx(25.0)


def test_store_capacity_backpressure():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)  # blocks until consumer drains
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(50.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    def main():
        p = sim.process(producer())
        c = sim.process(consumer())
        yield sim.all_of([p, c])

    sim.run_process(main())
    put2_time = dict((e[0], e[-1]) for e in log)["put2"]
    assert put2_time == pytest.approx(50.0)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("z")
    sim.run()
    ok, item = store.try_get()
    assert ok and item == "z"


def test_store_rejects_bad_capacity():
    with pytest.raises(SimulationError):
        Store(Simulator(), capacity=0)


# --- BandwidthPipe -----------------------------------------------------------

def test_pipe_service_time():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=2.0)  # 2 bytes/ns
    assert pipe.service_time(100) == pytest.approx(50.0)


def test_pipe_single_transfer_completes_at_size_over_rate():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=4.0, latency_ns=10.0)

    def proc():
        yield pipe.transfer(400)
        return sim.now

    # 400 B / 4 B/ns = 100 ns occupancy + 10 ns latency
    assert sim.run_process(proc()) == pytest.approx(110.0)


def test_pipe_serializes_transfers():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=1.0)
    times = {}

    def sender(tag, nbytes):
        yield pipe.transfer(nbytes)
        times[tag] = sim.now

    def main():
        a = sim.process(sender("a", 100))
        b = sim.process(sender("b", 100))
        yield sim.all_of([a, b])

    sim.run_process(main())
    assert times["a"] == pytest.approx(100.0)
    assert times["b"] == pytest.approx(200.0)  # queued behind a


def test_pipe_idle_gap_not_charged():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=1.0)

    def proc():
        yield pipe.transfer(10)
        yield sim.timeout(100.0)
        yield pipe.transfer(10)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(120.0)


def test_pipe_counts_bytes():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=1.0)

    def proc():
        yield pipe.transfer(64)
        yield pipe.transfer(36)

    sim.run_process(proc())
    assert pipe.bytes_transferred == 100
    assert pipe.transfers == 2
    assert pipe.utilization(100.0) == pytest.approx(1.0)


def test_pipe_utilization_counts_extra_occupancy():
    """Per-packet overhead occupies the pipe and must show in utilization."""
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=1.0)

    def proc():
        yield pipe.transfer(50, extra_ns=25.0)

    sim.run_process(proc())
    assert pipe.occupied_ns == pytest.approx(75.0)
    # 50 B of wire time + 25 ns of header processing over a 100 ns window.
    assert pipe.utilization(100.0) == pytest.approx(0.75)
    assert pipe.utilization(50.0) == pytest.approx(1.0)  # clamped


def test_pipe_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(SimulationError):
        BandwidthPipe(sim, rate=0.0)
    with pytest.raises(SimulationError):
        BandwidthPipe(sim, rate=1.0, latency_ns=-1.0)
    pipe = BandwidthPipe(sim, rate=1.0)
    with pytest.raises(SimulationError):
        pipe.transfer(-1)


# --- CreditPool ----------------------------------------------------------------

def test_credits_block_when_exhausted():
    sim = Simulator()
    pool = CreditPool(sim, credits=1)
    log = []

    def worker(tag):
        yield pool.acquire()
        log.append((tag, sim.now))
        yield sim.timeout(10.0)
        pool.release()

    def main():
        a = sim.process(worker("a"))
        b = sim.process(worker("b"))
        yield sim.all_of([a, b])

    sim.run_process(main())
    assert log[0] == ("a", 0.0)
    assert log[1][0] == "b"
    assert log[1][1] == pytest.approx(10.0)


def test_over_release_raises():
    sim = Simulator()
    pool = CreditPool(sim, credits=2)
    with pytest.raises(FlowControlError):
        pool.release()


def test_credit_pool_requires_positive_credits():
    with pytest.raises(SimulationError):
        CreditPool(Simulator(), credits=0)


# --- RoundRobinArbiter ---------------------------------------------------------

def test_arbiter_round_robins_between_flows():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=1.0)
    arb = RoundRobinArbiter(sim, pipe)
    arb.register_flow(1)
    arb.register_flow(2)
    completions = []

    def client(flow_id, count):
        for i in range(count):
            yield arb.submit(flow_id, 10)
            completions.append((flow_id, sim.now))

    def main():
        a = sim.process(client(1, 3))
        b = sim.process(client(2, 3))
        yield sim.all_of([a, b])

    sim.run_process(main())
    order = [flow for flow, _ in sorted(completions, key=lambda c: c[1])]
    # Strict alternation: no flow gets two grants in a row while the other waits.
    assert order == [1, 2, 1, 2, 1, 2]


def test_arbiter_single_flow_uses_full_pipe():
    sim = Simulator()
    pipe = BandwidthPipe(sim, rate=2.0)
    arb = RoundRobinArbiter(sim, pipe)
    arb.register_flow(7)

    def client():
        for _ in range(4):
            yield arb.submit(7, 20)
        return sim.now

    assert sim.run_process(client()) == pytest.approx(40.0)


def test_arbiter_rejects_unknown_flow():
    sim = Simulator()
    arb = RoundRobinArbiter(sim, BandwidthPipe(sim, rate=1.0))
    with pytest.raises(SimulationError):
        arb.submit(99, 10)


def test_arbiter_rejects_duplicate_flow():
    sim = Simulator()
    arb = RoundRobinArbiter(sim, BandwidthPipe(sim, rate=1.0))
    arb.register_flow(1)
    with pytest.raises(SimulationError):
        arb.register_flow(1)
