"""Region leasing / admission control (elasticity future work)."""

import pytest

from repro.common.config import FarviewConfig, MemoryConfig, OperatorStackConfig
from repro.core.elasticity import RegionLeaseManager
from repro.core.node import FarviewNode
from repro.core.query import select_star
from repro.core.table import FTable
from repro.operators.selection import Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import selection_workload

KB = 1024
MB = 1024 * KB


def make_node(regions=2):
    sim = Simulator()
    config = FarviewConfig(
        memory=MemoryConfig(channels=2, channel_capacity=8 * MB,
                            page_size=64 * KB),
        operator_stack=OperatorStackConfig(regions=regions))
    return sim, FarviewNode(sim, config)


def test_acquire_within_capacity_is_immediate():
    sim, node = make_node(regions=2)
    manager = RegionLeaseManager(node)

    def main():
        a = yield from manager.acquire()
        b = yield from manager.acquire()
        return a, b, sim.now

    a, b, now = sim.run_process(main())
    assert a.connection.region.index != b.connection.region.index
    assert now == 0.0
    assert manager.leases_granted == 2


def test_acquire_waits_for_release_fifo():
    sim, node = make_node(regions=1)
    manager = RegionLeaseManager(node)
    order = []

    def holder():
        client = yield from manager.acquire()
        order.append("holder")
        yield sim.timeout(100.0)
        manager.release(client)

    def waiter(tag, delay):
        yield sim.timeout(delay)
        client = yield from manager.acquire()
        order.append((tag, sim.now))
        manager.release(client)

    def main():
        procs = [sim.process(holder()),
                 sim.process(waiter("first", 1.0)),
                 sim.process(waiter("second", 2.0))]
        yield sim.all_of(procs)

    sim.run_process(main())
    assert order[0] == "holder"
    assert order[1][0] == "first"       # FIFO: earlier request served first
    assert order[1][1] >= 100.0
    assert order[2][0] == "second"
    assert manager.max_queue_depth == 2


def test_with_lease_releases_on_success():
    sim, node = make_node(regions=1)
    manager = RegionLeaseManager(node)

    def body(client):
        yield sim.timeout(5.0)
        return client.connection.region.index

    def main():
        first = yield from manager.with_lease(body)
        second = yield from manager.with_lease(body)
        return first, second

    first, second = sim.run_process(main())
    assert first == second == 0  # region recycled
    assert node.free_regions == 1


def test_with_lease_releases_on_failure():
    sim, node = make_node(regions=1)
    manager = RegionLeaseManager(node)

    def failing(client):
        yield sim.timeout(1.0)
        raise RuntimeError("query exploded")

    def main():
        try:
            yield from manager.with_lease(failing)
        except RuntimeError:
            pass
        # The region must be free again for the next tenant.
        client = yield from manager.acquire()
        return client.connection.region.index

    assert sim.run_process(main()) == 0


def test_leased_clients_run_real_queries():
    sim, node = make_node(regions=2)
    manager = RegionLeaseManager(node)
    wl = selection_workload(512, 0.5)
    completions = []

    def tenant(i):
        def body(client):
            table = FTable(f"T{i}", wl.schema, len(wl.rows))
            client.alloc_table_mem(table)
            yield from client.table_write_proc(table, wl.rows)
            result = yield from client.far_view_proc(
                table, select_star(wl.predicate))
            return len(result.rows())
        count = yield from manager.with_lease(body)
        completions.append((i, count, sim.now))

    def main():
        procs = [sim.process(tenant(i)) for i in range(5)]
        yield sim.all_of(procs)

    sim.run_process(main())
    assert len(completions) == 5
    expected = int(wl.predicate.evaluate(wl.rows).sum())
    assert all(count == expected for _, count, _ in completions)
    # With 2 regions and 5 tenants, some had to queue.
    assert manager.max_queue_depth >= 1
    assert node.free_regions == 2
