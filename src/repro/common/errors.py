"""Exception hierarchy for the Farview reproduction.

Every subsystem raises a subclass of :class:`FarviewError` so callers can
catch the library's failures without masking programming errors (``TypeError``
etc. propagate untouched).
"""

from __future__ import annotations


class FarviewError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(FarviewError):
    """An invalid configuration value was supplied."""


class MemoryError_(FarviewError):
    """Base class for memory-stack errors (named to avoid shadowing builtin)."""


class OutOfMemoryError(MemoryError_):
    """The disaggregated memory pool cannot satisfy an allocation."""


class TranslationFault(MemoryError_):
    """The MMU found no mapping for a virtual address."""


class ProtectionFault(MemoryError_):
    """A client touched memory belonging to a different protection domain."""


class NetworkError(FarviewError):
    """Base class for network-stack errors."""


class ConnectionError_(NetworkError):
    """Connection establishment or teardown failed."""


class FlowControlError(NetworkError):
    """Credit accounting was violated (indicates a simulator bug)."""


class OperatorError(FarviewError):
    """Base class for operator-stack errors."""


class PipelineCompilationError(OperatorError):
    """A query could not be compiled into an operator pipeline."""


class RegionUnavailableError(OperatorError):
    """No free dynamic region is available for a new client."""


class JoinBuildOverflowError(PipelineCompilationError):
    """A join's build side does not fit the region's on-chip hash.

    Raised both by the compiler's capacity pre-check (row count exceeds
    the cuckoo slots) and by the build loader when kick chains exhaust
    below nominal capacity.  A typed refusal — never a silent wrong
    answer: the caller must ship the join to the client instead
    (``placement="auto"``/``"ship"`` does so automatically)."""


class RegexSyntaxError(OperatorError):
    """The regex engine rejected a pattern."""


class CatalogError(FarviewError):
    """A table was not found in (or conflicts with) the client catalog."""


class QueryError(FarviewError):
    """A query descriptor is malformed or references unknown columns."""


class FaultError(FarviewError):
    """Base class for injected-failure errors (see :mod:`repro.core.faults`).

    Everything the fault layer surfaces is typed under this class, so a
    caller that wants to survive chaos catches ``FaultError`` at each verb
    and never has to distinguish wrong bytes from lost nodes — wrong bytes
    are impossible by construction (failed requests raise, they never
    return partial data)."""


class NodeFailedError(FaultError):
    """The target memory node crashed (fail-stop) before or during the
    request.  Contents written before the crash are lost; a recovered node
    comes back with a new incarnation and an empty logical state."""


class RequestTimeoutError(FaultError):
    """A request exceeded its per-request deadline.

    The deadline is checked against the request's completion time and the
    late result is discarded, so a timed-out request never leaks a stale
    or partial answer."""


class DegradedResultError(FaultError):
    """A scatter-gather query lost shards with no live replica.

    Raised only when the caller opted into degraded execution
    (``ClusterClient.allow_degraded``); carries the merged result over the
    surviving shards in :attr:`partial` plus the failed shard indexes."""

    def __init__(self, message: str, partial=None,
                 failed_shards: tuple[int, ...] = ()):
        super().__init__(message)
        self.partial = partial
        self.failed_shards = failed_shards


class RegionFailedError(FaultError):
    """The dynamic region serving this connection failed mid-pipeline.

    The node is still alive — only the operator slot is gone — so planners
    fall back to the ship path (scan raw bytes, compute client-side)
    exactly like a :class:`JoinBuildOverflowError` refusal."""
