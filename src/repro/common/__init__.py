"""Shared foundations: units, calibration, configuration, errors, records."""

from .config import (
    DEFAULT_CONFIG,
    CpuConfig,
    FarviewConfig,
    MemoryConfig,
    NetworkConfig,
    OperatorStackConfig,
    RnicConfig,
)
from .errors import (
    CatalogError,
    ConfigurationError,
    FarviewError,
    FlowControlError,
    OperatorError,
    OutOfMemoryError,
    PipelineCompilationError,
    ProtectionFault,
    QueryError,
    RegexSyntaxError,
    RegionUnavailableError,
    TranslationFault,
)
from .records import Column, Schema, default_schema, string_schema, wide_schema

__all__ = [
    "DEFAULT_CONFIG",
    "CpuConfig",
    "FarviewConfig",
    "MemoryConfig",
    "NetworkConfig",
    "OperatorStackConfig",
    "RnicConfig",
    "CatalogError",
    "ConfigurationError",
    "FarviewError",
    "FlowControlError",
    "OperatorError",
    "OutOfMemoryError",
    "PipelineCompilationError",
    "ProtectionFault",
    "QueryError",
    "RegexSyntaxError",
    "RegionUnavailableError",
    "TranslationFault",
    "Column",
    "Schema",
    "default_schema",
    "string_schema",
    "wide_schema",
]
