"""Cost-based operator placement: offload, ship-to-compute, or hybrid.

The paper's interface "is intended to be used by the query compiler in
Farview" (§4.2); this module is the placement half of that compiler.  A
:class:`~repro.core.query.Query` is an ordered operator chain

    decrypt -> regex -> selection -> projection ->
    distinct | group-by | aggregation

and any *prefix* of that chain is a valid offloaded fragment: the node
runs the prefix and ships the (reduced) intermediate, the client executes
the remaining suffix in software (the same
:mod:`repro.baselines.sw_ops` kernels the CPU baselines use, so results
stay byte-exact).  The planner enumerates every prefix split — from
"ship everything raw" (k = 0) to "offload everything" (k = N, today's
default path) — prices each with
:class:`~repro.core.cost_model.PlacementCostModel`, and picks the
cheapest.

The chain is ``decrypt -> regex -> selection -> join -> projection ->
distinct | group-by | aggregation`` (the compiler's pipeline order).

Split-validity notes:

* prefix splits always validate: the compiler's operator order puts
  every producer before its consumers (e.g. a fragment containing
  group-by also contains the projection it reads through, and a
  projection naming join-payload columns also contains the join);
* encrypted tables force ``decrypt`` to be either offloaded first or
  shipped as ciphertext and decrypted client-side (k = 0);
* output encryption pins the query to full offload (transport
  encryption is only meaningful for node-produced results);
* joins split both ways: offloading the join pays build-ingest + BRAM
  fill at the node, shipping it pays a second raw read of the build
  table plus build-hash + probe CPU cost
  (:func:`~repro.baselines.sw_ops.software_join`, byte-compatible with
  the on-chip operator).  A build side too large for the on-chip hash
  is a *typed refusal*
  (:class:`~repro.common.errors.JoinBuildOverflowError`) on the offload
  side — under ``placement="auto"`` the planner then routes the join to
  the client instead of failing.

The decision, the estimates it was based on, and the eventually measured
time are exposed as an :class:`ExplainPlan` for observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Optional

import numpy as np

from ..baselines.cpu_model import CostBreakdown, CpuCostModel
from ..baselines.sw_ops import (
    software_aggregate,
    software_distinct,
    software_groupby,
    software_join,
    software_project,
    software_regex,
    software_select,
)
from ..common.config import FarviewConfig
from ..common.errors import JoinBuildOverflowError, QueryError
from ..common.records import Schema
from ..operators.join import join_output_schema
from .cluster import aggregate_output_schema, group_output_schema
from .cost_model import (CardinalityStep, PlacementCostModel, PlanStats,
                         delta_merge_cost_ns, estimate_chain,
                         join_build_profile)
from .pipeline_compiler import compile_query
from .query import Query
from .table import FTable

#: The three user-facing placement modes.
PLACEMENTS = ("auto", "offload", "ship")


def operator_chain(query: Query) -> list[str]:
    """The query's operator chain in pipeline order (compiler order)."""
    chain: list[str] = []
    if query.decrypt_input:
        chain.append("decrypt")
    if query.regex is not None:
        chain.append("regex")
    if query.predicate is not None:
        chain.append("selection")
    if query.join is not None:
        chain.append("join")
    if query.projection is not None:
        chain.append("projection")
    if query.distinct:
        chain.append("distinct")
    elif query.group_by:
        chain.append("groupby")
    elif query.aggregates:
        chain.append("aggregate")
    return chain


def build_fragment(query: Query, chain: list[str], split: int) -> Optional[Query]:
    """The offloaded prefix ``chain[:split]`` as a standalone Query.

    ``split == len(chain)`` returns the original query (identity — the
    legacy full-offload path must stay byte- and signature-identical);
    ``split == 0`` returns ``None`` (nothing offloaded, raw read).
    """
    if split == len(chain):
        return query
    if split == 0:
        return None
    included = set(chain[:split])
    projection = query.projection if "projection" in included else None
    # Smart addressing only applies to projection-only fragments; an
    # explicit hint survives exactly when the fragment still qualifies.
    smart = query.smart_addressing if included == {"projection"} else None
    return Query(
        projection=projection,
        predicate=query.predicate if "selection" in included else None,
        regex=query.regex if "regex" in included else None,
        join=query.join if "join" in included else None,
        distinct="distinct" in included,
        distinct_columns=(query.distinct_columns
                          if "distinct" in included else None),
        group_by=query.group_by if "groupby" in included else None,
        aggregates=(query.aggregates
                    if ("groupby" in included or "aggregate" in included)
                    else ()),
        decrypt_input="decrypt" in included,
        vectorized=query.vectorized and "selection" in included,
        smart_addressing=smart,
        label=query.label)


@dataclass
class Candidate:
    """One priced split point."""

    split: int
    label: str                 # "offload" | "ship" | "hybrid@k"
    total_ns: float
    node_ns: float             # offloaded fragment (or raw read) time
    client_ns: float           # software remainder time
    cold: bool


@dataclass
class ExplainPlan:
    """The planner's decision record: chosen placement per operator,
    estimated cost of every candidate, and (once executed) actual ns."""

    requested: str
    chosen: str                         # "offload" | "ship" | "hybrid"
    split: int
    chain: list[str]
    candidates: list[Candidate]
    est_chosen_ns: float
    est_offload_ns: float
    est_ship_ns: float
    stats: PlanStats
    actual_ns: Optional[float] = None
    #: Distributed-join build strategy for cluster queries: one of
    #: ``broadcast`` / ``colocated`` / ``shuffle`` when the chosen
    #: fragment offloads the join, ``ship`` when the join runs in client
    #: software, ``None`` for join-less or single-node queries.
    join_strategy: Optional[str] = None

    @property
    def placements(self) -> list[tuple[str, str]]:
        """(operator, "offload"|"client") per chain entry."""
        return [(op, "offload" if i < self.split else "client")
                for i, op in enumerate(self.chain)]

    def render(self) -> str:
        lines = [f"Placement plan (requested={self.requested}): "
                 f"{self.chosen}"]
        if self.join_strategy is not None:
            lines.append(f"  join strategy: {self.join_strategy}")
        for op, where in self.placements:
            lines.append(f"  {op:<10} -> {where}")
        if not self.chain:
            lines.append("  (raw read: no offloadable operators)")
        for cand in self.candidates:
            marker = "*" if cand.split == self.split else " "
            lines.append(
                f" {marker} {cand.label:<10} est {cand.total_ns / 1000:9.1f} us"
                f"  (node {cand.node_ns / 1000:.1f} + client "
                f"{cand.client_ns / 1000:.1f}"
                + (", cold region" if cand.cold else "") + ")")
        line = f"  estimated: {self.est_chosen_ns / 1000:.1f} us"
        if self.actual_ns is not None:
            line += f", actual: {self.actual_ns / 1000:.1f} us"
        lines.append(line)
        return "\n".join(lines)


@dataclass
class PlacementPlan:
    """Everything needed to execute one placed query."""

    query: Query
    chain: list[str]
    split: int
    fragment: Optional[Query]          # None => raw read (full ship)
    client_steps: list[str]            # suffix executed in software
    steps: list[CardinalityStep]       # full-chain cardinality estimates
    explain: ExplainPlan

    @property
    def full_offload(self) -> bool:
        return self.fragment is not None and not self.client_steps


def _requires_full_offload(query: Query) -> Optional[str]:
    """Why this query cannot be split/shipped, or None if it can."""
    if query.encrypt_output is not None:
        return "output encryption is produced by the node's pipeline"
    return None


def plan_placement(query: Query, table: FTable, config: FarviewConfig, *,
                   placement: str = "auto",
                   stats: PlanStats | None = None,
                   cpu: CpuCostModel | None = None,
                   loaded_signature: Optional[str] = None,
                   lease_manager=None,
                   shards: int = 1,
                   total_rows: int | None = None,
                   buffer_capacity: int | None = None,
                   scan_bytes: float | None = None,
                   delta_rows: float = 0.0,
                   refuse_join_offload: bool = False,
                   join_strategy: Optional[str] = None,
                   join_transfer_ns: float = 0.0,
                   join_build_shards: int = 1) -> PlacementPlan:
    """Choose where each operator of ``query`` runs.

    ``table`` provides the schema and (for fragments) the compile
    context; for a sharded table pass one shard's :class:`FTable` plus
    pool-level ``total_rows`` and ``shards``.  ``loaded_signature`` is
    the pipeline currently resident in the client's dynamic region —
    fragments whose signature differs are priced with the partial-
    reconfiguration charge.  ``lease_manager`` (optional) folds expected
    region-lease wait into the offload side when the pool is saturated.

    ``buffer_capacity`` (per-connection receive buffer, bytes) prunes
    ship/hybrid candidates whose shipped intermediate would not fit the
    client buffer — a raw read of a table larger than the buffer cannot
    land.  Full offload is never pruned (its result-must-fit behaviour
    is the legacy contract).  An *explicit* ``placement="ship"`` that
    cannot fit raises instead of crashing mid-read.

    Versioned tables pass ``scan_bytes`` (base + K delta segments — what
    the node's delta-merge ingest must stream, and what a ship raw read
    must transfer) and ``delta_rows``; the ship side is additionally
    charged the client-side software merge
    (:func:`~repro.core.cost_model.delta_merge_cost_ns`), so the
    ship/offload crossover shifts with the delta fraction.

    ``refuse_join_offload`` drops every candidate whose offloaded
    fragment contains the join — the clients' fallback after the node's
    on-chip build *load* overflowed at execution time (cuckoo kick
    chains can exhaust below the compiler's nominal-capacity pre-check,
    which is data-dependent and only detectable by actually building).

    The cluster router passes the resolved distributed-join strategy:
    ``join_strategy`` annotates the explain, ``join_transfer_ns`` adds a
    one-time build-movement charge (a cold shuffle) to every candidate
    whose fragment offloads the join, and ``join_build_shards`` divides
    the build-ingest fill for partitioned strategies — a colocated or
    shuffled build loads only its ``1/N`` fragment into the on-chip
    hash, which is also why oversized builds that overflow broadcast can
    still offload partitioned.
    """
    if placement not in PLACEMENTS:
        raise QueryError(
            f"placement must be one of {PLACEMENTS}, got {placement!r}")
    stats = stats if stats is not None else PlanStats()
    cost_model = PlacementCostModel(config, cpu)
    # Mirror the compiler's encrypted-table invariants up front: the ship
    # path never compiles a fragment, and no placement can parse
    # ciphertext (or decrypt a plaintext table).
    if table.encrypted and not query.decrypt_input:
        raise QueryError(
            f"table {table.name!r} is encrypted; the query must set "
            f"decrypt_input (no placement can parse ciphertext)")
    if query.decrypt_input and not table.encrypted:
        raise QueryError(
            f"query asks to decrypt but table {table.name!r} is not "
            f"encrypted")
    chain = operator_chain(query)
    schema = table.schema
    nrows = total_rows if total_rows is not None else table.num_rows
    bytes_in = nrows * schema.row_width
    scan_total = float(scan_bytes) if scan_bytes is not None else float(bytes_in)
    steps = estimate_chain(chain, query, schema, nrows, stats)

    pinned = _requires_full_offload(query)
    if placement == "ship" and pinned:
        raise QueryError(f"cannot ship this query to the client: {pinned}")

    if placement == "offload":
        splits = [len(chain)]
    elif placement == "ship":
        splits = [0]
    elif pinned or not chain:
        splits = [len(chain)]
    else:
        splits = list(range(len(chain) + 1))

    candidates: list[Candidate] = []
    for k in splits:
        # On an operator-less query split 0 == len(chain); an explicit
        # "ship" still means a raw read, not the (empty) offload pipeline.
        if k == 0 and not chain and placement == "ship":
            fragment = None
        else:
            fragment = build_fragment(query, chain, k)
        if (refuse_join_offload and fragment is not None
                and fragment.join is not None):
            continue
        if fragment is None:
            node_ns = cost_model.ship_bytes_ns(scan_total, shards)
            cold = False
            inter_schema, inter_bytes = schema, scan_total
        else:
            compile_fragment = fragment
            if fragment.join is not None and join_build_shards > 1:
                # Partitioned strategies load only this shard's build
                # fragment into the on-chip hash; compile (and price)
                # against a 1/N-sized proxy so a build that overflows
                # broadcast can still offload colocated/shuffled.
                build = fragment.join.build_table
                frag_rows = max(1, -(-int(build.num_rows)
                                     // join_build_shards))
                proxy = FTable(build.name, build.schema, frag_rows)
                compile_fragment = _dc_replace(
                    fragment, join=_dc_replace(fragment.join,
                                               build_table=proxy))
            try:
                compiled = compile_query(compile_fragment, table, config)
            except JoinBuildOverflowError:
                if placement == "offload":
                    raise
                # This prefix would load an oversized build side into the
                # on-chip hash — a typed refusal, not a candidate.  The
                # ship/hybrid-below-join splits remain in the running.
                continue
            if k == 0:
                inter_schema, inter_bytes = schema, float(bytes_in)
                rows_out = float(nrows)
            else:
                last = steps[k - 1]
                inter_schema = last.schema_out
                rows_out = last.rows_out
                inter_bytes = rows_out * inter_schema.row_width
            flush_groups = (steps[k - 1].rows_out
                            if k > 0 and chain[k - 1] == "groupby" else 0.0)
            build_bytes = 0.0
            if fragment.join is not None:
                _brows, bbytes, _bschema = join_build_profile(
                    compile_fragment)
                build_bytes = float(bbytes)
            cold = compiled.signature != loaded_signature
            node_ns = cost_model.offload_ns(
                bytes_in=scan_total, bytes_out=inter_bytes,
                ingest_rate=compiled.ingest_rate,
                fill_cycles=compiled.pipeline.fill_latency_cycles,
                flush_groups=flush_groups, cold=cold, shards=shards,
                build_bytes=build_bytes)
            if fragment.join is not None:
                node_ns += join_transfer_ns
            node_ns += cost_model.lease_wait_ns(lease_manager, node_ns)
        client_ns = (cost_model.client_ops_ns(steps[k:], inter_schema,
                                              inter_bytes, query)
                     if k < len(chain) else 0.0)
        if fragment is None:
            # Shipping a version chain raw: the client also pays the
            # software merge before the remaining operators can run.
            client_ns += delta_merge_cost_ns(cost_model.cpu, nrows,
                                             delta_rows)
        label = ("ship" if fragment is None
                 else "offload" if k == len(chain) else f"hybrid@{k}")
        if (buffer_capacity is not None and label != "offload"
                and inter_bytes / max(1, shards) > buffer_capacity):
            # The shipped intermediate cannot land in the client buffer
            # (exact for ship — raw table bytes — estimated for hybrid).
            if placement == "ship":
                raise QueryError(
                    f"cannot ship {int(inter_bytes)} bytes: client buffer "
                    f"holds {buffer_capacity}; raise buffer_capacity or "
                    f"offload")
            continue
        candidates.append(Candidate(split=k, label=label,
                                    total_ns=node_ns + client_ns,
                                    node_ns=node_ns, client_ns=client_ns,
                                    cold=cold))

    if not candidates:
        raise QueryError(
            "no feasible placement: every offload prefix was refused "
            "(join build side exceeds the on-chip hash) and the shipped "
            "intermediate does not fit the client buffer")
    best = min(candidates, key=lambda c: (c.total_ns, -c.split))
    chosen = "hybrid" if best.label.startswith("hybrid") else best.label
    if best.label == "ship":
        best_fragment = None
    else:
        best_fragment = build_fragment(query, chain, best.split)
    by_label = {c.label: c.total_ns for c in candidates}
    explain = ExplainPlan(
        requested=placement, chosen=chosen, split=best.split, chain=chain,
        candidates=candidates, est_chosen_ns=best.total_ns,
        est_offload_ns=by_label.get("offload", float("nan")),
        est_ship_ns=by_label.get("ship", float("nan")), stats=stats)
    if query.join is not None and join_strategy is not None:
        offloaded = best_fragment is not None and best_fragment.join is not None
        explain.join_strategy = join_strategy if offloaded else "ship"
    return PlacementPlan(
        query=query, chain=chain, split=best.split, fragment=best_fragment,
        client_steps=chain[best.split:], steps=steps, explain=explain)


# ---------------------------------------------------------------------------
# Client-side remainder execution
# ---------------------------------------------------------------------------

def run_client_steps(rows: np.ndarray, schema: Schema, steps: list[str],
                     query: Query, cpu: CpuCostModel,
                     cost: CostBreakdown,
                     build_rows: np.ndarray | None = None
                     ) -> tuple[np.ndarray, Schema]:
    """Execute the software remainder over decoded rows.

    Mirrors the node pipeline operator for operator (same
    :mod:`~repro.baselines.sw_ops` kernels as the LCPU baseline, so the
    output bytes match full offload exactly) and charges
    :class:`~repro.baselines.cpu_model.CpuCostModel` time into ``cost``.
    ``decrypt`` is a byte-level stage the caller must have applied before
    decoding.  A shipped ``join`` step needs ``build_rows`` — the build
    table's decoded rows, fetched by the caller with a timed raw read.
    """
    from .cost_model import HASHMAP_GROWTH_THRESHOLD

    for step in steps:
        if step == "decrypt":
            raise QueryError(
                "decrypt is a byte-level stage; apply software_decrypt "
                "before decoding rows")
        if step == "regex":
            assert query.regex is not None
            width = schema.column(query.regex.column).width
            cost.add("re2", cpu.regex_ns(len(rows) * width))
            rows = software_regex(rows, query.regex.column,
                                  query.regex.pattern)
        elif step == "selection":
            assert query.predicate is not None
            cost.add("predicate", cpu.select_ns(len(rows)))
            rows = software_select(rows, query.predicate)
        elif step == "join":
            assert query.join is not None
            if build_rows is None:
                raise QueryError(
                    "shipped join needs the build table's rows; fetch "
                    "them with a raw read before running client steps")
            spec = query.join
            build_schema = spec.build_table.schema
            cost.add("hash", cpu.hash_ns(
                len(build_rows),
                growing=len(build_rows) > HASHMAP_GROWTH_THRESHOLD))
            cost.add("hash", cpu.hash_ns(len(rows), growing=False))
            rows = software_join(rows, schema, build_rows, build_schema,
                                 spec.build_key, spec.probe_key,
                                 list(spec.payload))
            schema = join_output_schema(schema, build_schema,
                                        list(spec.payload))
        elif step == "projection":
            assert query.projection is not None
            cost.add("project", cpu.select_ns(len(rows)))
            rows = software_project(rows, schema, list(query.projection))
            schema = schema.project(list(query.projection))
        elif step == "distinct":
            keys = (list(query.distinct_columns) if query.distinct_columns
                    else list(schema.names))
            output = software_distinct(rows, schema, keys)
            cost.add("hash", cpu.hash_ns(len(rows),
                                         growing=output.map_resizes > 0))
            rows = output.rows
        elif step == "groupby":
            assert query.group_by is not None
            output = software_groupby(rows, schema, list(query.group_by),
                                      list(query.aggregates))
            cost.add("hash", cpu.hash_ns(len(rows),
                                         growing=output.map_resizes > 0))
            cost.add("aggregate", cpu.aggregate_update_ns(len(rows)))
            rows = output.rows
            schema = group_output_schema(schema, list(query.group_by),
                                         list(query.aggregates))
        elif step == "aggregate":
            cost.add("aggregate", cpu.aggregate_update_ns(len(rows)))
            rows = software_aggregate(rows, schema, list(query.aggregates))
            schema = aggregate_output_schema(schema, list(query.aggregates))
        else:
            raise QueryError(f"unknown client step {step!r}")
    return rows, schema


# ---------------------------------------------------------------------------
# DAG placement (the compiled multi-stage path)
# ---------------------------------------------------------------------------

@dataclass
class StagePlan:
    """One independently placed stage of a compiled query DAG.

    ``explain`` is the stage's own :class:`ExplainPlan` when the planner
    priced it (ship/auto), ``None`` when the placement was pinned by the
    requested mode (the ``note`` says which).
    """

    name: str                           # "scan", "build(<table>)", op name
    placement: str                      # "offload" | "ship" | "hybrid" | "client"
    explain: Optional[ExplainPlan] = None
    note: str = ""


@dataclass
class DagPlan:
    """The placement decision record for a compiled (extended) statement.

    Generalizes :class:`ExplainPlan` from a prefix split of one operator
    chain to per-stage decisions over the lowered DAG: the head scan and
    every join-arm build read are placed independently (each through
    :func:`plan_placement`), the remaining client kernels always run at
    the client.
    """

    requested: str
    stages: list[StagePlan] = field(default_factory=list)
    actual_ns: Optional[float] = None

    def render(self) -> str:
        lines = [f"DAG placement plan (requested={self.requested}):"]
        for stage in self.stages:
            line = f"  {stage.name:<18} -> {stage.placement}"
            if stage.note:
                line += f"  ({stage.note})"
            lines.append(line)
            if stage.explain is not None:
                for sub in stage.explain.render().splitlines():
                    lines.append("    " + sub)
        if self.actual_ns is not None:
            lines.append(f"  actual: {self.actual_ns / 1000:.1f} us")
        return "\n".join(lines)
