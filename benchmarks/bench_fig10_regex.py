"""Figure 10 bench: regular-expression matching response time."""

from repro.experiments import fig10_regex


def test_fig10_regex(benchmark, shape):
    result = benchmark.pedantic(fig10_regex.run, rounds=1, iterations=1)
    shape.render(result)

    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")

    # FV outperforms both baselines at every string size (paper §6.6).
    shape.dominates(fv, lcpu, "fig10")
    shape.dominates(lcpu, rcpu, "fig10")

    # The CPU baselines pay a per-byte matching cost well above FV's
    # line-rate engines: the gap widens with the string size.
    first, last = fv.xs[0], fv.xs[-1]
    gap_first = lcpu.y_at(first) / fv.y_at(first)
    gap_last = lcpu.y_at(last) / fv.y_at(last)
    assert gap_last >= gap_first
    assert gap_last >= 3.0

    for series in (fv, lcpu, rcpu):
        shape.monotonic(series, "fig10")
