"""Figure 17 (repo extension): availability under deterministic fault injection.

The paper evaluates a healthy Farview node; a disaggregated pool, however,
lives or dies by what happens when a memory node does (§1's TCO argument
assumes failures are survivable).  This experiment injects seed-reproducible
node crashes (:mod:`repro.core.faults`) into the six-client scatter-gather
scan workload and measures what the recovery machinery — k-replica shard
placement, candidate failover, typed errors, capped-backoff retries —
buys:

* **fig17a** — successful-query throughput (queries/ms) vs the number of
  injected crash/recover pairs on a 4-node pool, with (``k=2``) and
  without (``k=1``) replication.
* **fig17b** — p99 latency (µs) of the *successful* queries on the same
  sweep: failover and retries cost tail latency, not correctness.
* **fig17c** — availability (% of queries that succeed) vs pool size when
  one node permanently crashes mid-workload.

Correctness is asserted inline, not just plotted:

* every successful query's merged result is sha256-identical to the
  no-fault reference (replicas are byte-identical copies and failover
  preserves shard order — wrong bytes are impossible, only typed errors);
* with ``k=2``, a single node crash loses **zero** queries;
* without replication, affected queries fail with typed
  :class:`~repro.common.errors.FaultError` subclasses — never hangs,
  never silent corruption.

Crashes are fail-stop with amnesia: a recovered node comes back empty
under a new incarnation, so ``k=1`` queries on its shard keep failing
after recovery (the bytes are gone) while ``k=2`` keeps serving from the
replica.  Every run is deterministic: same seed → same fault schedule →
same per-query outcomes.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..common.errors import FarviewError
from ..core.api import ClusterClient, canonical_result_bytes
from ..core.cluster import FarviewCluster
from ..core.faults import FaultEvent, FaultInjector, FaultPlan, RetryPolicy
from ..core.partition import PartitionSpec
from ..core.query import select_star
from ..sim.engine import Simulator
from ..sim.stats import Series
from ..workloads.generator import selection_workload
from .common import EXPERIMENT_CONFIG, ExperimentResult, us

KB = 1024

NUM_CLIENTS = 6
ROUNDS = 6                    # sequential queries per client
TABLE_KB = 32                 # per client (small: many queries per run)
SELECTIVITY = 0.5
CRASH_COUNTS = (0, 1, 2, 3)   # injected crash/recover pairs (fig17a/b)
NODE_COUNTS = (1, 2, 4, 8)    # pool sizes (fig17c)
BASE_SEED = 170

#: Typed errors a faulty run is allowed to surface (anything else — or a
#: hang — is a bug the in-experiment asserts catch).
_TYPED_ERRORS = {"NodeFailedError", "RequestTimeoutError",
                 "DegradedResultError", "RegionFailedError"}


def _trial(num_nodes: int, replicas: int, plan: FaultPlan | None = None,
           rounds: int = ROUNDS):
    """One deterministic run of the 6-client workload.

    Builds a fresh pool, uploads each client's table under ``replicas``-way
    placement, warms every pipeline, then runs ``rounds`` sequential
    scans per client concurrently — under ``plan``'s faults, if given.
    Returns ``(workload_start_ns, duration_ns, outcomes)`` where
    ``outcomes[i]`` is a list of ``("ok", latency_ns, sha256)`` or
    ``("err", latency_ns, error_type_name)`` per query of client ``i``.
    """
    sim = Simulator()
    cluster = FarviewCluster(sim, num_nodes, EXPERIMENT_CONFIG)
    clients, tables, queries = [], [], []
    num_rows = TABLE_KB * KB // 64
    for i in range(NUM_CLIENTS):
        cc = ClusterClient(cluster)
        cc.open_connection()
        cc.retry_policy = RetryPolicy(max_attempts=3,
                                      base_backoff_ns=2_000.0,
                                      max_backoff_ns=32_000.0)
        workload = selection_workload(num_rows, SELECTIVITY,
                                      seed=BASE_SEED + i)
        table = cc.create_table(f"T{i}", workload.schema, workload.rows,
                                PartitionSpec(replicas=replicas))
        clients.append(cc)
        tables.append(table)
        queries.append(select_star(workload.predicate))
    # Deploy all shard pipelines before measuring (§3.2: reconfiguration
    # is excluded from response times).
    for cc, table, query in zip(clients, tables, queries):
        cc.far_view(table, query)

    start = sim.now
    if plan is not None:
        FaultInjector(cluster, plan).install()
    outcomes: list[list[tuple]] = [[] for _ in range(NUM_CLIENTS)]

    def worker(i):
        for _round in range(rounds):
            t0 = sim.now
            try:
                result = yield from clients[i].far_view_proc(tables[i],
                                                             queries[i])
            except FarviewError as exc:
                outcomes[i].append(("err", sim.now - t0,
                                    type(exc).__name__))
            else:
                sha = hashlib.sha256(
                    canonical_result_bytes(result)).hexdigest()
                outcomes[i].append(("ok", sim.now - t0, sha))

    procs = [sim.process(worker(i), name=f"fig17.client{i}")
             for i in range(NUM_CLIENTS)]
    sim.run()
    assert all(p.triggered for p in procs), "a worker never completed (hang)"
    return start, sim.now - start, outcomes


def _shift(plan: FaultPlan, offset_ns: float) -> FaultPlan:
    """Rebase a plan's (relative) event times onto an absolute start."""
    from dataclasses import replace
    return FaultPlan([replace(ev, at_ns=ev.at_ns + offset_ns)
                      for ev in plan], seed=plan.seed)


def _check_outcomes(outcomes, reference_shas, label: str):
    """The experiment's correctness teeth (see module docstring)."""
    oks, errs = 0, 0
    latencies = []
    for i, per_client in enumerate(outcomes):
        for tag, latency, detail in per_client:
            if tag == "ok":
                assert detail == reference_shas[i], (
                    f"{label}: client {i} got wrong bytes under faults")
                oks += 1
                latencies.append(latency)
            else:
                assert detail in _TYPED_ERRORS, (
                    f"{label}: untyped failure {detail}")
                errs += 1
    return oks, errs, latencies


def _reference(num_nodes: int, replicas: int):
    """No-fault run: workload timing + per-client reference sha256s."""
    start, duration, outcomes = _trial(num_nodes, replicas)
    shas = []
    for per_client in outcomes:
        assert all(tag == "ok" for tag, _l, _d in per_client)
        client_shas = {d for _t, _l, d in per_client}
        assert len(client_shas) == 1, "no-fault run must be stable"
        shas.append(client_shas.pop())
    return start, duration, shas


def run_fault_sweep(crash_counts=CRASH_COUNTS,
                    num_nodes: int = 4) -> tuple[ExperimentResult,
                                                 ExperimentResult]:
    """fig17a (throughput) + fig17b (p99 latency) vs injected crashes."""
    throughput = {1: Series("k=1"), 2: Series("k=2")}
    p99 = {1: Series("k=1"), 2: Series("k=2")}
    for replicas in (1, 2):
        start, duration, shas = _reference(num_nodes, replicas)
        for crashes in crash_counts:
            if crashes == 0:
                _s, dur, outcomes = _trial(num_nodes, replicas)
            else:
                plan = _shift(
                    FaultPlan.random(BASE_SEED + crashes, num_nodes,
                                     horizon_ns=duration, crashes=crashes,
                                     mean_outage_ns=duration / 4.0),
                    start)
                _s, dur, outcomes = _trial(num_nodes, replicas, plan)
            oks, errs, latencies = _check_outcomes(
                outcomes, shas, f"fig17a[k={replicas},c={crashes}]")
            assert oks + errs == NUM_CLIENTS * ROUNDS
            throughput[replicas].add(crashes, oks / (dur / 1e6))
            p99[replicas].add(
                crashes,
                us(float(np.percentile(latencies, 99))) if latencies
                else 0.0)
    result_a = ExperimentResult(
        experiment_id="fig17a",
        title=f"fault injection: successful-query throughput, "
              f"{num_nodes}-node pool",
        x_label="crash/recover pairs", y_label="queries/ms",
        series=[throughput[1], throughput[2]],
        notes=[f"{NUM_CLIENTS} clients x {ROUNDS} scans of {TABLE_KB} KiB "
               f"tables; crashes are fail-stop with amnesia",
               "k=2 fails over to ring replicas; k=1 queries on a dead "
               "shard fail typed (never wrong bytes, never hangs)"])
    result_b = ExperimentResult(
        experiment_id="fig17b",
        title="fault injection: p99 latency of successful queries",
        x_label="crash/recover pairs", y_label="p99 us",
        series=[p99[1], p99[2]],
        notes=["failover + capped-backoff retries buy availability with "
               "tail latency, not correctness: every success is "
               "sha256-identical to the no-fault run"])
    return result_a, result_b


def run_availability(node_counts=NODE_COUNTS) -> ExperimentResult:
    """fig17c: availability vs pool size under one permanent crash."""
    series = {1: Series("k=1"), 2: Series("k=2")}
    for num_nodes in node_counts:
        for replicas in (1, 2):
            k = min(replicas, num_nodes)
            start, duration, shas = _reference(num_nodes, k)
            plan = FaultPlan([FaultEvent(at_ns=start + 0.3 * duration,
                                         kind="node_crash",
                                         node=num_nodes - 1)])
            _s, _dur, outcomes = _trial(num_nodes, k, plan)
            oks, errs, _lat = _check_outcomes(
                outcomes, shas, f"fig17c[n={num_nodes},k={k}]")
            if replicas == 2 and num_nodes >= 2:
                # The headline guarantee: with k=2 a single node crash
                # loses zero queries.
                assert errs == 0, (
                    f"fig17c: lost {errs} queries despite k=2 replication")
            series[replicas].add(num_nodes,
                                 100.0 * oks / (oks + errs))
    return ExperimentResult(
        experiment_id="fig17c",
        title="availability under one permanent node crash (30% into the "
              "workload)",
        x_label="nodes", y_label="% queries ok",
        series=[series[1], series[2]],
        notes=["k=2 with >= 2 nodes: 100% — every shard keeps a live "
               "byte-identical replica",
               "k=1: the dead node's shards are gone (amnesia), queries "
               "touching them fail with typed errors until re-created"])


def run() -> list[ExperimentResult]:
    result_a, result_b = run_fault_sweep()
    return [result_a, result_b, run_availability()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
