"""EXPLAIN plan rendering and TLB-miss timing in the MMU timed path."""

import pytest

from repro.common.config import FarviewConfig, MemoryConfig
from repro.common.records import default_schema, wide_schema
from repro.core.pipeline_compiler import explain
from repro.core.query import JoinSpec, Query, select_star
from repro.core.table import FTable
from repro.memory.mmu import Mmu
from repro.operators.selection import Compare
from repro.sim.engine import Simulator

KB = 1024
MB = 1024 * KB
CONFIG = FarviewConfig()


# --- explain ----------------------------------------------------------------------

def test_explain_selection_plan():
    table = FTable("S", default_schema(), 100)
    text = explain(select_star(Compare("a", "<", 5)), table, CONFIG)
    assert "ingest: standard" in text
    assert "-> selection" in text
    assert "region bitstream" in text


def test_explain_shows_planner_costs_for_projection():
    table = FTable("W", wide_schema(512), 100)
    text = explain(Query(projection=("a", "b", "c")), table, CONFIG)
    assert "planner:" in text
    assert "-> smart" in text
    assert "ingest: smart" in text


def test_explain_vectorized_lanes():
    table = FTable("S", default_schema(), 100)
    text = explain(select_star(Compare("a", "<", 5), vectorized=True),
                   table, CONFIG)
    assert "vectorized" in text
    assert "lanes" in text


def test_explain_join_build_side():
    dim = FTable("dim", default_schema(), 8)
    fact = FTable("fact", default_schema(), 100)
    query = Query(join=JoinSpec(dim, "a", "a", ("b",)))
    text = explain(query, fact, CONFIG)
    assert "build side: 'dim'" in text
    assert "-> join_small_table" in text


# --- TLB timing ------------------------------------------------------------------------

@pytest.fixture
def mmu_small(sim):
    config = MemoryConfig(channels=2, channel_capacity=2 * MB,
                          page_size=64 * KB)
    m = Mmu(sim, config)
    m.create_domain(1)
    return m


def test_cold_read_charges_miss_penalty(sim, mmu_small):
    """The first timed read of a page pays the TLB miss; repeats hit."""
    vaddr = mmu_small.alloc(1, 64)

    def cold():
        t0 = sim.now
        yield mmu_small.read(1, vaddr, 64)
        return sim.now - t0

    def warm():
        t0 = sim.now
        yield mmu_small.read(1, vaddr, 64)
        return sim.now - t0

    t_cold = sim.run_process(cold())
    t_warm = sim.run_process(warm())
    config = mmu_small.config
    assert t_cold - t_warm == pytest.approx(
        config.tlb_miss_ns - config.tlb_hit_ns)


def test_translation_charge_counts_pages(mmu_small):
    page = mmu_small.config.page_size
    vaddr = mmu_small.alloc(1, 3 * page)
    charge = mmu_small._translation_charge(1, vaddr, 3 * page)
    assert charge == pytest.approx(3 * mmu_small.config.tlb_miss_ns)
    # Warm the TLB through the functional path, then recompute.
    mmu_small.peek(1, vaddr, 3 * page)
    warm_charge = mmu_small._translation_charge(1, vaddr, 3 * page)
    assert warm_charge == pytest.approx(3 * mmu_small.config.tlb_hit_ns)


def test_zero_length_access_charges_nothing(mmu_small):
    assert mmu_small._translation_charge(1, 0, 0) == 0.0
