"""Network stack: packetization, link timing, response streaming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import NetworkConfig
from repro.common.errors import NetworkError
from repro.network.link import Link
from repro.network.packet import (
    CONTROL_PACKET_BYTES,
    Packet,
    Verb,
    packetize,
    reassemble,
    split_lengths,
)
from repro.network.qp import ClientBuffer, QueuePair
from repro.network.rdma import ResponseStreamer, deliver_request, deliver_write
from repro.sim.engine import Simulator

KB = 1024


# --- packetization ---------------------------------------------------------------

def test_split_lengths_exact():
    assert split_lengths(4096, 1024) == [1024] * 4


def test_split_lengths_remainder():
    assert split_lengths(2500, 1024) == [1024, 1024, 452]


def test_split_lengths_small():
    assert split_lengths(10, 1024) == [10]
    assert split_lengths(0, 1024) == []


def test_split_lengths_validation():
    with pytest.raises(NetworkError):
        split_lengths(-1, 1024)
    with pytest.raises(NetworkError):
        split_lengths(100, 0)


def test_packetize_marks_last():
    packets = packetize(Verb.READ_RESPONSE, 7, b"x" * 2500, 1024)
    assert len(packets) == 3
    assert [p.last for p in packets] == [False, False, True]
    assert [p.psn for p in packets] == [0, 1, 2]


def test_packetize_empty_payload_single_packet():
    packets = packetize(Verb.ACK, 7, b"", 1024)
    assert len(packets) == 1
    assert packets[0].last


def test_reassemble_out_of_order():
    packets = packetize(Verb.READ_RESPONSE, 3, bytes(range(256)) * 12, 1024)
    shuffled = [packets[2], packets[0], packets[1]]
    assert reassemble(shuffled) == bytes(range(256)) * 12


def test_reassemble_detects_missing_packet():
    packets = packetize(Verb.READ_RESPONSE, 3, b"a" * 3000, 1024)
    with pytest.raises(NetworkError):
        reassemble(packets[:-1] if packets[-1].last else packets)


def test_reassemble_rejects_mixed_qps():
    a = Packet(Verb.READ_RESPONSE, 1, 0, b"x", last=True)
    b = Packet(Verb.READ_RESPONSE, 2, 1, b"y", last=True)
    with pytest.raises(NetworkError):
        reassemble([a, b])


@settings(max_examples=30, deadline=None)
@given(total=st.integers(min_value=0, max_value=100_000),
       psize=st.integers(min_value=1, max_value=9000))
def test_split_lengths_property(total, psize):
    lengths = split_lengths(total, psize)
    assert sum(lengths) == total
    assert all(0 < n <= psize for n in lengths)


# --- link timing --------------------------------------------------------------------

def test_uplink_send_includes_latency_and_wire_time():
    sim = Simulator()
    config = NetworkConfig()
    link = Link(sim, config)

    def proc():
        yield link.send_up(1024)
        return sim.now

    elapsed = sim.run_process(proc())
    wire = (1024 + config.header_overhead) / config.line_rate
    assert elapsed == pytest.approx(wire + config.one_way_latency_ns)


def test_downlink_arbiter_interleaves_two_qps():
    sim = Simulator()
    config = NetworkConfig()
    link = Link(sim, config)
    link.register_flow(1)
    link.register_flow(2)
    done_times = {}

    def sender(flow, n):
        for i in range(n):
            yield link.send_down(flow, 1024)
        done_times[flow] = sim.now

    def main():
        a = sim.process(sender(1, 4))
        b = sim.process(sender(2, 4))
        yield sim.all_of([a, b])

    sim.run_process(main())
    # Fair sharing: both finish within ~1 packet time of each other.
    packet_time = (1024 + config.header_overhead) / config.line_rate
    assert abs(done_times[1] - done_times[2]) <= 2 * packet_time + 1e-6


def test_goodput_below_line_rate():
    config = NetworkConfig()
    assert config.goodput < config.line_rate
    # 1 kB payload with 80 B header: ~92.6% efficiency of 12.5 B/ns
    assert config.goodput == pytest.approx(12.5 * 1024 / 1104)


# --- client buffer -------------------------------------------------------------------

def test_client_buffer_deposit_and_read():
    buf = ClientBuffer(1024)
    buf.deposit(100, b"abc")
    assert buf.read(100, 3) == b"abc"
    assert buf.bytes_received == 3


def test_client_buffer_overflow_rejected():
    buf = ClientBuffer(16)
    with pytest.raises(NetworkError):
        buf.deposit(10, b"0123456789")
    with pytest.raises(NetworkError):
        buf.read(10, 10)


def test_client_buffer_reset():
    buf = ClientBuffer(8)
    buf.deposit(0, b"dead")
    buf.reset()
    assert buf.read(0, 4) == b"\x00" * 4
    assert buf.bytes_received == 0


# --- request/write delivery ------------------------------------------------------------

def test_deliver_request_counts_and_takes_time():
    sim = Simulator()
    config = NetworkConfig()
    link = Link(sim, config)
    qp = QueuePair(sim, buffer_capacity=1024, credits=4)

    def proc():
        yield from deliver_request(sim, link, qp)
        return sim.now

    elapsed = sim.run_process(proc())
    wire = (CONTROL_PACKET_BYTES + config.header_overhead) / config.line_rate
    assert elapsed == pytest.approx(wire + config.one_way_latency_ns)
    assert qp.requests_sent == 1


def test_deliver_write_returns_payload():
    sim = Simulator()
    link = Link(sim, NetworkConfig())
    qp = QueuePair(sim, buffer_capacity=1024, credits=4)

    def proc():
        data = yield from deliver_write(sim, link, qp, b"w" * 3000)
        return data

    assert sim.run_process(proc()) == b"w" * 3000


# --- response streaming ------------------------------------------------------------------

def _make_stream(credits=8):
    sim = Simulator()
    config = NetworkConfig(initial_credits=credits)
    link = Link(sim, config)
    qp = QueuePair(sim, buffer_capacity=64 * KB, credits=credits)
    link.register_flow(qp.qp_id)
    return sim, config, link, qp


def test_stream_delivers_exact_bytes():
    sim, config, link, qp = _make_stream()
    payload = bytes(range(256)) * 20  # 5120 B

    def server():
        streamer = ResponseStreamer(sim, link, qp, config)
        yield from streamer.send(payload[:3000])
        yield from streamer.send(payload[3000:])
        total = yield from streamer.finish()
        return total

    total = sim.run_process(server())
    assert total == len(payload)
    assert qp.buffer.read(0, len(payload)) == payload


def test_stream_packet_count():
    sim, config, link, qp = _make_stream()

    def server():
        streamer = ResponseStreamer(sim, link, qp, config)
        yield from streamer.send(b"z" * 2500)
        yield from streamer.finish()
        return streamer.packets_sent

    assert sim.run_process(server()) == 3  # 1024 + 1024 + 452


def test_stream_respects_credits():
    """With 1 credit, packets serialize on delivery acknowledgement."""
    sim1, config1, link1, qp1 = _make_stream(credits=1)
    sim8, config8, link8, qp8 = _make_stream(credits=8)

    def run(sim, config, link, qp):
        def server():
            streamer = ResponseStreamer(sim, link, qp, config)
            yield from streamer.send(b"z" * (16 * KB))
            yield from streamer.finish()
            return sim.now
        return sim.run_process(server())

    t1 = run(sim1, config1, link1, qp1)
    t8 = run(sim8, config8, link8, qp8)
    assert t1 > t8  # credit starvation slows the stream


def test_stream_empty_finish():
    sim, config, link, qp = _make_stream()

    def server():
        streamer = ResponseStreamer(sim, link, qp, config)
        total = yield from streamer.finish()
        return total

    assert sim.run_process(server()) == 0


def test_stream_send_after_finish_rejected():
    sim, config, link, qp = _make_stream()

    def server():
        streamer = ResponseStreamer(sim, link, qp, config)
        yield from streamer.finish()
        try:
            yield from streamer.send(b"late")
        except NetworkError:
            return "rejected"

    assert sim.run_process(server()) == "rejected"


def test_two_streams_share_downlink_fairly():
    sim = Simulator()
    config = NetworkConfig()
    link = Link(sim, config)
    qps = [QueuePair(sim, buffer_capacity=256 * KB, credits=8) for _ in range(2)]
    for qp in qps:
        link.register_flow(qp.qp_id)
    finish = {}

    def server(qp, tag):
        streamer = ResponseStreamer(sim, link, qp, config)
        yield from streamer.send(b"x" * (128 * KB))
        yield from streamer.finish()
        finish[tag] = sim.now

    def main():
        a = sim.process(server(qps[0], "a"))
        b = sim.process(server(qps[1], "b"))
        yield sim.all_of([a, b])

    sim.run_process(main())
    assert abs(finish["a"] - finish["b"]) < 0.1 * max(finish.values())
