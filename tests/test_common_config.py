"""Configuration dataclasses and calibration anchors."""

import pytest

from repro.common import calibration as cal
from repro.common.config import (
    DEFAULT_CONFIG,
    CpuConfig,
    FarviewConfig,
    MemoryConfig,
    NetworkConfig,
    OperatorStackConfig,
    RnicConfig,
)
from repro.common.errors import ConfigurationError


# --- NetworkConfig -------------------------------------------------------------

def test_network_defaults_match_paper():
    config = NetworkConfig()
    assert config.line_rate == pytest.approx(12.5)   # 100 Gbps
    assert config.packet_size == 1024                # §6.2: 1 kB packets


def test_goodput_accounts_for_headers():
    config = NetworkConfig()
    assert config.goodput < config.line_rate
    assert config.goodput == pytest.approx(
        12.5 * 1024 / (1024 + config.header_overhead))


def test_network_validation():
    with pytest.raises(ConfigurationError):
        NetworkConfig(line_rate=0)
    with pytest.raises(ConfigurationError):
        NetworkConfig(packet_size=0)
    with pytest.raises(ConfigurationError):
        NetworkConfig(header_overhead=-1)
    with pytest.raises(ConfigurationError):
        NetworkConfig(initial_credits=0)


# --- MemoryConfig -----------------------------------------------------------------

def test_memory_defaults_match_paper():
    config = MemoryConfig()
    assert config.channels == 2                       # §6.1: two channels
    assert config.channel_bandwidth == pytest.approx(18.0)
    assert config.page_size == 2 * 1024 * 1024        # §4.4: 2 MB pages


def test_memory_derived_bandwidths():
    config = MemoryConfig()
    assert config.effective_channel_bandwidth == pytest.approx(18.0 * 0.9)
    assert config.aggregate_bandwidth == pytest.approx(2 * 18.0 * 0.9)
    assert config.total_capacity == 2 * config.channel_capacity


def test_memory_validation():
    with pytest.raises(ConfigurationError):
        MemoryConfig(channels=0)
    with pytest.raises(ConfigurationError):
        MemoryConfig(efficiency=0.0)
    with pytest.raises(ConfigurationError):
        MemoryConfig(efficiency=1.5)
    with pytest.raises(ConfigurationError):
        MemoryConfig(page_size=100, stripe_unit=64)  # not a multiple


# --- OperatorStackConfig --------------------------------------------------------------

def test_operator_stack_defaults_match_paper():
    config = OperatorStackConfig()
    assert config.regions == 6                        # §6.1
    assert config.clock_mhz == 250.0                  # §4.1
    assert config.datapath_bytes == 64                # §4.5
    # 64 B x 250 MHz = 16 GB/s per-region streaming throughput.
    assert config.region_throughput == pytest.approx(16.0)
    assert config.cycle_ns == pytest.approx(4.0)


def test_operator_stack_validation():
    with pytest.raises(ConfigurationError):
        OperatorStackConfig(regions=0)
    with pytest.raises(ConfigurationError):
        OperatorStackConfig(clock_mhz=0)
    with pytest.raises(ConfigurationError):
        OperatorStackConfig(cuckoo_tables=0)


# --- CpuConfig / RnicConfig --------------------------------------------------------------

def test_cpu_validation():
    with pytest.raises(ConfigurationError):
        CpuConfig(dram_read_bandwidth=0)
    with pytest.raises(ConfigurationError):
        CpuConfig(interference_factor=-0.1)


def test_rnic_effective_bandwidth_is_pcie_capped():
    config = RnicConfig()
    assert config.effective_bandwidth == pytest.approx(
        config.pcie_bandwidth)  # PCIe (11) < wire goodput (11.59)


def test_rnic_validation():
    with pytest.raises(ConfigurationError):
        RnicConfig(pcie_bandwidth=0)


# --- FarviewConfig ----------------------------------------------------------------------------

def test_farview_config_replace():
    replaced = DEFAULT_CONFIG.replace(
        memory=MemoryConfig(channels=4))
    assert replaced.memory.channels == 4
    assert DEFAULT_CONFIG.memory.channels == 2  # original untouched
    assert replaced.network == DEFAULT_CONFIG.network


# --- calibration anchors ------------------------------------------------------------------------

def test_paper_quoted_anchors():
    assert cal.PACKET_SIZE == 1024
    assert cal.DRAM_CHANNELS == 2
    assert cal.DYNAMIC_REGIONS == 6
    assert cal.PAGE_SIZE == 2 * 1024 * 1024
    assert cal.OPERATOR_CLOCK_MHZ == 250.0
    assert cal.MEMORY_CLOCK_MHZ == 300.0
    assert cal.TPCH_Q6_SELECTIVITY == 0.02
    assert cal.RNIC_PCIE_BANDWIDTH == pytest.approx(11.0)
    assert cal.FV_PEAK_READ_GBPS == 12.0


def test_reconfiguration_is_millisecond_scale():
    # §3.2: "on the order of milliseconds".
    assert 1e6 <= cal.RECONFIGURATION_TIME_NS <= 50e6
    assert cal.reconfiguration_latency_ns(0.5) == pytest.approx(
        cal.RECONFIGURATION_TIME_NS / 2)
    with pytest.raises(ValueError):
        cal.reconfiguration_latency_ns(0.0)


def test_pipeline_fill_is_sub_microsecond():
    assert cal.pipeline_fill_latency_ns() < 1_000.0


def test_rnic_latency_path_slower_than_pipelined():
    assert cal.RNIC_PER_PACKET_OVERHEAD_NS > cal.RNIC_PIPELINED_PER_PACKET_NS


def test_clock_helpers():
    assert cal.operator_cycle_ns() == pytest.approx(4.0)
    assert cal.memory_cycle_ns() == pytest.approx(10.0 / 3.0)
