"""RNIC baseline: one-sided reads over a commercial NIC (§6.2, Figure 6).

"For RDMA microbenchmark experiments, we compare remote reads from Farview
(FV) to remote reads to a different machine using one-sided RDMA
operations over a commercial NIC (RNIC) that accesses the remote memory
over PCIe."

The model captures the two effects the paper reports:

* **latency path** — a single READ pays the NIC's (low) request latency
  plus a PCIe host-memory crossing; per-packet handling on the latency
  path is costlier than Farview's, so response time degrades faster with
  transfer size ("the multi-packet processing and page handling in the
  FPGA network stack performs better");
* **throughput path** — with a window of outstanding READs, DMA engines
  pipeline packet fetches, but the PCIe bus caps sustained throughput at
  ~11 GBps (Fig 6(a)).
"""

from __future__ import annotations

from ..common import calibration as cal
from ..common.config import RnicConfig
from ..common.errors import ConfigurationError
from ..network.packet import CONTROL_PACKET_BYTES


class RnicBaseline:
    """Analytic response-time / throughput model of the ConnectX-5 path."""

    def __init__(self, config: RnicConfig | None = None):
        self.config = config if config is not None else RnicConfig()

    # -- single-request response time (Figure 6b) --------------------------------
    def read_response_time_ns(self, transfer_bytes: int) -> float:
        if transfer_bytes <= 0:
            raise ConfigurationError(
                f"transfer size must be positive: {transfer_bytes}")
        cfg = self.config
        packets = -(-transfer_bytes // cfg.packet_size)
        # Request travels to the remote NIC...
        request = ((CONTROL_PACKET_BYTES + cfg.header_overhead) / cfg.line_rate
                   + cfg.one_way_latency_ns)
        # ...the NIC fetches from host DRAM over PCIe and replies.
        per_packet = max(
            (min(transfer_bytes, cfg.packet_size) + cfg.header_overhead)
            / cfg.line_rate,
            cal.RNIC_PER_PACKET_OVERHEAD_NS,
        )
        return (request
                + cfg.request_overhead_ns
                + cfg.pcie_latency_ns
                + packets * per_packet
                + cfg.one_way_latency_ns)

    # -- windowed sustained throughput (Figure 6a) ------------------------------------
    def read_throughput_gbps(self, transfer_bytes: int,
                             window: int = cal.THROUGHPUT_WINDOW) -> float:
        """Sustained GB/s with ``window`` outstanding READs."""
        if window <= 0:
            raise ConfigurationError(f"window must be positive: {window}")
        cfg = self.config
        rtt = self.read_response_time_ns(transfer_bytes)
        offered = window * transfer_bytes / rtt
        packets = -(-transfer_bytes // cfg.packet_size)
        pipelined_packet_cap = (transfer_bytes
                                / (packets * cal.RNIC_PIPELINED_PER_PACKET_NS))
        frame = transfer_bytes + packets * cfg.header_overhead
        wire_cap = cfg.line_rate * transfer_bytes / frame
        issue_cap = transfer_bytes / cal.RNIC_REQUEST_ISSUE_NS
        return min(offered, wire_cap, cfg.pcie_bandwidth,
                   pipelined_packet_cap, issue_cap)
