"""Measurement collection for experiments: tallies, series, meters."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class Tally:
    """Streaming summary statistics (count / mean / min / max / stdev)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        if not self.count:
            return f"Tally({self.name!r}, empty)"
        return (f"Tally({self.name!r}, n={self.count}, mean={self.mean:.3g}, "
                f"min={self.minimum:.3g}, max={self.maximum:.3g})")


def median(values: Sequence[float]) -> float:
    """Median of a sequence (the paper reports medians for RDMA numbers)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct out of range: {pct}")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class SeriesPoint:
    """One (x, y) measurement with optional label metadata."""

    x: float
    y: float
    meta: dict = field(default_factory=dict)


class Series:
    """A named sequence of (x, y) points — one plotted line of a figure."""

    def __init__(self, name: str):
        self.name = name
        self.points: list[SeriesPoint] = []

    def add(self, x: float, y: float, **meta: object) -> None:
        self.points.append(SeriesPoint(x, y, dict(meta)))

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def ys(self) -> list[float]:
        return [p.y for p in self.points]

    def y_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.y
        raise KeyError(f"series {self.name!r} has no point at x={x}")

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, n={len(self.points)})"


class ThroughputMeter:
    """Accumulates (bytes, elapsed) to compute effective GB/s."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total_bytes = 0
        self.total_time_ns = 0.0

    def record(self, nbytes: int, elapsed_ns: float) -> None:
        if elapsed_ns < 0:
            raise ValueError(f"negative elapsed time: {elapsed_ns}")
        self.total_bytes += nbytes
        self.total_time_ns += elapsed_ns

    @property
    def gbps(self) -> float:
        if self.total_time_ns <= 0:
            return 0.0
        return self.total_bytes / self.total_time_ns
