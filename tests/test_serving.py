"""The tenant serving layer: sessions, coalescing, fair admission (PR 10).

Unit coverage for :mod:`repro.core.serving` on small single-node pools;
the scale story (100-10,000 tenants, open loop) lives in
``experiments/fig21_serving.py`` and its shape tests.
"""

import pytest

from repro.common.config import FarviewConfig, MemoryConfig, OperatorStackConfig
from repro.common.errors import FaultError, QueryError
from repro.core.elasticity import RegionLeaseManager
from repro.core.faults import FaultEvent, FaultInjector, FaultPlan
from repro.core.node import FarviewNode
from repro.core.query import select_star
from repro.core.serving import FrontDoor, ScanShape, TenantSession
from repro.sim.engine import Simulator
from repro.workloads.generator import open_loop_arrivals, selection_workload

KB = 1024
MB = 1024 * KB


def make_door(regions=2, policy="fifo", coalesce=True):
    sim = Simulator()
    node = FarviewNode(sim, FarviewConfig(
        memory=MemoryConfig(channels=2, channel_capacity=8 * MB,
                            page_size=64 * KB),
        operator_stack=OperatorStackConfig(regions=regions)))
    manager = RegionLeaseManager(node, policy=policy)
    return sim, node, FrontDoor(manager, coalesce=coalesce)


def make_shape(name="hot", rows=128, seed=7):
    wl = selection_workload(rows, 0.5, seed=seed)
    return ScanShape(name, wl.schema, wl.rows, select_star(wl.predicate)), wl


def test_session_serves_correct_rows_and_accounts():
    sim, node, door = make_door()
    shape, wl = make_shape()
    session = door.session("t0")

    result = sim.run_process(session.request_proc(shape))
    expected = int(wl.predicate.evaluate(wl.rows).sum())
    assert len(result.rows()) == expected
    assert session.submitted == session.completed == 1
    assert session.failed == 0
    assert session.latencies_ns[0] > 0
    assert door.requests == door.executions == 1
    assert door.coalesced == 0
    # The lease came back: the pool is idle again.
    assert node.free_regions == 2
    assert door.manager.live_leases == 0


def test_identical_scans_coalesce_onto_one_execution():
    sim, node, door = make_door(regions=1)
    shape, _wl = make_shape()
    sessions = [door.session(f"t{i}") for i in range(6)]

    def main():
        procs = [s.submit(shape) for s in sessions]
        results = yield sim.all_of(procs)
        return results

    results = sim.run_process(main())
    assert door.requests == 6
    assert door.executions == 1          # one lease, one upload, one scan
    assert door.coalesced == 5
    assert all(r is results[0] for r in results)  # shared result object
    assert len({rec.sha256 for rec in door.records}) == 1
    assert sum(rec.led for rec in door.records) == 1
    assert all(s.completed == 1 for s in sessions)


def test_coalescing_off_executes_every_request():
    sim, _node, door = make_door(regions=1, coalesce=False)
    shape, _wl = make_shape()
    sessions = [door.session(f"t{i}") for i in range(4)]

    def main():
        yield sim.all_of([s.submit(shape) for s in sessions])

    sim.run_process(main())
    assert door.executions == door.requests == 4
    assert door.coalesced == 0
    assert len({rec.sha256 for rec in door.records}) == 1  # still identical


def test_late_arrival_starts_a_fresh_execution():
    sim, _node, door = make_door()
    shape, _wl = make_shape()
    session = door.session("t0")
    sim.run_process(session.request_proc(shape))
    sim.run_process(session.request_proc(shape))
    # The gate was removed before it triggered: no stale coalescing.
    assert door.executions == 2
    assert door.coalesced == 0


def test_distinct_shapes_do_not_coalesce():
    sim, _node, door = make_door(regions=2)
    shape_a, _ = make_shape("a", seed=1)
    shape_b, _ = make_shape("b", seed=2)
    session = door.session("t0")

    def main():
        yield sim.all_of([session.submit(shape_a), session.submit(shape_b)])

    sim.run_process(main())
    assert door.executions == 2
    assert door.coalesced == 0


def test_leader_failure_propagates_to_coalesced_followers():
    """A node crash mid-execution must fail the leader *and* every
    coalesced follower with the same typed error — never a hang, never a
    partial result."""
    sim, node, door = make_door(regions=1)
    shape, _wl = make_shape(rows=2048)
    sessions = [door.session(f"t{i}") for i in range(3)]
    outcomes = []

    def request(session):
        try:
            yield from session.request_proc(shape)
        except FaultError as exc:
            outcomes.append(("err", type(exc).__name__))
        else:
            outcomes.append(("ok", None))

    def main():
        procs = [sim.process(request(s)) for s in sessions]
        # Crash while the leader's scan is in flight.
        FaultInjector(node, FaultPlan([
            FaultEvent(at_ns=sim.now + 1_000.0, kind="node_crash"),
        ])).install()
        yield sim.all_of(procs)

    sim.run_process(main())
    assert [tag for tag, _ in outcomes] == ["err"] * 3
    assert len({detail for _tag, detail in outcomes}) == 1  # same type
    assert all(s.failed == 1 and s.completed == 0 for s in sessions)
    assert door.manager.live_leases == 0  # the lease was reclaimed


def test_fair_policy_favors_heavy_sessions_under_contention():
    sim, _node, door = make_door(regions=1, policy="fair", coalesce=False)
    shape, _wl = make_shape()
    light = door.session("light", weight=1.0)
    heavy = door.session("heavy", weight=4.0)

    def main():
        procs = [light.submit(shape) for _ in range(4)]
        procs += [heavy.submit(shape) for _ in range(4)]
        yield sim.all_of(procs)

    sim.run_process(main())
    mean = lambda xs: sum(xs) / len(xs)
    # Weight 4 buys earlier grants, hence lower queueing latency.
    assert mean(heavy.latencies_ns) < mean(light.latencies_ns)
    # Of the first four completions, at least three are the heavy tenant
    # (start-time fair queueing: 4 grants per light grant, minus the
    # head-of-line request that never queued).
    first_four = [rec.tenant for rec in door.records[:4]]
    assert first_four.count("heavy") >= 3


def test_session_weight_must_be_positive():
    _sim, _node, door = make_door()
    with pytest.raises(QueryError, match="weight"):
        door.session("bad", weight=0.0)


def test_open_loop_arrivals_are_seeded_and_bounded():
    a = open_loop_arrivals(16, mean_gap_ns=1_000.0, horizon_ns=4_000.0,
                           seed=9)
    b = open_loop_arrivals(16, mean_gap_ns=1_000.0, horizon_ns=4_000.0,
                           seed=9)
    c = open_loop_arrivals(16, mean_gap_ns=1_000.0, horizon_ns=4_000.0,
                           seed=10)
    assert a == b                      # deterministic
    assert a != c                      # seed actually matters
    assert all(stream for stream in a)  # every tenant submits at least once
    assert all(0.0 <= t < 4_000.0 for stream in a for t in stream)
    assert all(stream == sorted(stream) for stream in a)
    with pytest.raises(QueryError):
        open_loop_arrivals(4, mean_gap_ns=0.0, horizon_ns=100.0)


def test_submit_at_schedules_open_loop_arrivals():
    sim, _node, door = make_door()
    shape, _wl = make_shape()
    session = door.session("t0")

    def main():
        procs = [session.submit_at(at, shape) for at in (50.0, 10.0, 30.0)]
        yield sim.all_of(procs)

    sim.run_process(main())
    assert session.completed == 3
    starts = sorted(rec.submitted_ns for rec in door.records)
    assert starts == [10.0, 30.0, 50.0]
