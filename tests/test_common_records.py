"""Schema and row encoding round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.common.records import (
    Column,
    Schema,
    default_schema,
    string_schema,
    wide_schema,
)


def test_default_schema_is_8x8():
    schema = default_schema()
    assert len(schema) == 8
    assert schema.row_width == 64
    assert schema.names[:3] == ("a", "b", "c")


def test_default_schema_second_column_is_float():
    schema = default_schema()
    assert schema.column("b").kind == "float64"
    assert schema.column("a").kind == "int64"


def test_column_rejects_unknown_kind():
    with pytest.raises(QueryError):
        Column("x", "int32")


def test_column_rejects_wrong_width_for_fixed_kind():
    with pytest.raises(QueryError):
        Column("x", "int64", width=4)


def test_char_column_requires_positive_width():
    with pytest.raises(QueryError):
        Column("x", "char", width=0)


def test_schema_rejects_duplicate_names():
    with pytest.raises(QueryError):
        Schema([Column("a", "int64"), Column("a", "int64")])


def test_schema_rejects_empty():
    with pytest.raises(QueryError):
        Schema([])


def test_offsets_are_cumulative():
    schema = default_schema()
    assert schema.offset("a") == 0
    assert schema.offset("b") == 8
    assert schema.offset("h") == 56


def test_byte_range():
    schema = default_schema()
    assert schema.byte_range("c") == (16, 8)


def test_unknown_column_raises():
    schema = default_schema()
    with pytest.raises(QueryError):
        schema.offset("zz")
    with pytest.raises(QueryError):
        schema.column("zz")
    with pytest.raises(QueryError):
        schema.index("zz")


def test_index():
    schema = default_schema()
    assert schema.index("a") == 0
    assert schema.index("h") == 7


def test_project_preserves_order():
    schema = default_schema()
    sub = schema.project(["c", "a"])
    assert sub.names == ("c", "a")
    assert sub.row_width == 16


def test_round_trip_bytes():
    schema = default_schema()
    rows = schema.empty(4)
    rows["a"] = [1, 2, 3, 4]
    rows["b"] = [0.5, 1.5, 2.5, 3.5]
    image = schema.to_bytes(rows)
    assert len(image) == 4 * 64
    back = schema.from_bytes(image)
    np.testing.assert_array_equal(back["a"], rows["a"])
    np.testing.assert_array_equal(back["b"], rows["b"])


def test_from_bytes_rejects_ragged_image():
    schema = default_schema()
    with pytest.raises(QueryError):
        schema.from_bytes(b"\x00" * 65)


def test_wide_schema_widths():
    schema = wide_schema(512)
    assert schema.row_width == 512
    assert len(schema) == 64


def test_wide_schema_rejects_ragged():
    with pytest.raises(QueryError):
        wide_schema(100, attr_bytes=8)


def test_string_schema():
    schema = string_schema(256)
    assert schema.row_width == 264
    assert schema.column("s").kind == "char"


def test_string_schema_honours_key_bytes():
    schema = string_schema(64, key_bytes=16)
    assert schema.column("id").kind == "char"
    assert schema.column("id").width == 16
    assert schema.row_width == 80
    default = string_schema(64)
    assert default.column("id").kind == "int64"
    assert default.column("id").width == 8


def test_schema_equality_and_hash():
    assert default_schema() == default_schema()
    assert hash(default_schema()) == hash(default_schema())
    assert default_schema() != wide_schema(512)


def test_generated_names_do_not_collide():
    schema = wide_schema(8 * 60)
    assert len(set(schema.names)) == 60


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-2**63, max_value=2**63 - 1),
                min_size=1, max_size=64))
def test_round_trip_property_int64(values):
    schema = Schema([Column("v", "int64")])
    rows = schema.empty(len(values))
    rows["v"] = values
    back = schema.from_bytes(schema.to_bytes(rows))
    assert back["v"].tolist() == values


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=32))
def test_round_trip_property_char(blobs):
    schema = Schema([Column("s", "char", 16)])
    rows = schema.empty(len(blobs))
    rows["s"] = blobs
    back = schema.from_bytes(schema.to_bytes(rows))
    # numpy S-columns strip trailing NULs; compare against that normal form
    for got, want in zip(back["s"], blobs):
        assert got == want.rstrip(b"\x00")[:16] or got == want[:16].rstrip(b"\x00")
