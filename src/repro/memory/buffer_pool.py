"""Disaggregated buffer pool with pluggable replacement policies.

The paper uses Farview's memory *as* the database buffer pool ("blocks/pages
being loaded from storage as needed", §4.4) and defers cache-replacement
policy design to future work (§1, §7).  This module covers that deferred
piece: a page-granular buffer pool that faults table pages in from a
(simulated) storage backend and evicts according to a pluggable policy.

The pool is layered on top of the :class:`~repro.memory.mmu.Mmu` so cached
pages live in real simulated DRAM and are served at DRAM speed, while
misses pay storage bandwidth + latency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Protocol

from ..common.errors import CatalogError, MemoryError_
from ..sim.engine import Event, Simulator
from ..sim.resources import BandwidthPipe
from .mmu import Mmu

#: Storage model defaults: NVMe-class device (3 GB/s, ~80 us access).
STORAGE_BANDWIDTH = 3.0
STORAGE_LATENCY_NS = 80_000.0


class StorageBackend:
    """Functional + timed block storage holding base-table images."""

    def __init__(self, sim: Simulator, bandwidth: float = STORAGE_BANDWIDTH,
                 latency_ns: float = STORAGE_LATENCY_NS):
        self.sim = sim
        self._tables: dict[str, bytes] = {}
        self.pipe = BandwidthPipe(sim, bandwidth, latency_ns, name="storage")

    def store_table(self, name: str, data: bytes) -> None:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already stored")
        self._tables[name] = bytes(data)

    def table_size(self, name: str) -> int:
        self._require(name)
        return len(self._tables[name])

    def _require(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} not in storage")

    def read_block(self, name: str, offset: int, length: int) -> Event:
        """Timed block read; event fires with the bytes."""
        self._require(name)
        data = self._tables[name]
        if offset < 0 or offset + length > len(data):
            raise MemoryError_(
                f"storage read [{offset}, +{length}) beyond table "
                f"{name!r} of {len(data)} bytes")
        chunk = data[offset:offset + length]
        done = self.sim.event()
        self.pipe.transfer(length).add_callback(lambda _e: done.succeed(chunk))
        return done


class ReplacementPolicy(Protocol):
    """Chooses which resident page to evict when the pool is full."""

    def on_insert(self, key: tuple[str, int]) -> None: ...

    def on_access(self, key: tuple[str, int]) -> None: ...

    def choose_victim(self) -> tuple[str, int]: ...

    def on_evict(self, key: tuple[str, int]) -> None: ...


class LruPolicy:
    """Evict the least recently used page."""

    def __init__(self) -> None:
        self._order: OrderedDict[tuple[str, int], None] = OrderedDict()

    def on_insert(self, key: tuple[str, int]) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: tuple[str, int]) -> None:
        self._order.move_to_end(key)

    def choose_victim(self) -> tuple[str, int]:
        if not self._order:
            raise MemoryError_("LRU policy has no pages to evict")
        return next(iter(self._order))

    def on_evict(self, key: tuple[str, int]) -> None:
        self._order.pop(key, None)


class FifoPolicy:
    """Evict the page resident the longest, regardless of use."""

    def __init__(self) -> None:
        self._order: OrderedDict[tuple[str, int], None] = OrderedDict()

    def on_insert(self, key: tuple[str, int]) -> None:
        self._order[key] = None

    def on_access(self, key: tuple[str, int]) -> None:
        pass  # FIFO ignores accesses

    def choose_victim(self) -> tuple[str, int]:
        if not self._order:
            raise MemoryError_("FIFO policy has no pages to evict")
        return next(iter(self._order))

    def on_evict(self, key: tuple[str, int]) -> None:
        self._order.pop(key, None)


class ClockPolicy:
    """Second-chance (CLOCK) replacement.

    Pages are inserted with the reference bit *clear* so that only pages
    genuinely re-accessed after admission earn a second chance; inserting
    with the bit set would make the first sweep evict in pure FIFO order
    regardless of access pattern.
    """

    def __init__(self) -> None:
        self._ref: OrderedDict[tuple[str, int], bool] = OrderedDict()

    def on_insert(self, key: tuple[str, int]) -> None:
        self._ref[key] = False

    def on_access(self, key: tuple[str, int]) -> None:
        if key in self._ref:
            self._ref[key] = True

    def choose_victim(self) -> tuple[str, int]:
        if not self._ref:
            raise MemoryError_("CLOCK policy has no pages to evict")
        while True:
            key, referenced = next(iter(self._ref.items()))
            if referenced:
                # Second chance: clear the bit and rotate to the back.
                self._ref[key] = False
                self._ref.move_to_end(key)
            else:
                return key

    def on_evict(self, key: tuple[str, int]) -> None:
        self._ref.pop(key, None)


class BufferPool:
    """A page-granular cache of storage-resident tables in the MMU's DRAM."""

    def __init__(self, sim: Simulator, mmu: Mmu, storage: StorageBackend,
                 domain: int, capacity_pages: int,
                 policy: ReplacementPolicy | None = None):
        if capacity_pages <= 0:
            raise MemoryError_("buffer pool needs >= 1 page")
        self.sim = sim
        self.mmu = mmu
        self.storage = storage
        self.domain = domain
        self.capacity_pages = capacity_pages
        self.policy: ReplacementPolicy = policy if policy is not None else LruPolicy()
        self.page_size = mmu.config.page_size
        self._resident: dict[tuple[str, int], int] = {}  # key -> vaddr
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- residency -----------------------------------------------------------
    def is_resident(self, table: str, page_index: int) -> bool:
        return (table, page_index) in self._resident

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    # -- reads ---------------------------------------------------------------
    def read(self, table: str, offset: int, length: int) -> Event:
        """Timed read through the pool; event fires with the bytes."""
        done = self.sim.event()
        self.sim.process(self._read_proc(table, offset, length, done),
                         name=f"pool.read:{table}")
        return done

    def _read_proc(self, table: str, offset: int, length: int, done: Event):
        table_size = self.storage.table_size(table)
        if offset < 0 or offset + length > table_size:
            done.fail(MemoryError_(
                f"pool read [{offset}, +{length}) beyond table {table!r}"))
            return
        out = bytearray()
        cursor = offset
        remaining = length
        while remaining > 0:
            page_index, page_offset = divmod(cursor, self.page_size)
            chunk = min(remaining, self.page_size - page_offset)
            vaddr = yield from self._ensure_resident(table, page_index)
            data = yield self.mmu.read(self.domain, vaddr + page_offset, chunk)
            out.extend(data)
            cursor += chunk
            remaining -= chunk
        done.succeed(bytes(out))

    def _ensure_resident(self, table: str, page_index: int):
        key = (table, page_index)
        vaddr = self._resident.get(key)
        if vaddr is not None:
            self.hits += 1
            self.policy.on_access(key)
            return vaddr
        self.misses += 1
        if len(self._resident) >= self.capacity_pages:
            victim = self.policy.choose_victim()
            self._evict(victim)
        table_size = self.storage.table_size(table)
        start = page_index * self.page_size
        span = min(self.page_size, table_size - start)
        if span <= 0:
            raise MemoryError_(
                f"page {page_index} beyond table {table!r} ({table_size} B)")
        block = yield self.storage.read_block(table, start, span)
        vaddr = self.mmu.alloc(self.domain, self.page_size)
        yield self.mmu.write(self.domain, vaddr, block)
        self._resident[key] = vaddr
        self.policy.on_insert(key)
        return vaddr

    def _evict(self, key: tuple[str, int]) -> None:
        vaddr = self._resident.pop(key)
        self.policy.on_evict(key)
        self.mmu.free(self.domain, vaddr)
        self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
