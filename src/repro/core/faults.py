"""Deterministic fault injection for the simulated Farview pool.

Disaggregation turns every dereference into a distributed failure mode
(see the surveys in PAPERS.md), yet discrete-event models default to a
perfect world.  This module closes that gap without perturbing it:

* :class:`FaultPlan` — an immutable, seed-reproducible schedule of fault
  events (node crashes/recoveries, link degradation and restoration,
  region failures/repairs, slow-node stragglers).
* :class:`FaultInjector` — installs a plan onto a node, cluster, or node
  sequence by scheduling each event through the ordinary
  :meth:`~repro.sim.engine.Simulator.schedule` path, so faults interleave
  with queries exactly like any other simulator callback and the whole
  run is deterministic: same plan + same workload → identical event
  sequence, ``sim_ns`` and per-query outcomes.
* :class:`RetryPolicy` — per-request deadlines plus capped exponential
  backoff, shared by both client classes.

The contract the perf baselines rely on: **with no plan installed the
fault layer is pure bookkeeping** — a handful of always-true boolean
checks on the hot paths, zero extra simulator events, zero timing
change — so fig6–fig16 ``sim_ns``/``sha256`` stay byte-identical
(enforced by ``bench_perf.py --check``).

Failure semantics are fail-stop with amnesia: a crashed node loses the
contents of its pool (modeled at the placement layer — every shard,
replica, and broadcast-cache entry records the node *incarnation* it was
written under, and a mismatch means the bytes are gone).  Recovery
brings the node back empty under a new incarnation; it never silently
serves pre-crash data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.errors import QueryError

#: Every fault kind a plan may schedule.
KINDS = ("node_crash", "node_recover",
         "link_degrade", "link_restore",
         "region_fail", "region_repair",
         "node_slow", "node_normal")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* strikes *node* at ``at_ns``.

    ``latency_add_ns`` / ``rate_factor`` / ``loss`` parameterize link
    degradation (and the ``node_slow`` straggler, which is modeled as the
    node's link slowing down); ``region`` selects the dynamic region for
    region faults.
    """

    at_ns: float
    kind: str
    node: int = 0
    region: int = 0
    latency_add_ns: float = 0.0
    rate_factor: float = 1.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.at_ns < 0:
            raise QueryError(f"fault scheduled in the past: {self.at_ns}")
        if self.rate_factor <= 0:
            raise QueryError(f"rate_factor must be positive: {self.rate_factor}")
        if not 0.0 <= self.loss < 1.0:
            raise QueryError(f"loss must be in [0, 1): {self.loss}")


class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultEvent`\\ s.

    Events are kept sorted by ``(at_ns, insertion order)`` so two plans
    built from the same inputs are identical.  An empty plan is valid and
    has strictly no effect on a simulation.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: Optional[int] = None):
        indexed = list(enumerate(events))
        indexed.sort(key=lambda pair: (pair[1].at_ns, pair[0]))
        self.events: tuple[FaultEvent, ...] = tuple(ev for _i, ev in indexed)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def random(cls, seed: int, num_nodes: int, horizon_ns: float,
               crashes: int = 0, degrades: int = 0, region_fails: int = 0,
               stragglers: int = 0, regions_per_node: int = 6,
               mean_outage_ns: float = 50_000.0,
               latency_spike_ns: float = 5_000.0,
               rate_factor: float = 0.25, loss: float = 0.05,
               permanent: bool = False) -> "FaultPlan":
        """A reproducible chaos schedule from one integer seed.

        Each fault strikes a uniformly random node at a uniformly random
        time in ``[0.05, 0.85) * horizon_ns`` and (unless ``permanent``)
        heals after an outage of ``[0.5, 1.5) * mean_outage_ns``.  The
        same ``(seed, arguments)`` always yields the same plan.
        """
        if num_nodes <= 0:
            raise QueryError(f"need at least one node, got {num_nodes}")
        if horizon_ns <= 0:
            raise QueryError(f"horizon must be positive: {horizon_ns}")
        rng = random.Random(seed)
        events: list[FaultEvent] = []

        def strike(start_kind: str, end_kind: str, count: int, **params) -> None:
            for _ in range(count):
                node = rng.randrange(num_nodes)
                at = rng.uniform(0.05, 0.85) * horizon_ns
                outage = rng.uniform(0.5, 1.5) * mean_outage_ns
                extra = dict(params)
                if start_kind == "region_fail":
                    extra["region"] = rng.randrange(max(regions_per_node, 1))
                events.append(FaultEvent(at_ns=at, kind=start_kind,
                                         node=node, **extra))
                if not permanent:
                    events.append(FaultEvent(at_ns=at + outage, kind=end_kind,
                                             node=node,
                                             region=extra.get("region", 0)))

        strike("node_crash", "node_recover", crashes)
        strike("link_degrade", "link_restore", degrades,
               latency_add_ns=latency_spike_ns, rate_factor=rate_factor,
               loss=loss)
        strike("region_fail", "region_repair", region_fails)
        strike("node_slow", "node_normal", stragglers,
               latency_add_ns=latency_spike_ns, rate_factor=rate_factor)
        return cls(events, seed=seed)

    def describe(self) -> str:
        if not self.events:
            return "FaultPlan(empty)"
        kinds: dict[str, int] = {}
        for ev in self.events:
            kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
        summary = ", ".join(f"{k}×{n}" for k, n in sorted(kinds.items()))
        return (f"FaultPlan({len(self.events)} events, seed={self.seed}, "
                f"{summary})")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request deadline + capped exponential backoff (no jitter —
    determinism beats thundering-herd avoidance in a simulator).

    ``deadline_ns`` is checked against the request's *completion* time:
    a late result is discarded (never returned) and the request retried,
    so a timeout can never surface stale or partial bytes.
    """

    max_attempts: int = 3
    base_backoff_ns: float = 2_000.0
    max_backoff_ns: float = 64_000.0
    deadline_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise QueryError(f"need >= 1 attempt, got {self.max_attempts}")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise QueryError("backoff must be non-negative")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise QueryError(f"deadline must be positive: {self.deadline_ns}")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): capped exponential."""
        return min(self.base_backoff_ns * (2.0 ** max(attempt - 1, 0)),
                   self.max_backoff_ns)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a node pool as simulator events.

    ``target`` is a :class:`~repro.core.node.FarviewNode`, a
    :class:`~repro.core.cluster.FarviewCluster`, or a sequence of nodes.
    :meth:`install` schedules every plan event; the direct methods
    (:meth:`crash`, :meth:`degrade_link`, …) apply a fault immediately and
    are what the scheduled callbacks dispatch to, so tests can drive
    faults by hand with identical semantics.

    ``applied`` logs ``(sim_ns, kind, node)`` for every fault actually
    applied — the determinism tests compare these logs across runs.
    """

    def __init__(self, target, plan: Optional[FaultPlan] = None):
        self.nodes = _as_nodes(target)
        self.sim = self.nodes[0].sim
        self.plan = plan if plan is not None else FaultPlan()
        self.applied: list[tuple[float, str, int]] = []
        self.installed = False

    # -- plan scheduling ---------------------------------------------------
    def install(self) -> "FaultInjector":
        """Schedule every plan event on the simulator (idempotent guard)."""
        if self.installed:
            raise QueryError("fault plan already installed")
        self.installed = True
        now = self.sim.now
        for ev in self.plan.events:
            self.sim.schedule(max(ev.at_ns - now, 0.0), self._apply, ev)
        return self

    def _apply(self, ev: FaultEvent) -> None:
        if ev.kind == "node_crash":
            self.crash(ev.node)
        elif ev.kind == "node_recover":
            self.recover(ev.node)
        elif ev.kind in ("link_degrade", "node_slow"):
            self.degrade_link(ev.node, latency_add_ns=ev.latency_add_ns,
                              rate_factor=ev.rate_factor, loss=ev.loss)
        elif ev.kind in ("link_restore", "node_normal"):
            self.restore_link(ev.node)
        elif ev.kind == "region_fail":
            self.fail_region(ev.node, ev.region)
        else:  # region_repair
            self.repair_region(ev.node, ev.region)

    # -- direct fault application -----------------------------------------
    def _node(self, index: int):
        if not 0 <= index < len(self.nodes):
            raise QueryError(f"fault targets node {index} of "
                             f"{len(self.nodes)}")
        return self.nodes[index]

    def _log(self, kind: str, node: int) -> None:
        self.applied.append((self.sim.now, kind, node))

    def crash(self, index: int) -> None:
        """Fail-stop the node: in-flight and future requests raise
        :class:`~repro.common.errors.NodeFailedError`; pool contents are
        lost (incarnation bump)."""
        self._node(index).fail()
        self._log("node_crash", index)

    def recover(self, index: int) -> None:
        """Bring a crashed node back — empty, under a new incarnation."""
        self._node(index).recover()
        self._log("node_recover", index)

    def degrade_link(self, index: int, latency_add_ns: float = 0.0,
                     rate_factor: float = 1.0, loss: float = 0.0) -> None:
        """Degrade the node's link: added latency, reduced rate, and a
        deterministic loss model (lost packets are retransmitted, so loss
        ``p`` inflates wire bytes by ``1/(1-p)``; payloads are never
        corrupted)."""
        self._node(index).link.degrade(latency_add_ns=latency_add_ns,
                                       rate_factor=rate_factor, loss=loss)
        self._log("link_degrade", index)

    def restore_link(self, index: int) -> None:
        self._node(index).link.restore()
        self._log("link_restore", index)

    def fail_region(self, index: int, region: int) -> None:
        """Fail one dynamic region mid-pipeline; queries on it raise
        :class:`~repro.common.errors.RegionFailedError` and planners fall
        back to the ship path."""
        node = self._node(index)
        regions = node.regions.regions
        if not 0 <= region < len(regions):
            raise QueryError(f"node {index} has no region {region}")
        regions[region].fail()
        self._log("region_fail", index)

    def repair_region(self, index: int, region: int) -> None:
        node = self._node(index)
        regions = node.regions.regions
        if not 0 <= region < len(regions):
            raise QueryError(f"node {index} has no region {region}")
        regions[region].repair()
        self._log("region_repair", index)


def _as_nodes(target) -> list:
    """Normalize node / cluster / sequence-of-nodes (no import cycle —
    mirrors :func:`repro.core.elasticity._resolve_nodes` structurally)."""
    from .node import FarviewNode

    if isinstance(target, FarviewNode):
        return [target]
    nodes = list(getattr(target, "nodes", None)
                 or (target if isinstance(target, Sequence) else ()))
    if not nodes or not all(isinstance(n, FarviewNode) for n in nodes):
        raise QueryError(
            "FaultInjector needs a FarviewNode, a FarviewCluster, or a "
            f"non-empty sequence of nodes; got {target!r}")
    sims = {id(n.sim) for n in nodes}
    if len(sims) != 1:
        raise QueryError("all fault-injection targets must share one simulator")
    return nodes
