"""Hash functions for the grouping operators.

FPGA database operators favour cheap, high-quality multiplicative and
XOR-shift mixers that pipeline to one result per cycle (cf. Kara & Alonso,
"Fast and robust hashing for database operators", FPL'16 — reference [44]
of the paper).  We implement a splitmix64-style finalizer parameterized by
seed so the cuckoo tables can use independent hash functions.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import OperatorError

_MASK64 = (1 << 64) - 1

#: Odd multipliers for the seeded mixers (from splitmix64 / murmur3 lineage).
_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB
_SEED_GOLDEN = 0x9E3779B97F4A7C15


def mix64(value: int, seed: int = 0) -> int:
    """SplitMix64 finalizer over one 64-bit value (seeded)."""
    x = (value + (seed + 1) * _SEED_GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _M1) & _MASK64
    x ^= x >> 27
    x = (x * _M2) & _MASK64
    x ^= x >> 31
    return x


def hash_key(key: bytes, seed: int = 0) -> int:
    """Hash an arbitrary-length byte key by chaining 8-byte mixes."""
    if seed < 0:
        raise OperatorError(f"negative hash seed: {seed}")
    acc = mix64(len(key), seed)
    for off in range(0, len(key), 8):
        word = int.from_bytes(key[off:off + 8].ljust(8, b"\x00"), "little")
        acc = mix64(acc ^ word, seed)
    return acc


def hash_key_batch(raw: bytes | memoryview, width: int,
                   seed: int = 0) -> np.ndarray:
    """Vectorized :func:`hash_key` over ``n`` fixed-width keys.

    ``raw`` packs ``n`` keys of ``width`` bytes back to back (a key-schema
    byte image).  Returns one uint64 hash per key, bit-identical to calling
    :func:`hash_key` on each slice — the scalar path chains 8-byte
    little-endian words, and so does this, just across the whole batch at
    once.
    """
    if width <= 0:
        raise OperatorError(f"key width must be positive: {width}")
    if seed < 0:
        raise OperatorError(f"negative hash seed: {seed}")
    data = np.frombuffer(raw, dtype=np.uint8)
    if data.size % width:
        raise OperatorError(
            f"key image of {data.size} bytes is not a multiple of the key "
            f"width {width}")
    n = data.size // width
    nwords = (width + 7) // 8
    if width == nwords * 8:
        words = data.view("<u8").reshape(n, nwords)
    else:
        padded = np.zeros((n, nwords * 8), dtype=np.uint8)
        padded[:, :width] = data.reshape(n, width)
        words = padded.view("<u8")
    acc = np.full(n, mix64(width, seed), dtype=np.uint64)
    for j in range(nwords):
        acc = hash_u64_array(acc ^ words[:, j], seed)
    return acc


def hash_u64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized SplitMix64 over a uint64 array (one hash per element)."""
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(((seed + 1) * _SEED_GOLDEN) & _MASK64)
        x ^= x >> np.uint64(30)
        x *= np.uint64(_M1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_M2)
        x ^= x >> np.uint64(31)
    return x


class HashFamily:
    """A family of independent hash functions (one per cuckoo table)."""

    def __init__(self, count: int):
        if count <= 0:
            raise OperatorError(f"hash family needs >= 1 function: {count}")
        self.count = count

    def hash(self, index: int, key: bytes) -> int:
        if not 0 <= index < self.count:
            raise OperatorError(
                f"hash index {index} out of range [0, {self.count})")
        return hash_key(key, seed=index)

    def slot(self, index: int, key: bytes, table_slots: int) -> int:
        return self.hash(index, key) % table_slots
