"""Figure 6 bench: RDMA read throughput and response time (FV vs RNIC)."""

from repro.common import calibration as cal
from repro.experiments import fig6_rdma

KB = 1024


def test_fig6_rdma(benchmark, shape):
    fig6a, fig6b = benchmark.pedantic(fig6_rdma.run, rounds=1, iterations=1)
    shape.render(fig6a)
    shape.render(fig6b)

    tput_fv = fig6a.series_named("FV")
    tput_rnic = fig6a.series_named("RNIC")
    resp_fv = fig6b.series_named("FV")
    resp_rnic = fig6b.series_named("RNIC")

    # (a) Below 4 kB the RNIC achieves better throughput (paper §6.2).
    for size in (128, 256, 512, 1 * KB, 2 * KB):
        assert tput_rnic.y_at(size) >= tput_fv.y_at(size)

    # (a) FV peaks near wire goodput (~12 GBps), above RNIC's PCIe-bound
    # ~11 GBps.
    fv_peak = max(tput_fv.ys)
    rnic_peak = max(tput_rnic.ys)
    assert 11.0 <= fv_peak <= 13.0
    assert 10.0 <= rnic_peak <= 11.5
    assert fv_peak > rnic_peak

    # (b) RNIC responds faster at small transfers; FV wins at large ones
    # by a substantial margin (paper: "at least 20%").
    assert resp_rnic.y_at(512) <= resp_fv.y_at(512)
    large = 32 * KB
    advantage = 1.0 - resp_fv.y_at(large) / resp_rnic.y_at(large)
    assert advantage >= 0.15, f"FV advantage at 32 kB only {advantage:.1%}"

    # (b) Response time grows with transfer size for both systems.
    shape.monotonic(resp_fv, "fig6b")
    shape.monotonic(resp_rnic, "fig6b")
