"""Figure 9: grouping operators — DISTINCT and GROUP BY + SUM (§6.5).

* 9(a) — ``SELECT DISTINCT(S.a) FROM S``: table sizes 64 kB .. 1 MB, the
  number of distinct elements equals the number of tuples (worst case).
* 9(b) — ``SELECT S.a, SUM(S.b) FROM S GROUP BY S.a``: same size sweep,
  the number of groups grows with the table (1 group per 16 tuples).
* 9(c) — same query at a fixed 1 MB table, group count swept 256 .. 4k.

Expected shape: FV far ahead and nearly flat (fully pipelined; flush adds
a small per-group cost visible in 9(c)); the CPU baselines climb steeply
with input size (hash-map work and resizes dominate), LCPU < RCPU.
"""

from __future__ import annotations

from ..baselines.lcpu import LcpuBaseline
from ..baselines.rcpu import RcpuBaseline
from ..core.query import group_by_sum, select_distinct
from ..operators.aggregate import AggregateSpec
from ..sim.stats import Series
from ..workloads.generator import distinct_workload, groupby_workload
from .common import ExperimentResult, make_bench, run_query_warm, upload_table, us

KB = 1024
TABLE_SIZES = (64 * KB, 128 * KB, 256 * KB, 512 * KB, 1024 * KB)
GROUP_COUNTS = (256, 512, 1024, 2048, 4096)
ROW_WIDTH = 64
FIXED_TABLE_SIZE = 1024 * KB
GROUPS_PER_TUPLES = 16  # 9(b): one distinct group per 16 tuples


def _fv_distinct_time(schema, rows) -> float:
    bench = make_bench()
    table = upload_table(bench, "D", schema, rows)
    result, elapsed = run_query_warm(bench, table, select_distinct(["a"]))
    assert len(result.rows()) == len(set(rows["a"].tolist()))
    return elapsed


def _fv_groupby_time(schema, rows, expected_groups: int) -> float:
    bench = make_bench()
    table = upload_table(bench, "G", schema, rows)
    result, elapsed = run_query_warm(bench, table, group_by_sum("a", "b"))
    assert len(result.rows()) == expected_groups
    return elapsed


def run_distinct(table_sizes=TABLE_SIZES) -> ExperimentResult:
    fv = Series("FV")
    lcpu_s = Series("LCPU")
    rcpu_s = Series("RCPU")
    lcpu, rcpu = LcpuBaseline(), RcpuBaseline()
    for size in table_sizes:
        n = size // ROW_WIDTH
        schema, rows = distinct_workload(n, n)  # all distinct (paper)
        fv.add(size, us(_fv_distinct_time(schema, rows)))
        _, t_l, _ = lcpu.distinct(schema, rows, ["a"])
        lcpu_s.add(size, us(t_l))
        _, t_r, _ = rcpu.distinct(schema, rows, ["a"])
        rcpu_s.add(size, us(t_r))
    return ExperimentResult(
        experiment_id="fig9a",
        title="DISTINCT response time (all values distinct)",
        x_label="table [B]", y_label="us",
        series=[fv, lcpu_s, rcpu_s],
        notes=["baselines pay hash-map inserts + resizes; FV is pipelined"])


def run_groupby_scaling(table_sizes=TABLE_SIZES) -> ExperimentResult:
    fv = Series("FV")
    lcpu_s = Series("LCPU")
    rcpu_s = Series("RCPU")
    lcpu, rcpu = LcpuBaseline(), RcpuBaseline()
    aggs = [AggregateSpec("sum", "b")]
    for size in table_sizes:
        n = size // ROW_WIDTH
        groups = max(1, n // GROUPS_PER_TUPLES)
        schema, rows = groupby_workload(n, groups)
        fv.add(size, us(_fv_groupby_time(schema, rows, groups)))
        _, t_l, _ = lcpu.group_by(schema, rows, ["a"], aggs)
        lcpu_s.add(size, us(t_l))
        _, t_r, _ = rcpu.group_by(schema, rows, ["a"], aggs)
        rcpu_s.add(size, us(t_r))
    return ExperimentResult(
        experiment_id="fig9b",
        title="GROUP BY + SUM response time (groups grow with table)",
        x_label="table [B]", y_label="us",
        series=[fv, lcpu_s, rcpu_s],
        notes=[f"one group per {GROUPS_PER_TUPLES} tuples"])


def run_groupby_vs_groups(group_counts=GROUP_COUNTS,
                          table_size: int = FIXED_TABLE_SIZE
                          ) -> ExperimentResult:
    fv = Series("FV")
    lcpu_s = Series("LCPU")
    rcpu_s = Series("RCPU")
    lcpu, rcpu = LcpuBaseline(), RcpuBaseline()
    aggs = [AggregateSpec("sum", "b")]
    n = table_size // ROW_WIDTH
    for groups in group_counts:
        schema, rows = groupby_workload(n, groups)
        fv.add(groups, us(_fv_groupby_time(schema, rows, groups)))
        _, t_l, _ = lcpu.group_by(schema, rows, ["a"], aggs)
        lcpu_s.add(groups, us(t_l))
        _, t_r, _ = rcpu.group_by(schema, rows, ["a"], aggs)
        rcpu_s.add(groups, us(t_r))
    return ExperimentResult(
        experiment_id="fig9c",
        title="GROUP BY + SUM response time vs number of groups",
        x_label="groups", y_label="us",
        series=[fv, lcpu_s, rcpu_s],
        notes=[f"fixed {table_size // KB} kB table; FV's flush cost grows "
               "with the group count"])


def run() -> list[ExperimentResult]:
    return [run_distinct(), run_groupby_scaling(), run_groupby_vs_groups()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
