"""Figure 21 (repo extension): the tenant serving layer under open-loop load.

The paper's evaluation drives six lockstep clients; the pitch (§1) is a
pool serving *many* compute-side query threads.  This experiment drives
the serving layer — :class:`~repro.core.serving.TenantSession` +
:class:`~repro.core.serving.FrontDoor` over the repaired
:class:`~repro.core.elasticity.RegionLeaseManager` — with 100 to 10,000
simulated tenants submitting open-loop (seeded Poisson arrivals that keep
coming whether or not earlier requests finished):

* **fig21a** — request latency percentiles (p50/p99, µs) vs the number of
  tenants.  The offered load grows 100×; coalescing of identical scans
  bounds the tail: the p99 grows by a small factor, not by the load
  factor (graceful degradation, no collapse).
* **fig21b** — offered vs served request throughput (requests/ms) and
  actually executed scans/ms on the same sweep: served tracks offered
  across the whole range, while executions saturate at the pool's
  capacity — the gap is the front door's batching at work.
* **fig21c** — weighted fair sharing: a saturated two-class storm (equal
  halves, heavy class weight w ∈ {2, 4, 8}) under ``policy="fair"`` vs
  plain FIFO.  Fair queueing buys the heavy class proportionally lower
  mean latency; FIFO is weight-blind.

Correctness is asserted inline, not just plotted:

* the run drains: every request of every tenant completes — zero starved
  tenants at every load point (the liveness/fairness fixes of PR 10 are
  load-bearing here);
* every served result — leader or coalesced follower — is
  sha256-identical to a serial replay of its shape on a fresh
  single-client bench;
* bounded degradation: the p99 at 10,000 tenants stays within a fixed
  small factor of the p99 at 100 tenants, and served throughput never
  drops as offered load grows;
* batching is real: at the top load point the pool executes at most a
  tenth of the requests it serves.

Every run is deterministic: same seeds → same arrivals → same grant
order, same latencies, same bytes.
"""

from __future__ import annotations

import hashlib

from ..core.elasticity import RegionLeaseManager
from ..core.api import canonical_result_bytes
from ..core.node import FarviewNode
from ..core.query import group_by_sum, select_distinct, select_star
from ..core.serving import FrontDoor, ScanShape
from ..sim.engine import Simulator
from ..sim.stats import Series, percentile
from ..workloads.generator import (distinct_workload, groupby_workload,
                                   open_loop_arrivals, selection_workload)
from .common import (EXPERIMENT_CONFIG, ExperimentResult, make_bench,
                     upload_table, us)

KB = 1024

NUM_NODES = 2                 # pool: 2 nodes x 6 dynamic regions
ROWS = 512                    # 32 KiB per shape image
TENANT_COUNTS = (100, 300, 1_000, 3_000, 10_000)
MEAN_GAP_NS = 200_000.0       # per-tenant mean inter-arrival (open loop)
HORIZON_NS = 400_000.0        # arrival window per run
BASE_SEED = 210

#: fig21c saturated two-class storm.
FAIR_TENANTS = 16             # per class
FAIR_ROUNDS = 3               # requests per tenant
FAIR_WEIGHTS = (2.0, 4.0, 8.0)

#: Bounded degradation: p99 at the top load point stays within this
#: factor of the p99 at the bottom one (measured ratio ~1.0x — coalescing
#: flattens the tail — so 3x is real slack, not a vacuous bound).
P99_BOUND_FACTOR = 3.0
#: Batching is real: executed scans <= requests/10 at the top point.
COALESCE_FACTOR = 10


def make_shapes() -> list[ScanShape]:
    """Four query shapes over small tables — the hot working set many
    tenants keep re-asking for (what makes coalescing representative)."""
    sel_hot = selection_workload(ROWS, 0.5, seed=BASE_SEED)
    sel_cold = selection_workload(ROWS, 0.05, seed=BASE_SEED + 1)
    d_schema, d_rows = distinct_workload(ROWS, 64, seed=BASE_SEED + 2)
    g_schema, g_rows = groupby_workload(ROWS, 32, seed=BASE_SEED + 3)
    return [
        ScanShape("f21-sel-hot", sel_hot.schema, sel_hot.rows,
                  select_star(sel_hot.predicate)),
        ScanShape("f21-sel-cold", sel_cold.schema, sel_cold.rows,
                  select_star(sel_cold.predicate)),
        ScanShape("f21-distinct", d_schema, d_rows, select_distinct(["a"])),
        ScanShape("f21-groupby", g_schema, g_rows, group_by_sum("a", "b")),
    ]


def serial_reference(shapes) -> dict[str, str]:
    """Serial replay: each shape once on a fresh single-client bench;
    returns shape name -> sha256 of the canonical result bytes."""
    shas: dict[str, str] = {}
    for shape in shapes:
        bench = make_bench()
        table = upload_table(bench, shape.name, shape.schema, shape.rows)
        bench.client.far_view(table, shape.query)  # deploy the pipeline
        result, _ = bench.client.far_view(table, shape.query)
        shas[shape.name] = hashlib.sha256(
            canonical_result_bytes(result)).hexdigest()
    return shas


def _make_pool(policy: str = "fair", num_nodes: int = NUM_NODES,
               coalesce: bool = True):
    sim = Simulator()
    nodes = [FarviewNode(sim, EXPERIMENT_CONFIG) for _ in range(num_nodes)]
    manager = RegionLeaseManager(nodes, policy=policy)
    return sim, FrontDoor(manager, coalesce=coalesce)


def run_open_loop_trial(num_tenants: int, shapes, seed: int = BASE_SEED,
                        mean_gap_ns: float = MEAN_GAP_NS,
                        horizon_ns: float = HORIZON_NS):
    """One deterministic open-loop run; returns the drained front door.

    Each tenant gets a seeded Poisson arrival stream; each arrival asks
    for one of the hot shapes (round-robin over ``tenant + i`` so every
    shape sees every load level).  The run *drains*: the simulator runs
    until every submitted request completed.
    """
    sim, door = _make_pool()
    schedules = open_loop_arrivals(num_tenants, mean_gap_ns, horizon_ns,
                                   seed=seed)
    procs = []
    for tenant, times in enumerate(schedules):
        session = door.session(tenant)
        for i, at_ns in enumerate(times):
            shape = shapes[(tenant + i) % len(shapes)]
            procs.append(session.submit_at(at_ns, shape))
    sim.run()
    assert all(p.triggered and p.ok for p in procs), \
        "fig21: a request hung or failed in a fault-free run"
    return sim, door


def _assert_serving_correct(door, reference, label: str) -> None:
    """The experiment's correctness teeth (see module docstring)."""
    for session in door.sessions:
        assert session.failed == 0, f"{label}: request failed fault-free"
        assert session.completed == session.submitted, \
            f"{label}: tenant {session.tenant} starved " \
            f"({session.completed}/{session.submitted})"
        assert session.submitted >= 1
    for record in door.records:
        assert record.sha256 == reference[record.shape], \
            f"{label}: {record.shape} diverged from the serial replay"


def run_load_sweep(tenant_counts=TENANT_COUNTS,
                   shapes=None) -> tuple[ExperimentResult, ExperimentResult]:
    """fig21a (latency percentiles) + fig21b (throughput) vs tenants."""
    shapes = make_shapes() if shapes is None else shapes
    reference = serial_reference(shapes)
    p50 = Series("p50")
    p99 = Series("p99")
    offered = Series("offered")
    served = Series("served")
    executed = Series("executed")
    p99_by_count: dict[int, float] = {}
    served_by_count: dict[int, float] = {}
    for num_tenants in tenant_counts:
        sim, door = run_open_loop_trial(num_tenants, shapes)
        _assert_serving_correct(door, reference,
                                f"fig21[{num_tenants} tenants]")
        latencies = door.latencies_ns()
        duration_ms = sim.now / 1e6
        p50.add(num_tenants, us(percentile(latencies, 50)))
        p99_us = us(percentile(latencies, 99))
        p99.add(num_tenants, p99_us)
        p99_by_count[num_tenants] = p99_us
        offered.add(num_tenants, door.requests / (HORIZON_NS / 1e6))
        served_rate = len(door.records) / duration_ms
        served.add(num_tenants, served_rate)
        served_by_count[num_tenants] = served_rate
        executed.add(num_tenants, door.executions / duration_ms)
        if num_tenants == max(tenant_counts):
            assert door.executions * COALESCE_FACTOR <= door.requests, \
                "fig21: coalescing absorbed too little at the top load"
    low, high = min(tenant_counts), max(tenant_counts)
    assert p99_by_count[high] <= P99_BOUND_FACTOR * p99_by_count[low], \
        f"fig21: p99 degraded {p99_by_count[high] / p99_by_count[low]:.1f}x " \
        f"over a {high / low:.0f}x load increase (bound {P99_BOUND_FACTOR}x)"
    assert served_by_count[high] >= served_by_count[low], \
        "fig21: served throughput collapsed as offered load grew"
    result_a = ExperimentResult(
        experiment_id="fig21a",
        title=f"tenant serving: latency percentiles under open-loop load, "
              f"{NUM_NODES}-node pool",
        x_label="tenants", y_label="latency us",
        series=[p50, p99],
        notes=[f"{len(make_shapes())} hot shapes of {ROWS * 64 // KB} KiB; "
               f"per-tenant Poisson arrivals, mean gap "
               f"{MEAN_GAP_NS / 1000:.0f} us over a "
               f"{HORIZON_NS / 1000:.0f} us window",
               "every request completes (zero starved tenants) and every "
               "result is sha256-identical to the serial replay",
               f"graceful degradation: p99 stays within "
               f"{P99_BOUND_FACTOR:.0f}x of the 100-tenant p99 across a "
               f"100x load increase"])
    result_b = ExperimentResult(
        experiment_id="fig21b",
        title="tenant serving: offered vs served throughput",
        x_label="tenants", y_label="requests/ms",
        series=[offered, served, executed],
        notes=["served tracks offered across the sweep; 'executed' is the "
               "scans the pool actually ran — the gap is front-door "
               "coalescing of identical in-flight requests",
               "executions saturate at pool capacity instead of queueing "
               "without bound (no collapse)"])
    return result_a, result_b


def run_fairness(weights=FAIR_WEIGHTS, shapes=None) -> ExperimentResult:
    """fig21c: heavy vs light mean latency, fair policy vs FIFO, in a
    saturated two-class storm (coalescing off so admission order is the
    only mechanism in play)."""
    shapes = make_shapes() if shapes is None else shapes
    reference = serial_reference(shapes)
    series = {"fair heavy": Series("fair heavy"),
              "fair light": Series("fair light"),
              "fifo heavy": Series("fifo heavy"),
              "fifo light": Series("fifo light")}

    def storm(policy: str, heavy_weight: float):
        sim, door = _make_pool(policy=policy, num_nodes=1, coalesce=False)
        classes = [("heavy", heavy_weight), ("light", 1.0)]
        sessions = {cls: [door.session((cls, t), weight=weight)
                          for t in range(FAIR_TENANTS)]
                    for cls, weight in classes}
        # Interleave the two classes request-by-request so FIFO sees a
        # perfectly alternating arrival order: any latency gap is then
        # the admission policy's doing, not the submission order's.
        procs = []
        for i in range(FAIR_ROUNDS):
            for t in range(FAIR_TENANTS):
                for cls, _w in classes:
                    shape = shapes[(t + i) % len(shapes)]
                    procs.append(sessions[cls][t].submit(shape))
        sim.run()
        assert all(p.triggered and p.ok for p in procs), \
            "fig21c: a storm request hung"
        _assert_serving_correct(door, reference, f"fig21c[{policy}]")
        means = {}
        for cls, _w in classes:
            lats = [lat for s in door.sessions if s.tenant[0] == cls
                    for lat in s.latencies_ns]
            means[cls] = sum(lats) / len(lats)
        return means

    for weight in weights:
        fair = storm("fair", weight)
        fifo = storm("fifo", weight)
        assert fair["heavy"] < fair["light"], \
            f"fig21c: weight {weight} bought no latency advantage"
        # FIFO is weight-blind: both classes see statistically even
        # service (identical symmetric storms, only arrival interleaving
        # differs) — the fair-policy gap must dominate the FIFO gap.
        fair_gap = fair["light"] / fair["heavy"]
        fifo_gap = max(fifo["light"], fifo["heavy"]) / \
            min(fifo["light"], fifo["heavy"])
        assert fair_gap > fifo_gap, \
            "fig21c: fair queueing indistinguishable from FIFO"
        series["fair heavy"].add(weight, us(fair["heavy"]))
        series["fair light"].add(weight, us(fair["light"]))
        series["fifo heavy"].add(weight, us(fifo["heavy"]))
        series["fifo light"].add(weight, us(fifo["light"]))
    return ExperimentResult(
        experiment_id="fig21c",
        title=f"weighted fair sharing: {2 * FAIR_TENANTS}-tenant saturated "
              f"storm, heavy class weight swept",
        x_label="heavy-class weight", y_label="mean latency us",
        series=list(series.values()),
        notes=["start-time fair queueing grants a weight-w tenant w "
               "leases per weight-1 lease under contention; FIFO ignores "
               "weights entirely",
               "coalescing disabled so admission order is the only "
               "mechanism measured"])


def run() -> list[ExperimentResult]:
    result_a, result_b = run_load_sweep()
    return [result_a, result_b, run_fairness()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
