"""Sender unit: dynamic RDMA command generation (paper §5.5).

"The sender unit is the final step before the results are emitted to the
network stack.  It monitors the queue present in this module where the
packed results are written.  Based on the status of this queue this module
issues specific RDMA packet commands ... even when the final data size is
not known a priori, as is the case with most of the operators."

The sender couples the packer's output queue to a
:class:`~repro.network.rdma.ResponseStreamer`: every drained word batch
becomes RDMA WRITE commands into the client's buffer, and ``finish``
flushes the partial word plus the end-of-message command.
"""

from __future__ import annotations

from ..network.rdma import ResponseStreamer
from .packing import Packer


class Sender:
    """Drives packed result bytes into the response stream."""

    def __init__(self, streamer: ResponseStreamer, packer: Packer | None = None):
        self.streamer = streamer
        self.packer = packer if packer is not None else Packer()
        self.commands_issued = 0

    def send(self, data: bytes):
        """Process: pack ``data`` and emit any whole words to the network."""
        ready = self.packer.pack(data)
        if ready:
            self.commands_issued += 1
            yield from self.streamer.send(ready)

    def finish(self):
        """Process: flush the final partial word and close the stream.

        Returns total payload bytes sent (the size was not known a priori —
        the sender computed it on the fly, as the paper emphasizes).
        """
        tail = self.packer.flush()
        if tail:
            self.commands_issued += 1
            yield from self.streamer.send(tail)
        total = yield from self.streamer.finish()
        return total
