"""CLI: listing, running, CSV export, SQL execution."""

import csv
import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, results_to_csv
from repro.experiments.common import ExperimentResult
from repro.sim.stats import Series


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_shows_every_experiment(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for key in EXPERIMENTS:
        assert key in out
    assert "Figure 8" in out


def test_run_unknown_experiment_fails(capsys):
    with pytest.raises(SystemExit, match="unknown experiment"):
        main(["run", "fig99"])


def test_run_table1(capsys):
    code, out, err = run_cli(capsys, "run", "table1")
    assert code == 0
    assert "6 regions" in out
    assert "24%" in out
    assert "Table 1" in err


def test_run_panel_alias_resolves(capsys):
    # fig9c resolves to the fig9 runner but prints only the 9c panel.
    import repro.cli as cli
    saved = cli.EXPERIMENTS["fig9"]
    fast = ExperimentResult("fig9c", "stub", "x", "y",
                            series=[Series("FV")])
    other = ExperimentResult("fig9a", "stub", "x", "y",
                             series=[Series("FV")])
    cli.EXPERIMENTS["fig9"] = (saved[0], lambda: [other, fast])
    try:
        code, out, _ = run_cli(capsys, "run", "fig9c")
        assert code == 0
        assert "fig9c" in out
        assert "fig9a" not in out
    finally:
        cli.EXPERIMENTS["fig9"] = saved


def test_csv_export_long_form():
    series = Series("FV")
    series.add(64, 1.5)
    series.add(128, 2.5)
    result = ExperimentResult("figX", "t", "bytes", "us", series=[series])
    text = results_to_csv([result])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["experiment", "series", "x", "y", "x_label", "y_label"]
    assert rows[1] == ["figX", "FV", "64", "1.5", "bytes", "us"]
    assert len(rows) == 3


def test_run_with_csv_output(tmp_path, capsys):
    out_file = tmp_path / "out.csv"
    code, _, err = run_cli(capsys, "run", "table1", "--csv", str(out_file))
    assert code == 0
    assert out_file.exists()
    assert "wrote" in err


def test_sql_command(capsys):
    code, out, _ = run_cli(
        capsys, "sql", "SELECT c, COUNT(*) FROM demo GROUP BY c",
        "--rows", "256", "--limit", "3")
    assert code == 0
    assert "16 rows" in out
    assert "more)" in out


def test_sql_custom_table_name(capsys):
    code, out, _ = run_cli(
        capsys, "sql", "SELECT COUNT(*) FROM mytab", "--table", "mytab",
        "--rows", "128")
    assert code == 0
    assert "1 rows" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
