"""Projection (standard + smart addressing) and selection operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OperatorError, QueryError
from repro.common.records import default_schema, wide_schema
from repro.operators.projection import ProjectionOperator, SmartAddressingPlan
from repro.operators.selection import (
    And,
    Compare,
    Not,
    Or,
    SelectionOperator,
    VectorizedSelectionOperator,
)


def make_batch(n=10):
    schema = default_schema()
    batch = schema.empty(n)
    batch["a"] = np.arange(n)
    batch["b"] = np.arange(n) * 0.5
    batch["c"] = np.arange(n) % 3
    return schema, batch


# --- projection -------------------------------------------------------------------

def test_projection_narrows_columns():
    schema, batch = make_batch()
    op = ProjectionOperator(["a", "c"])
    out_schema = op.bind(schema)
    assert out_schema.names == ("a", "c")
    out = op.process(batch)
    np.testing.assert_array_equal(out["a"], batch["a"])
    np.testing.assert_array_equal(out["c"], batch["c"])
    assert out_schema.row_width == 16


def test_projection_preserves_requested_order():
    schema, batch = make_batch()
    op = ProjectionOperator(["c", "a"])
    out_schema = op.bind(schema)
    assert out_schema.names == ("c", "a")


def test_projection_validation():
    schema, _ = make_batch()
    with pytest.raises(OperatorError):
        ProjectionOperator([])
    with pytest.raises(OperatorError):
        ProjectionOperator(["a", "a"])
    op = ProjectionOperator(["zz"])
    with pytest.raises(QueryError):
        op.bind(schema)


def test_projection_counts_rows():
    schema, batch = make_batch(7)
    op = ProjectionOperator(["a"])
    op.bind(schema)
    op.process(batch)
    assert op.rows_in == 7
    assert op.rows_out == 7


# --- smart addressing --------------------------------------------------------------

def test_smart_addressing_coalesces_contiguous_columns():
    schema = wide_schema(512)  # 64 x int64 columns a, b, c, ...
    plan = SmartAddressingPlan(schema, ["a", "b", "c"])
    assert plan.requests_per_tuple == 1
    assert plan.bytes_per_tuple == 24


def test_smart_addressing_separate_runs():
    schema = wide_schema(512)
    names = schema.names
    plan = SmartAddressingPlan(schema, [names[0], names[10]])
    assert plan.requests_per_tuple == 2
    assert plan.bytes_per_tuple == 16


def test_smart_addressing_request_stream():
    schema = wide_schema(256)
    plan = SmartAddressingPlan(schema, ["a", "b"])
    reqs = list(plan.requests(base_vaddr=0, num_tuples=3))
    assert reqs == [(0, 16), (256, 16), (512, 16)]
    assert plan.total_bytes(3) == 48


def test_smart_addressing_assemble_round_trip():
    schema = wide_schema(256)
    batch = schema.empty(4)
    for i, name in enumerate(schema.names):
        batch[name] = np.arange(4) * 100 + i
    image = schema.to_bytes(batch)
    plan = SmartAddressingPlan(schema, ["c", "a"])  # out of byte order
    chunks = [image[v:v + w] for v, w in plan.requests(0, 4)]
    out = plan.assemble(chunks, 4)
    np.testing.assert_array_equal(out["a"], batch["a"])
    np.testing.assert_array_equal(out["c"], batch["c"])
    assert out.dtype.names == ("c", "a")


def test_smart_addressing_assemble_validates():
    schema = wide_schema(256)
    plan = SmartAddressingPlan(schema, ["a"])
    with pytest.raises(OperatorError):
        plan.assemble([b"12345678"], 2)  # wrong chunk count
    with pytest.raises(OperatorError):
        plan.assemble([b"123"], 1)  # wrong chunk width


def test_smart_addressing_needs_columns():
    schema = wide_schema(256)
    with pytest.raises(OperatorError):
        SmartAddressingPlan(schema, [])


# --- predicates -----------------------------------------------------------------------

def test_compare_operators():
    schema, batch = make_batch()
    assert Compare("a", "<", 5).evaluate(batch).sum() == 5
    assert Compare("a", "<=", 5).evaluate(batch).sum() == 6
    assert Compare("a", ">", 7).evaluate(batch).sum() == 2
    assert Compare("a", ">=", 7).evaluate(batch).sum() == 3
    assert Compare("a", "==", 3).evaluate(batch).sum() == 1
    assert Compare("a", "!=", 3).evaluate(batch).sum() == 9


def test_compare_rejects_unknown_op():
    with pytest.raises(QueryError):
        Compare("a", "<>", 1)


def test_compare_validates_types():
    schema, _ = make_batch()
    with pytest.raises(QueryError):
        Compare("a", "<", "text").validate(schema)
    with pytest.raises(QueryError):
        Compare("a", "<", 1).validate(default_schema()) or \
            Compare("zz", "<", 1).validate(schema)


def test_boolean_combinators():
    schema, batch = make_batch()
    p = And(Compare("a", ">=", 2), Compare("a", "<", 5))
    assert p.evaluate(batch).sum() == 3
    q = Or(Compare("a", "==", 0), Compare("a", "==", 9))
    assert q.evaluate(batch).sum() == 2
    r = Not(Compare("a", "<", 5))
    assert r.evaluate(batch).sum() == 5


def test_operator_overloads():
    schema, batch = make_batch()
    p = (Compare("a", ">=", 2) & Compare("a", "<", 5)) | Compare("a", "==", 9)
    assert p.evaluate(batch).sum() == 4
    assert (~p).evaluate(batch).sum() == 6


def test_predicate_columns():
    p = And(Compare("a", "<", 1), Or(Compare("b", ">", 0.0), Compare("c", "==", 1)))
    assert p.columns() == {"a", "b", "c"}


def test_float_predicate():
    schema, batch = make_batch()
    assert Compare("b", ">", 3.14).evaluate(batch).sum() == 3  # 3.5, 4.0, 4.5


# --- selection operator --------------------------------------------------------------------

def test_selection_filters():
    schema, batch = make_batch()
    op = SelectionOperator(Compare("a", "<", 4))
    assert op.bind(schema) == schema
    out = op.process(batch)
    assert len(out) == 4
    assert op.selectivity == pytest.approx(0.4)


def test_selection_multi_column_predicate():
    """The paper's evaluation query: WHERE S.a < X AND S.b < Y (§6.4)."""
    schema, batch = make_batch()
    op = SelectionOperator(Compare("a", "<", 8) & Compare("b", "<", 2.0))
    op.bind(schema)
    out = op.process(batch)
    np.testing.assert_array_equal(out["a"], [0, 1, 2, 3])


def test_selection_bind_validates():
    schema, _ = make_batch()
    op = SelectionOperator(Compare("nope", "<", 1))
    with pytest.raises((OperatorError, QueryError)):
        op.bind(schema)


def test_selection_before_bind_rejected():
    _, batch = make_batch()
    op = SelectionOperator(Compare("a", "<", 1))
    with pytest.raises(OperatorError):
        op.process(batch)


def test_vectorized_same_semantics():
    schema, batch = make_batch()
    pred = Compare("a", "<", 6)
    scalar = SelectionOperator(pred)
    vec = VectorizedSelectionOperator(pred, lanes=4)
    scalar.bind(schema)
    vec.bind(schema)
    np.testing.assert_array_equal(scalar.process(batch), vec.process(batch))
    assert vec.lanes == 4


def test_vectorized_lane_selection():
    pred = Compare("a", "<", 1)
    op = VectorizedSelectionOperator.for_configuration(
        pred, memory_channels=2, tuple_width=64)
    assert op.lanes == 2  # 2 channels x 64 B / 64 B tuples

    wide = VectorizedSelectionOperator.for_configuration(
        pred, memory_channels=4, tuple_width=16)
    assert wide.lanes >= 4


def test_vectorized_validation():
    with pytest.raises(OperatorError):
        VectorizedSelectionOperator(Compare("a", "<", 1), lanes=0)
    with pytest.raises(OperatorError):
        VectorizedSelectionOperator.for_configuration(
            Compare("a", "<", 1), 2, tuple_width=0)


@settings(max_examples=30, deadline=None)
@given(threshold=st.integers(min_value=-5, max_value=15))
def test_selection_selectivity_property(threshold):
    schema, batch = make_batch(10)
    op = SelectionOperator(Compare("a", "<", threshold))
    op.bind(schema)
    out = op.process(batch)
    expected = max(0, min(10, threshold))
    assert len(out) == expected
    assert np.all(out["a"] < threshold)
