"""Shift-register LRU cache hiding hash-table latency (paper §5.4).

The distinct/group-by hash table is pipelined: an update issued for tuple i
is not visible when tuple i+1 (or i+k, for pipeline depth k) performs its
lookup, creating a data hazard — two equal back-to-back keys would both be
reported as "new".  The paper hides the hazard with a small true-LRU cache
"implemented with a shift register, which adds a negligible latency to the
data streams (the amount depends on the number of cuckoo hash tables)".

We model exactly that: a fixed-depth register of recent keys.  A hit
anywhere promotes the key to most-recent (true LRU); insertion shifts the
oldest key out.  Capacity = depth per cuckoo way x number of ways, as the
hardware sizes it to cover the table lookup latency.

The register is held as an insertion-ordered dict (oldest first) rather
than a literal shift register: lookups and promotions are O(1) hash
operations instead of list scans — this sits on the per-tuple hot path of
DISTINCT and GROUP BY.  Hit/miss/eviction behaviour is identical for the
lookup-then-insert protocol the operators use; the one divergence is that
``insert`` of an already-resident key promotes it instead of storing a
duplicate copy (true-LRU semantics; the old register could briefly hold
the key twice).
"""

from __future__ import annotations

from ..common.errors import OperatorError


class ShiftRegisterLru:
    """Fixed-capacity true-LRU over byte keys, shift-register semantics."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise OperatorError(f"LRU depth must be positive: {depth}")
        self.depth = depth
        self._reg: dict[bytes, None] = {}  # insertion order: oldest first
        self.hits = 0
        self.misses = 0

    def lookup(self, key: bytes) -> bool:
        """True if ``key`` is resident; promotes it to most-recent."""
        reg = self._reg
        if key in reg:
            del reg[key]
            reg[key] = None  # re-append: most-recent position
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: bytes) -> None:
        """Push ``key`` as most-recent; the oldest entry falls off the end."""
        reg = self._reg
        if key in reg:
            del reg[key]
        reg[key] = None
        if len(reg) > self.depth:
            del reg[next(iter(reg))]

    def lookup_or_insert(self, key: bytes) -> bool:
        """Combined probe+insert as the hardware does in one pass."""
        reg = self._reg
        if key in reg:
            del reg[key]
            reg[key] = None
            self.hits += 1
            return True
        self.misses += 1
        reg[key] = None
        if len(reg) > self.depth:
            del reg[next(iter(reg))]
        return False

    @property
    def resident(self) -> list[bytes]:
        """Resident keys, most-recent first."""
        return list(reversed(self._reg))

    def __contains__(self, key: bytes) -> bool:
        return key in self._reg

    def __repr__(self) -> str:
        return f"ShiftRegisterLru(depth={self.depth}, live={len(self._reg)})"
