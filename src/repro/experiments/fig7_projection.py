"""Figure 7: standard projection vs smart addressing (§6.3).

The query projects three contiguous 8-byte columns.  Three configurations:

* ``FV-SA``    — smart addressing on 512-byte tuples,
* ``FV-t256B`` — standard projection, 256-byte tuples,
* ``FV-t512B`` — standard projection, 512-byte tuples,

swept over the tuple count (256 .. 16k).  Expected shape: FV-t256B lowest,
FV-SA close behind, FV-t512B clearly slower at scale — i.e. the crossover
between the two access modes sits between 256-byte and 512-byte tuples.
"""

from __future__ import annotations

from ..core.query import Query
from ..sim.stats import Series
from ..workloads.generator import projection_workload
from .common import ExperimentResult, make_bench, run_query_warm, upload_table, us

TUPLE_COUNTS = (256, 512, 1024, 2048, 4096, 8192, 16384)
PROJECTED = ("a", "b", "c")  # three contiguous 8-byte columns


def _measure(num_tuples: int, tuple_bytes: int, smart: bool) -> float:
    bench = make_bench()
    schema, rows = projection_workload(num_tuples, tuple_bytes)
    table = upload_table(bench, "wide", schema, rows)
    query = Query(projection=PROJECTED, smart_addressing=smart)
    result, elapsed = run_query_warm(bench, table, query)
    expected_mode = "smart" if smart else "standard"
    assert result.report.ingest_mode == expected_mode
    assert len(result.rows()) == num_tuples
    return elapsed


def run(tuple_counts=TUPLE_COUNTS) -> ExperimentResult:
    sa = Series("FV-SA")
    t256 = Series("FV-t256B")
    t512 = Series("FV-t512B")
    for n in tuple_counts:
        sa.add(n, us(_measure(n, 512, smart=True)))
        t256.add(n, us(_measure(n, 256, smart=False)))
        t512.add(n, us(_measure(n, 512, smart=False)))
    return ExperimentResult(
        experiment_id="fig7",
        title="Standard projection vs smart addressing",
        x_label="tuples", y_label="us",
        series=[sa, t256, t512],
        notes=["crossover: smart addressing wins for 512 B tuples, "
               "sequential scan wins for 256 B tuples"])


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
