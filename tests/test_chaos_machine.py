"""Stateful chaos testing: random faults interleaved with queries.

A Hypothesis rule machine drives a replicated 4-node cluster through
random crash / recover / link-degrade transitions interleaved with raw
reads, scatter-gather scans, broadcast joins, and versioned writes and
snapshot scans.  The oracle mirrors ``tests/test_core_versioning.py``'s
machines: a serial numpy model plus a per-epoch byte history, and every
*successful* operation must return bytes sha256-identical to the
quiesced no-fault replay — under chaos, a query may fail with a typed
:class:`FaultError`, but it may never return different bytes or hang.

Availability itself is part of the oracle for the replicated plain
table: with ring replicas (``k=2``, replica of shard *s* on node
``s+1``) a scan must *succeed* whenever each shard still has a usable
copy — node up and never crashed since the copy was written (fail-stop
with amnesia: a crash invalidates the incarnation its shards and
replicas were stamped with) — and must fail typed whenever some shard
has none.
"""

import hashlib
import os

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.baselines.sql_model import execute_model
from repro.common.config import FarviewConfig, MemoryConfig
from repro.common.errors import FaultError
from repro.common.records import Column, Schema, default_schema
from repro.core.api import ClusterClient
from repro.core.cluster import FarviewCluster
from repro.core.elasticity import RegionLeaseManager
from repro.core.faults import FaultInjector
from repro.core.partition import PartitionSpec
from repro.core.query import JoinSpec, Query, select_star
from repro.operators.selection import Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import make_rows, selection_workload

KB = 1024
MB = 1024 * KB

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
NUM_NODES = 4

TEST_CONFIG = FarviewConfig(memory=MemoryConfig(
    channels=2, channel_capacity=8 * MB, page_size=64 * KB))


def sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


VIEW_SQL = "SELECT c, COUNT(*) AS n FROM v GROUP BY c"


def view_model_sha(schema, image: bytes) -> str:
    """Serial model over the epoch's byte image, canonicalized the way
    :meth:`ZSet.sha256` hashes (sorted row byte-images)."""
    rows = schema.from_bytes(image, copy=True)
    out_schema, out_rows = execute_model(VIEW_SQL, {"v": (schema, rows)})
    data = out_schema.to_bytes(out_rows)
    width = out_schema.row_width
    images = sorted(data[i:i + width] for i in range(0, len(data), width))
    return sha(b"".join(images))


class ChaosMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.cluster = FarviewCluster(self.sim, NUM_NODES, TEST_CONFIG)
        self.cc = ClusterClient(self.cluster)
        self.cc.open_connection()
        self.injector = FaultInjector(self.cluster)
        #: Nodes currently down / with a degraded link.
        self.down: set[int] = set()
        self.degraded: set[int] = set()
        #: Nodes that have crashed at least once: their incarnation no
        #: longer matches anything written at table-creation time.
        self.crashed_ever: set[int] = set()

        # Replicated plain table (scans, raw reads) + dimension (joins).
        wl = selection_workload(512, 0.5, seed=31 + CHAOS_SEED)
        self.fact = self.cc.create_table("fact", wl.schema, wl.rows,
                                         PartitionSpec(replicas=2))
        self.fact_query = select_star(wl.predicate)
        dim_schema = Schema([Column("id", "int64"), Column("rate", "float64")])
        dim_rows = dim_schema.empty(64)
        dim_rows["id"] = np.arange(64)
        dim_rows["rate"] = np.arange(64) * 0.5
        self.dim = self.cc.create_table("dim", dim_schema, dim_rows,
                                        PartitionSpec(replicas=2))
        self.join_query = Query(join=JoinSpec(self.dim, "id", "a", ("rate",)),
                                label="chaos-join")
        # Hash-partitioned twin of the fact table (k=2) for the
        # partitioned join strategies: co-located against a build
        # hash-partitioned on the join key, repartition shuffle against
        # the chunk-partitioned dimension.
        self.hfact = self.cc.create_table(
            "hfact", wl.schema, wl.rows,
            PartitionSpec("hash", key="a", replicas=2))
        self.hdim = self.cc.create_table(
            "hdim", dim_schema, dim_rows,
            PartitionSpec("hash", key="id", replicas=2))
        self.colo_query = Query(join=JoinSpec(self.hdim, "id", "a",
                                              ("rate",)),
                                label="chaos-colo")
        # Versioned table (k=1 chunk shards) for writes + pinned scans.
        self.schema = default_schema()
        rows = make_rows(self.schema, 48, seed=32 + CHAOS_SEED)
        rows["a"] = np.arange(48)
        self.vst = self.cc.create_versioned_table("v", self.schema, rows)
        self.model = rows.copy()
        self.history = {0: self.schema.to_bytes(rows)}
        self.scan_query = Query(projection=tuple(self.schema.names),
                                label="chaos-scan")
        # Materialized view over the versioned table, refreshed
        # *explicitly* (auto=False) so the view rule — not every
        # versioned_update — decides when deltas propagate.
        self.view, _ = self.cc.create_view(VIEW_SQL, name="chaos_view")
        self.view_sub = self.cc.subscribe(self.view, auto=False)

        # Lease admission over node 0 only: a deliberately narrow pool
        # (the ClusterClient's standing connection already holds one of
        # its regions) so a small storm genuinely queues.
        self.lease_mgr = RegionLeaseManager([self.cluster.node(0)])

        # No-fault references (also warms pipelines + broadcast cache).
        self.fact_sha = sha(self.cc.far_view(self.fact,
                                             self.fact_query)[0].data)
        self.join_sha = sha(self.cc.far_view(self.fact,
                                             self.join_query)[0].data)
        self.image_sha = sha(self.cc.table_read(self.fact)[0])
        colo_ref = self.cc.far_view(self.hfact, self.colo_query)[0]
        assert colo_ref.join_strategy == "colocated"
        self.colo_sha = sha(colo_ref.data)
        shuffle_ref = self.cc.far_view(self.hfact, self.join_query,
                                       join_strategy="shuffle")[0]
        self.shuffle_sha = sha(shuffle_ref.data)

    # -- availability oracle ----------------------------------------------
    def _copy_usable(self, node: int) -> bool:
        return node not in self.down and node not in self.crashed_ever

    def _fact_available(self) -> bool:
        """Every shard has a usable copy (primary or its ring replica)."""
        return all(self._copy_usable(s) or self._copy_usable((s + 1)
                                                            % NUM_NODES)
                   for s in range(NUM_NODES))

    # -- fault transitions -------------------------------------------------
    @rule(node=st.integers(min_value=0, max_value=NUM_NODES - 1))
    def crash(self, node):
        if node in self.down:
            return
        self.injector.crash(node)
        self.down.add(node)
        self.crashed_ever.add(node)

    @rule(node=st.integers(min_value=0, max_value=NUM_NODES - 1))
    def recover(self, node):
        if node not in self.down:
            return
        self.injector.recover(node)
        self.down.remove(node)

    @rule(node=st.integers(min_value=0, max_value=NUM_NODES - 1))
    def degrade_link(self, node):
        if node in self.degraded:
            return
        self.injector.degrade_link(node, latency_add_ns=1_000.0,
                                   rate_factor=0.5, loss=0.05)
        self.degraded.add(node)

    @rule(node=st.integers(min_value=0, max_value=NUM_NODES - 1))
    def restore_link(self, node):
        if node not in self.degraded:
            return
        self.injector.restore_link(node)
        self.degraded.remove(node)

    # -- queries under chaos ----------------------------------------------
    @rule()
    def scan_fact(self):
        try:
            result, _ = self.cc.far_view(self.fact, self.fact_query)
        except FaultError:
            assert not self._fact_available(), \
                "scan failed although every shard had a usable copy"
        else:
            assert sha(result.data) == self.fact_sha, \
                "chaos scan returned wrong bytes"

    @rule()
    def read_fact_image(self):
        try:
            data, _ = self.cc.table_read(self.fact)
        except FaultError:
            assert not self._fact_available()
        else:
            assert sha(data) == self.image_sha, \
                "chaos raw read returned wrong bytes"

    @rule()
    def join_fact_dim(self):
        """The broadcast join additionally needs build replicas (pruned
        on crash, re-broadcast on recovery), so its availability is not
        the plain-scan oracle; bytes still must be exact, and with no
        fault history it must succeed."""
        try:
            result, _ = self.cc.far_view(self.fact, self.join_query)
        except FaultError:
            assert self.down or self.crashed_ever, \
                "join failed with no fault in the system"
        else:
            assert sha(result.data) == self.join_sha, \
                "chaos join returned wrong bytes"

    @rule()
    def colocated_join(self):
        """Both sides hash-partitioned on the join key: the planner runs
        shard-local with k=2 ring failover; success must be byte-exact
        and a failure typed."""
        try:
            result, _ = self.cc.far_view(self.hfact, self.colo_query)
        except FaultError:
            assert self.down or self.crashed_ever, \
                "co-located join failed with no fault in the system"
        else:
            assert result.join_strategy == "colocated"
            assert sha(result.data) == self.colo_sha, \
                "chaos co-located join returned wrong bytes"

    @rule()
    def shuffle_join(self):
        """The repartition shuffle under chaos: fragments lost to a
        crash are re-shuffled onto the survivors; success must be
        byte-exact (k=2 fragment ring) and a failure typed."""
        try:
            result, _ = self.cc.far_view(self.hfact, self.join_query,
                                         join_strategy="shuffle")
        except FaultError:
            assert self.down or self.crashed_ever, \
                "shuffle join failed with no fault in the system"
        else:
            assert result.join_strategy == "shuffle"
            assert sha(result.data) == self.shuffle_sha, \
                "chaos shuffle join returned wrong bytes"

    @rule(cut=st.integers(min_value=0, max_value=60),
          value=st.integers(min_value=-99, max_value=99))
    def versioned_update(self, cut, value):
        """Two-phase write: commits cluster-wide iff every node is up;
        a down node aborts the batch with epochs intact (the versioned
        shards are unreplicated, but their bytes survive recovery)."""
        epoch_before = self.vst.epoch
        try:
            epoch, _ = self.cc.update_where(self.vst,
                                            Compare("a", "<", cut),
                                            {"c": value})
        except FaultError:
            assert self.down, "write aborted with all nodes up"
            assert self.vst.epoch == epoch_before
        else:
            assert not self.down, "write committed despite a down node"
            assert epoch == epoch_before + 1
            self.model = self.model.copy()
            self.model["c"][self.model["a"] < cut] = value
            self.history[epoch] = self.schema.to_bytes(self.model)

    @rule(data=st.data())
    def versioned_scan_pinned_epoch(self, data):
        """Every successful snapshot scan must be sha256-identical to
        the quiesced serial replay at its pinned epoch."""
        epoch = data.draw(st.integers(0, self.vst.epoch))
        try:
            result, _ = self.cc.scan_versioned(self.vst, self.scan_query,
                                               as_of=epoch)
        except FaultError:
            assert self.down, "snapshot scan failed with all nodes up"
        else:
            assert sha(result.data) == sha(self.history[epoch]), \
                f"chaos snapshot at epoch {epoch} diverged from replay"

    @rule()
    def view_refresh(self):
        """Explicit view refresh under chaos: either the whole pending
        batch folds — the view, its subscriber, and the serial model at
        the processed epoch byte-identical — or a typed
        :class:`FaultError` leaves the view state, the subscriber, and
        the tracker pins untouched (no partial push)."""
        before_sha = self.view.sha256()
        before_steps = self.view.refresh_count
        before_pushed = self.view_sub.rows_pushed
        try:
            self.cc.refresh_views()
        except FaultError:
            assert self.down, "view refresh failed with all nodes up"
            assert self.view.sha256() == before_sha, \
                "failed refresh left partial view state"
            assert self.view.refresh_count == before_steps
            assert self.view_sub.rows_pushed == before_pushed, \
                "failed refresh pushed a partial update"
        else:
            expected = view_model_sha(self.schema,
                                      self.history[self.vst.epoch])
            assert self.view.sha256() == expected, \
                "chaos view refresh diverged from the serial model"
            assert self.view_sub.sha256() == expected, \
                "chaos subscriber diverged from the view"
            assert self.view_sub.digest() == self.view.digest()

    @rule(extra=st.integers(min_value=1, max_value=3), mid_crash=st.booleans())
    def lease_admission(self, extra, mid_crash):
        """Acquire/release/crash/recover interleavings vs the serial
        queue oracle: under FIFO, grant order *is* arrival order — even
        when the pool's only node crashes mid-storm and the parked
        waiters must survive until its recovery wakes them — and the
        books balance exactly once the storm drains."""
        mgr = self.lease_mgr
        if 0 in self.down:
            # The storm must eventually drain; bring the pool node up
            # (legitimate machine transition, mirrored in the fault sets).
            self.injector.recover(0)
            self.down.discard(0)
        tenants = self.cluster.node(0).free_regions + extra  # forces queueing
        depth_before = mgr.max_queue_depth
        grant_order: list[int] = []

        def tenant(tag):
            client = yield from mgr.acquire(tenant=tag)
            grant_order.append(tag)
            yield self.sim.timeout(20.0)
            mgr.release(client)

        def main():
            procs = [self.sim.process(tenant(i)) for i in range(tenants)]
            if mid_crash:
                # Crash while leases are held and waiters are parked;
                # recover after every holder has released into a dead
                # pool — only the recovery hook can wake the queue.
                yield self.sim.timeout(5.0)
                self.injector.crash(0)
                yield self.sim.timeout(30.0)
                self.injector.recover(0)
            yield self.sim.all_of(procs)

        self.sim.run_process(main())
        if mid_crash:
            self.crashed_ever.add(0)
        assert grant_order == list(range(tenants)), \
            "lease grants diverged from the serial FIFO oracle"
        assert mgr.queued == 0 and mgr.live_leases == 0
        assert mgr.max_queue_depth >= max(depth_before, extra), \
            "max_queue_depth must be monotone and count the parked storm"

    # -- invariants ---------------------------------------------------------
    @invariant()
    def epochs_never_split(self):
        assert all(s.table.epoch == self.vst.epoch
                   for s in self.vst.shards), \
            "cluster epochs split under chaos"

    @invariant()
    def lease_books_balance(self):
        """PR-10 accounting invariant: between rules the lease pool is
        quiesced, so live leases and the per-node balance agree exactly
        (crash-while-leased releases and raising bodies included)."""
        assert self.lease_mgr.live_leases == \
            sum(self.lease_mgr.leases_per_node)
        assert self.lease_mgr.queued == 0
        assert self.lease_mgr.max_queue_depth >= 0

    @invariant()
    def fault_state_is_consistent(self):
        for i, node in enumerate(self.cluster.nodes):
            assert node.failed == (i in self.down)
            assert node.link.degraded == (i in self.degraded)


ChaosMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None)
TestChaosMachine = ChaosMachine.TestCase
