"""User-facing docs stay in lock-step with the code.

Mirrors the CI ``docs`` job locally: the docs exist, every file they
reference resolves (``tools/check_docs.py``), and the CLI references that
used to dangle (``cli.py`` -> EXPERIMENTS.md) now hold.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_user_facing_docs_exist():
    for doc in ("README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md"):
        assert (REPO / doc).is_file(), f"{doc} missing"


def test_all_doc_references_resolve(capsys):
    check_docs = load_check_docs()
    assert check_docs.main() == 0, capsys.readouterr().err


def test_cli_experiments_reference_resolves():
    """cli.py points readers at EXPERIMENTS.md; it must exist and cover
    every experiment id the CLI exposes."""
    import repro.cli as cli

    assert "EXPERIMENTS.md" in (REPO / "src/repro/cli.py").read_text()
    text = (REPO / "EXPERIMENTS.md").read_text()
    for key in cli.EXPERIMENTS:
        assert key in text, f"EXPERIMENTS.md does not document {key!r}"


def test_readme_documents_tier1_and_bench_commands():
    text = (REPO / "README.md").read_text()
    assert "python -m pytest -x -q" in text
    assert "benchmarks/bench_perf.py" in text
    assert "python -m repro" in text
    assert "ROADMAP.md" in text
