"""Striped physical memory allocation (paper §4.4).

The MMU "allocat[es] memory in a striping pattern across all available
memory channels, thus maximizing the available bandwidth to each dynamic
region".  We model this as:

* virtual memory is allocated in naturally aligned 2 MB pages;
* each page is backed by one *slice* of ``page_size / channels`` bytes on
  **every** channel;
* consecutive 64-byte stripe units of the page rotate across channels:
  unit ``i`` lives on channel ``i % C`` at slice offset ``(i // C) * 64``.

Slices are managed with a simple free-list per channel (constant-time
allocate/free, no fragmentation because all slices are equal-sized).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import MemoryConfig
from ..common.errors import ConfigurationError, OutOfMemoryError


@dataclass(frozen=True)
class PageFrames:
    """Physical backing of one virtual page: one slice offset per channel."""

    slice_offsets: tuple[int, ...]  # byte offset of the slice in each channel


class StripedAllocator:
    """Allocates page-sized, channel-striped physical frames."""

    def __init__(self, config: MemoryConfig):
        if config.page_size % config.channels:
            raise ConfigurationError(
                f"page size {config.page_size} not divisible by "
                f"{config.channels} channels")
        self.config = config
        self.slice_size = config.page_size // config.channels
        if self.slice_size % config.stripe_unit:
            raise ConfigurationError(
                "page slice is not a whole number of stripe units")
        slices_per_channel = config.channel_capacity // self.slice_size
        if slices_per_channel == 0:
            raise ConfigurationError(
                f"channel capacity {config.channel_capacity} smaller than a "
                f"page slice {self.slice_size}")
        # All channels allocate the same slice index for a page, keeping the
        # stripe arithmetic uniform; one shared free list suffices.
        self._free_slices = list(range(slices_per_channel - 1, -1, -1))
        self._total_slices = slices_per_channel
        self.pages_allocated = 0

    @property
    def free_pages(self) -> int:
        return len(self._free_slices)

    @property
    def total_pages(self) -> int:
        return self._total_slices

    def allocate_page(self) -> PageFrames:
        """Reserve one page worth of physical memory across all channels."""
        if not self._free_slices:
            raise OutOfMemoryError(
                f"no free pages ({self._total_slices} total, all in use)")
        index = self._free_slices.pop()
        offset = index * self.slice_size
        self.pages_allocated += 1
        return PageFrames(tuple(offset for _ in range(self.config.channels)))

    def free_page(self, frames: PageFrames) -> None:
        """Return a page's frames to the free list."""
        offsets = set(frames.slice_offsets)
        if len(offsets) != 1:
            raise ConfigurationError(
                "uniform slice allocation invariant violated")
        index = frames.slice_offsets[0] // self.slice_size
        if index in self._free_slices:
            raise OutOfMemoryError(f"double free of page slice {index}")
        self._free_slices.append(index)
        self.pages_allocated -= 1

    # -- stripe arithmetic -----------------------------------------------------
    def locate(self, frames: PageFrames, page_offset: int) -> tuple[int, int]:
        """Map a byte offset within a page to (channel, channel_offset)."""
        unit = self.config.stripe_unit
        channels = self.config.channels
        unit_index = page_offset // unit
        within = page_offset % unit
        channel = unit_index % channels
        channel_offset = (frames.slice_offsets[channel]
                          + (unit_index // channels) * unit + within)
        return channel, channel_offset

    def channel_extent(self, length: int) -> int:
        """Bytes a ``length``-byte striped access moves per channel (max)."""
        unit = self.config.stripe_unit
        channels = self.config.channels
        units = (length + unit - 1) // unit
        return ((units + channels - 1) // channels) * unit
