"""Synthetic workload generation for the evaluation experiments (§6).

Every generator is seeded and returns plain structured arrays plus the
query ingredients (predicates with calibrated selectivity, group keys with
controlled cardinality, string corpora with controlled match rate), so the
experiments are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import QueryError
from ..common.records import Schema, default_schema, string_schema, wide_schema
from ..operators.selection import And, Compare, Predicate

DEFAULT_SEED = 0x5EED


@dataclass
class SelectionWorkload:
    """A table plus a two-column predicate with known selectivity (§6.4)."""

    schema: Schema
    rows: np.ndarray
    predicate: Predicate
    target_selectivity: float

    @property
    def actual_selectivity(self) -> float:
        mask = self.predicate.evaluate(self.rows)
        return float(mask.mean()) if len(self.rows) else 0.0


def make_rows(schema: Schema, num_rows: int,
              seed: int = DEFAULT_SEED) -> np.ndarray:
    """Random rows for any fixed-width schema."""
    if num_rows < 0:
        raise QueryError(f"negative row count: {num_rows}")
    rng = np.random.default_rng(seed)
    rows = schema.empty(num_rows)
    for col in schema.columns:
        if col.kind == "int64":
            rows[col.name] = rng.integers(0, 2**31, num_rows, dtype=np.int64)
        elif col.kind == "uint64":
            rows[col.name] = rng.integers(0, 2**32, num_rows, dtype=np.uint64)
        elif col.kind == "float64":
            rows[col.name] = rng.random(num_rows)
        else:  # char
            alphabet = np.frombuffer(
                b"abcdefghijklmnopqrstuvwxyz0123456789 ", dtype=np.uint8)
            idx = rng.integers(0, len(alphabet), (num_rows, col.width))
            rows[col.name] = [alphabet[i].tobytes() for i in idx]
    return rows


def selection_workload(num_rows: int, selectivity: float,
                       seed: int = DEFAULT_SEED) -> SelectionWorkload:
    """The Figure 8 workload: ``SELECT * FROM S WHERE S.a < X AND S.b < Y``.

    Columns ``a`` (int) and ``b`` (float) are independent uniforms, so the
    conjunctive selectivity factors as sqrt(s) * sqrt(s).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise QueryError(f"selectivity out of [0, 1]: {selectivity}")
    schema = default_schema()
    rows = make_rows(schema, num_rows, seed)
    per_column = float(np.sqrt(selectivity))
    x = int(per_column * 2**31)
    y = per_column
    if selectivity >= 1.0:
        x, y = 2**31, 2.0  # strictly above every generated value
    predicate = And(Compare("a", "<", x), Compare("b", "<", y))
    return SelectionWorkload(schema, rows, predicate, selectivity)


def distinct_workload(num_rows: int, num_distinct: int,
                      seed: int = DEFAULT_SEED) -> tuple[Schema, np.ndarray]:
    """Figure 9(a): column ``a`` carries ``num_distinct`` distinct values.

    ``num_distinct == num_rows`` reproduces the paper's all-distinct case.
    """
    if num_distinct <= 0 or num_distinct > max(num_rows, 1):
        raise QueryError(
            f"num_distinct {num_distinct} out of [1, {num_rows}]")
    schema = default_schema()
    rows = make_rows(schema, num_rows, seed)
    rng = np.random.default_rng(seed + 1)
    if num_rows:
        values = np.arange(num_distinct, dtype=np.int64)
        assignment = np.concatenate([
            values,  # every distinct value appears at least once
            rng.choice(values, num_rows - num_distinct),
        ]) if num_rows >= num_distinct else rng.choice(values, num_rows)
        rng.shuffle(assignment)
        rows["a"] = assignment
    return schema, rows


def groupby_workload(num_rows: int, num_groups: int,
                     seed: int = DEFAULT_SEED) -> tuple[Schema, np.ndarray]:
    """Figure 9(b,c): ``a`` holds group keys, ``b`` the summed values."""
    schema, rows = distinct_workload(num_rows, num_groups, seed)
    rng = np.random.default_rng(seed + 2)
    if num_rows:
        rows["b"] = rng.random(num_rows) * 100.0
    return schema, rows


def projection_workload(num_rows: int, tuple_bytes: int,
                        seed: int = DEFAULT_SEED) -> tuple[Schema, np.ndarray]:
    """Figure 7: wide tuples of ``tuple_bytes`` with 8-byte int columns."""
    schema = wide_schema(tuple_bytes)
    return schema, make_rows(schema, num_rows, seed)


def open_loop_arrivals(num_streams: int, mean_gap_ns: float,
                       horizon_ns: float,
                       seed: int = DEFAULT_SEED) -> list[list[float]]:
    """Seeded open-loop arrival schedules: one Poisson stream per tenant.

    Each stream's first arrival is uniform in ``[0, horizon_ns)`` (so
    every tenant submits at least once and the fleet does not stampede at
    t=0) and subsequent gaps are exponential with mean ``mean_gap_ns``,
    truncated at the horizon.  Open loop: arrival times are fixed up
    front — load keeps arriving at the offered rate regardless of how
    fast earlier requests complete, which is what makes saturation
    measurable.  Same arguments → the same schedule, arrival for arrival.
    """
    if num_streams < 0:
        raise QueryError(f"negative stream count: {num_streams}")
    if mean_gap_ns <= 0 or horizon_ns <= 0:
        raise QueryError(
            f"mean gap and horizon must be positive: "
            f"{mean_gap_ns}, {horizon_ns}")
    rng = np.random.default_rng(seed)
    schedules: list[list[float]] = []
    for _ in range(num_streams):
        at = float(rng.uniform(0.0, horizon_ns))
        times = [at]
        while True:
            at += float(rng.exponential(mean_gap_ns))
            if at >= horizon_ns:
                break
            times.append(at)
        schedules.append(times)
    return schedules


#: Substring embedded in matching strings of the regex workload.
REGEX_NEEDLE = "farview"
#: Pattern used by the Figure 10 experiment (matches the needle).
REGEX_PATTERN = "far(view|sight)"


def string_workload(num_rows: int, string_bytes: int,
                    match_fraction: float = 0.5,
                    seed: int = DEFAULT_SEED) -> tuple[Schema, np.ndarray]:
    """Figure 10: fixed-width strings where ``match_fraction`` of the rows
    contain the needle that :data:`REGEX_PATTERN` matches."""
    if not 0.0 <= match_fraction <= 1.0:
        raise QueryError(f"match fraction out of [0, 1]: {match_fraction}")
    if string_bytes < len(REGEX_NEEDLE) + 2:
        raise QueryError(
            f"string_bytes {string_bytes} too small for the needle")
    schema = string_schema(string_bytes)
    rows = schema.empty(num_rows)
    rows["id"] = np.arange(num_rows)
    rng = np.random.default_rng(seed)
    alphabet = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz0123456789", dtype=np.uint8)
    # 'f' never appears in filler so non-needle rows cannot match by chance.
    filler = alphabet[alphabet != ord("f")]
    should_match = rng.random(num_rows) < match_fraction
    for i in range(num_rows):
        body = filler[rng.integers(0, len(filler), string_bytes)].tobytes()
        if should_match[i]:
            pos = int(rng.integers(0, string_bytes - len(REGEX_NEEDLE)))
            body = (body[:pos] + REGEX_NEEDLE.encode()
                    + body[pos + len(REGEX_NEEDLE):])
        rows["s"][i] = body[:string_bytes]
    return schema, rows
