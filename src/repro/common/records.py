"""Fixed-width row encoding: schemas, tuples, and byte serialization.

The paper stores base tables in **row format** (§5, footnote 1) with
fixed-length attributes; the default evaluation table has 8 attributes of
8 bytes each (§6.2).  This module provides:

* :class:`Column` / :class:`Schema` — column metadata with byte offsets,
* conversion between numpy structured arrays and the flat byte image that
  lives in simulated DRAM,
* helpers used by the projection operator (column byte ranges) and by the
  packing unit (packed output schemas).

Data always round-trips bytes -> array -> bytes exactly, which the tests
and the smart-addressing path rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .errors import QueryError

#: Supported fixed-width column kinds and their numpy dtypes.
_KIND_DTYPES = {
    "int64": np.dtype("<i8"),
    "uint64": np.dtype("<u8"),
    "float64": np.dtype("<f8"),
}


@dataclass(frozen=True)
class Column:
    """A fixed-width column.

    ``kind`` is one of ``int64``, ``uint64``, ``float64`` or ``char`` (a
    fixed-length byte string whose width is given by ``width``).
    """

    name: str
    kind: str
    width: int = 8

    def __post_init__(self) -> None:
        if self.kind in _KIND_DTYPES:
            expected = _KIND_DTYPES[self.kind].itemsize
            if self.width != expected:
                raise QueryError(
                    f"column {self.name!r}: kind {self.kind} is {expected} bytes, "
                    f"got width {self.width}")
        elif self.kind == "char":
            if self.width <= 0:
                raise QueryError(f"column {self.name!r}: char width must be > 0")
        else:
            raise QueryError(f"column {self.name!r}: unknown kind {self.kind!r}")

    @property
    def dtype(self) -> np.dtype:
        if self.kind == "char":
            return np.dtype(f"S{self.width}")
        return _KIND_DTYPES[self.kind]


class Schema:
    """An ordered collection of fixed-width columns.

    The row width is the sum of column widths (no padding — the FPGA parses
    the stream with byte-exact offsets, §5.2).
    """

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise QueryError("schema must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate column names in schema: {names}")
        self._columns = tuple(columns)
        self._offsets: dict[str, int] = {}
        off = 0
        for col in self._columns:
            self._offsets[col.name] = off
            off += col.width
        self._row_width = off
        self._dtype = np.dtype({
            "names": names,
            "formats": [c.dtype for c in self._columns],
            "offsets": [self._offsets[n] for n in names],
            "itemsize": self._row_width,
        })

    # -- basic introspection -------------------------------------------------
    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def row_width(self) -> int:
        return self._row_width

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.kind}({c.width})" for c in self._columns)
        return f"Schema({cols})"

    def column(self, name: str) -> Column:
        for col in self._columns:
            if col.name == name:
                return col
        raise QueryError(f"unknown column {name!r}; schema has {self.names}")

    def offset(self, name: str) -> int:
        if name not in self._offsets:
            raise QueryError(f"unknown column {name!r}; schema has {self.names}")
        return self._offsets[name]

    def byte_range(self, name: str) -> tuple[int, int]:
        """(offset, width) of a column within a row — used by smart addressing."""
        col = self.column(name)
        return self._offsets[name], col.width

    def index(self, name: str) -> int:
        for i, col in enumerate(self._columns):
            if col.name == name:
                return i
        raise QueryError(f"unknown column {name!r}; schema has {self.names}")

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.column(n) for n in names])

    # -- (de)serialization ----------------------------------------------------
    def to_bytes(self, rows: np.ndarray) -> bytes:
        """Serialize a structured array of this schema into a flat byte image."""
        arr = np.ascontiguousarray(rows.astype(self._dtype, copy=False))
        return arr.tobytes()

    def from_bytes(self, data: bytes | bytearray | memoryview,
                   copy: bool = False) -> np.ndarray:
        """View a flat byte image as a structured array — zero-copy.

        The returned array is a **read-only view** over ``data``: no bytes
        are duplicated, which keeps megabyte-scale burst parsing at memory
        bandwidth.  Writable input buffers are wrapped read-only first, so
        the view can never alias a mutable buffer.  Pass ``copy=True`` at
        mutation boundaries (e.g. group-by build sides) to get a writable,
        owned array instead.
        """
        mv = memoryview(data)
        if not mv.readonly:
            mv = mv.toreadonly()
        if mv.nbytes % self._row_width:
            raise QueryError(
                f"byte image of {mv.nbytes} bytes is not a multiple of the "
                f"row width {self._row_width}")
        arr = np.frombuffer(mv, dtype=self._dtype)
        return arr.copy() if copy else arr

    def empty(self, nrows: int = 0) -> np.ndarray:
        """An empty (zeroed) structured array with this schema."""
        return np.zeros(nrows, dtype=self._dtype)


def default_schema(num_attributes: int = 8, attr_bytes: int = 8) -> Schema:
    """The paper's default evaluation schema: 8 attributes x 8 bytes (§6.2).

    Columns are named ``a``, ``b``, ``c``, ... and typed ``int64`` except the
    second column, which is ``float64`` so float-predicate queries (§4.2's
    ``select`` example) have a natural target.
    """
    if num_attributes <= 0:
        raise QueryError("num_attributes must be > 0")
    if attr_bytes != 8:
        # Non-8-byte attributes are modelled as fixed char columns.
        cols = [Column(_attr_name(i), "char", attr_bytes)
                for i in range(num_attributes)]
        return Schema(cols)
    cols = []
    for i in range(num_attributes):
        kind = "float64" if i == 1 else "int64"
        cols.append(Column(_attr_name(i), kind, 8))
    return Schema(cols)


def wide_schema(total_width: int, attr_bytes: int = 8) -> Schema:
    """A wide row of ``total_width`` bytes split into ``attr_bytes`` columns.

    Used by the Figure 7 projection experiment (256 B and 512 B tuples).
    """
    if total_width % attr_bytes:
        raise QueryError("total_width must be a multiple of attr_bytes")
    n = total_width // attr_bytes
    cols = [Column(_attr_name(i), "int64" if attr_bytes == 8 else "char", attr_bytes)
            for i in range(n)]
    return Schema(cols)


def string_schema(string_bytes: int, key_bytes: int = 8) -> Schema:
    """Schema for the regex workload: an id column plus a fixed char payload.

    The id column is ``int64`` for the natural 8-byte case and a fixed char
    column of ``key_bytes`` otherwise.
    """
    id_col = (Column("id", "int64", 8) if key_bytes == 8
              else Column("id", "char", key_bytes))
    return Schema([id_col, Column("s", "char", string_bytes)])


def _attr_name(i: int) -> str:
    """a, b, ..., z, a1, b1, ... — readable names for generated columns."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    suffix = i // len(letters)
    return letters[i % len(letters)] + (str(suffix) if suffix else "")
