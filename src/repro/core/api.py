"""Client-side data API, mirroring the paper's programmatic interface (§4.2).

The paper's C-style functions map onto :class:`FarviewClient` methods:

====================================  =======================================
Paper                                 This library
====================================  =======================================
``openConnection(qp, node)``          ``client = FarviewClient(node)`` /
                                      ``client.open_connection()``
``allocTableMem(qp, ft)``             ``client.alloc_table_mem(ft)``
``freeTableMem(qp, ft)``              ``client.free_table_mem(ft)``
``tableWrite(qp, ft)``                ``client.table_write(ft, rows)``
``tableRead(qp, ft)``                 ``client.table_read(ft)``
``farView(qp, ft, params)``           ``client.far_view(ft, query)``
``select(qp, ft, proj, sel, pred)``   ``client.select(ft, columns, predicate)``
====================================  =======================================

Each verb exists in two forms: a ``*_proc`` generator to compose inside a
running simulation (multi-client experiments) and a blocking convenience
that drives the simulator to completion and returns ``(result, elapsed_ns)``
— the paper's measurement endpoint is "until the final results are written
to the memory of the client machine" (§6.2), which is exactly when these
processes complete.

:class:`ClusterClient` lifts the same verbs onto a sharded
:class:`~repro.core.cluster.FarviewCluster` — the scatter-gather router the
paper's pool deployment implies.  Single-node verbs map onto cluster verbs
one to one:

====================================  =======================================
Single node (:class:`FarviewClient`)  Cluster (:class:`ClusterClient`)
====================================  =======================================
``open_connection()``                 ``open_connection()`` — one QP + region
                                      per node of the pool
``alloc_table_mem`` + ``table_write``  ``create_table(name, schema, rows,
                                      partition)`` — partition, allocate and
                                      scatter-write the per-node shards
``free_table_mem(ft)``                ``drop_table(st)``
``table_read(ft)``                    ``table_read(st)`` — scatter raw reads,
                                      gather bytes in shard order
``far_view(ft, query)``               ``far_view(st, query)`` — scatter the
                                      rewritten shard fragment, gather +
                                      merge (DISTINCT dedup, GROUP BY /
                                      aggregate partial re-merge); a join
                                      broadcasts the build table to every
                                      node first (replicas cached until
                                      the build table is dropped)
``select`` / ``select_distinct`` /    same helpers, same signatures, against
``group_by`` / ``sql``                the cluster catalog
====================================  =======================================

Cluster results come back as :class:`ClusterQueryResult`: merged rows in
single-node output order (byte-identical under order-preserving ``chunk``
partitioning — see :mod:`repro.core.cluster` for the exact contract),
response time measured until the *last* shard's results land client-side.

Beyond the paper's always-offload execution, both clients expose
cost-based **operator placement**: ``select``/``sql`` accept
``placement="auto" | "offload" | "ship"`` (default ``"offload"``, the
unchanged legacy path), and :meth:`FarviewClient.far_view_planned` /
:meth:`ClusterClient.far_view_planned` run any query under the
:mod:`repro.core.planner` decision — offload a prefix of the operator
chain, ship the reduced intermediate, finish with the software kernels of
:mod:`repro.baselines.sw_ops` on the client.  Results are byte-identical
across placements (:func:`canonical_result_bytes` normalizes the
comparison) and carry an :class:`~repro.core.planner.ExplainPlan`.

Tables created with ``create_versioned_table`` are **mutable** through
the versioned write path (:mod:`repro.core.versioning`); the write verbs
exist on both clients with the same shapes as the read verbs:

====================================  =======================================
Verb                                  Effect
====================================  =======================================
``create_versioned_table(n, s, r)``   base segment + version chain, epoch 0
``insert(vt, rows)``                  append an insert delta, epoch + 1
``update_where(vt, pred, sets)``      offloaded read-modify-write delta
``delete_where(vt, pred)``            offloaded delete delta
``snapshot(vt)``                      the current committed epoch
``far_view(vt, q)`` / ``select`` /    snapshot scan pinned at the epoch it
``sql`` / ``scan_versioned(as_of=e)`` starts under (delta-merge ingest)
``compact(vt)``                       fold the chain into a fresh base
``drop_table(t)``                     free a plain table or a whole chain
====================================  =======================================

Cluster writes commit through a two-phase epoch broadcast (prepare on
every shard, then one atomic commit step), so cluster-wide snapshot
reads merge sha256-identical to single-node execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from ..baselines.cpu_model import CostBreakdown, CpuCostModel
from ..baselines.sw_ops import software_decrypt
from ..common.errors import (ConnectionError_, DegradedResultError,
                             FarviewError, FaultError,
                             JoinBuildOverflowError, NodeFailedError,
                             QueryError, RegionFailedError,
                             RequestTimeoutError)
from ..common.records import Schema
from ..operators.aggregate import AggregateSpec
from ..operators.crypto import AesCtr
from ..operators.selection import Predicate
from .catalog import Catalog
from .compile import ParsedWrite, bind_select, parse_sql
from .cost_model import (PlacementCostModel, PlanStats, delta_merge_cost_ns,
                         estimate_chain, view_circuit_cost_ns)
from .planner import (ExplainPlan, PlacementPlan, operator_chain,
                      plan_placement, run_client_steps)
from .cluster import (JOIN_STRATEGIES, FarviewCluster, ScatterPlan,
                      ShardedTable, ShardReplica, TableShard,
                      aggregate_output_schema, group_output_schema,
                      join_strategies, merge_aggregate_rows,
                      merge_distinct_rows, merge_group_rows, plan_scatter)
from .faults import RetryPolicy
from .node import Connection, ExecutionReport, FarviewNode
from .partition import PartitionSpec, partition_indices, replica_nodes
from .pipeline_compiler import CompiledQuery, compile_query
from .query import Query, RegexFilter
from .table import FTable
from .versioning import (ROWID_COLUMN, VersionedShard, VersionedShardedTable,
                         VersionedTable, VersionView, delta_schema,
                         require_versionable, rows_from_literals)
from .views import (ChainTracker, MaterializedView, Subscription, ViewCatalog,
                    compile_circuit)
from .zset import ZSet


@dataclass
class QueryResult:
    """Client-visible result of one Farview-verb execution."""

    data: bytes
    schema: Schema
    report: ExecutionReport
    response_time_ns: float
    output_key: Optional[tuple[bytes, bytes]] = None  # (key, nonce) if encrypted
    explain: Optional[ExplainPlan] = None  # set by the placement planner
    _client_dedup_applied: bool = field(default=False, repr=False)

    def raw_rows(self) -> np.ndarray:
        """Decode the shipped bytes (decrypting the transmission first)."""
        data = self.data
        if self.output_key is not None:
            key, nonce = self.output_key
            data = AesCtr(key, nonce).process(data)
        return self.schema.from_bytes(data)

    def rows(self) -> np.ndarray:
        """Rows after the client-side software post-processing the paper
        prescribes: deduplicate overflow leakage from the DISTINCT operator
        (§5.4) and merge overflowed GROUP BY partial aggregates."""
        rows = self.raw_rows()
        if self.report.overflow_keys:
            rows = _software_dedup(rows)
        if self.report.overflow_groups:
            rows = _merge_overflow_groups(rows, self.schema, self.report)
        return rows

    @property
    def num_rows(self) -> int:
        return len(self.rows())


def _software_dedup(rows: np.ndarray) -> np.ndarray:
    """Order-preserving exact dedup (the paper's client-side fallback)."""
    seen: set[bytes] = set()
    keep = np.zeros(len(rows), dtype=bool)
    for i in range(len(rows)):
        key = rows[i].tobytes()
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return rows[keep]


def _merge_overflow_groups(rows: np.ndarray, schema: Schema,
                           report: ExecutionReport) -> np.ndarray:
    """Append overflowed groups (partially aggregated server-side)."""
    if not report.overflow_groups:
        return rows
    # The overflow accumulators carry the same spec list as the pipeline's
    # group-by; the report stores (key_bytes -> Accumulator).  Key layout is
    # the group-key schema prefix of the output schema.
    extra = schema.empty(len(report.overflow_groups))
    agg_names = [n for n in schema.names]
    # Group keys occupy the leading columns; remaining are aggregates.
    meta = report.overflow_groups.get("__meta__")
    items = [(k, v) for k, v in report.overflow_groups.items()
             if k != "__meta__"]
    if meta is None:
        raise QueryError(
            "overflow groups present but merge metadata missing")
    key_columns, specs, value_columns = meta
    key_schema = schema.project(key_columns)
    for i, (key_bytes, acc) in enumerate(items):
        key_row = key_schema.from_bytes(key_bytes)
        for name in key_columns:
            extra[name][i] = key_row[name][0]
        for spec in specs:
            idx = (value_columns.index(spec.column)
                   if spec.column in value_columns else 0)
            extra[spec.alias][i] = acc.result(spec, idx)
    del agg_names
    return np.concatenate([rows, extra])


@dataclass
class HybridQueryResult:
    """Client-visible result of a planned (ship or hybrid) execution.

    ``rows()`` are the final rows after the client-side software
    remainder; ``data`` is their canonical byte image — byte-identical
    to what full offload produces for the same query (the planner's
    exactness contract, pinned by the placement property tests).
    ``response_time_ns`` covers the simulated verb *plus* the modeled
    client compute time (the simulator clock is advanced by the
    :class:`~repro.baselines.cpu_model.CostBreakdown` total, matching
    the paper's "until the final results are written to the memory of
    the client machine" endpoint).
    """

    schema: Schema
    merged: np.ndarray = field(repr=False)
    response_time_ns: float = 0.0
    explain: Optional[ExplainPlan] = None
    #: The offloaded fragment's result, when a hybrid split ran one — a
    #: :class:`QueryResult` (single node) or :class:`ClusterQueryResult`
    #: (scatter-gather); ``None`` for pure ship executions.
    fragment_result: Optional[object] = None
    client_cost: Optional[CostBreakdown] = None
    shipped_bytes: int = 0

    def rows(self) -> np.ndarray:
        return self.merged

    @property
    def data(self) -> bytes:
        """Canonical result bytes (single-node offload layout)."""
        return self.schema.to_bytes(self.merged)

    @property
    def num_rows(self) -> int:
        return len(self.merged)


def _client_compute(sim, ns: float):
    """Process: occupy the simulated clock with client-side software."""
    if ns > 0:
        yield sim.timeout(ns)


def _execute_planned(sim, plan: PlacementPlan, query: Query,
                     cpu: CpuCostModel, *, read_raw, run_fragment,
                     schema: Schema,
                     decrypt_keys: Optional[tuple[bytes, bytes]],
                     read_build=None):
    """Shared ship/hybrid execution body for both clients.

    ``read_raw()`` returns the raw table bytes (single-node read or
    scatter-gathered shard streams); ``run_fragment(fragment)`` returns
    the offloaded fragment's result object; ``read_build()`` (required
    when the plan ships the join) returns the build table's decoded rows
    plus the bytes that crossed the wire for them.  The software
    remainder runs through :func:`~repro.core.planner.run_client_steps`,
    its :class:`CostBreakdown` time advances the simulator clock, and the
    plan's explain is stamped with the actual response time.
    """
    start = sim.now
    cost = CostBreakdown()
    cost.add("setup", cpu.setup_ns())
    client_steps = list(plan.client_steps)
    build_rows = None
    if "join" in client_steps:
        if read_build is None:
            raise QueryError(
                "this client cannot ship a join: no build-side reader")
        build_rows, build_shipped = read_build()
        cost.add("read", cpu.read_ns(build_shipped))
    if plan.fragment is None:
        data = read_raw()
        shipped = len(data)
        cost.add("read", cpu.read_ns(shipped))
        if client_steps and client_steps[0] == "decrypt":
            if decrypt_keys is None:
                raise QueryError(
                    "cannot decrypt shipped bytes client-side: no table "
                    "key available (encrypted tables are single-node "
                    "only)")
            key, nonce = decrypt_keys
            data = software_decrypt(data, key, nonce)
            cost.add("aes", cpu.aes_ns(len(data)))
            client_steps = client_steps[1:]
        rows = schema.from_bytes(data)
        current = schema
        fragment_result = None
    else:
        fragment_result = run_fragment(plan.fragment)
        rows = fragment_result.rows()
        current = fragment_result.schema
        shipped = (fragment_result.report.bytes_shipped
                   if hasattr(fragment_result, "report")
                   else fragment_result.bytes_shipped)
        cost.add("read", cpu.read_ns(shipped))
    rows, current = run_client_steps(rows, current, client_steps,
                                     query, cpu, cost,
                                     build_rows=build_rows)
    cost.add("write", cpu.write_ns(len(rows) * current.row_width))
    sim.run_process(_client_compute(sim, cost.total_ns), "client-compute")
    elapsed = sim.now - start
    plan.explain.actual_ns = elapsed
    result = HybridQueryResult(
        schema=current, merged=rows, response_time_ns=elapsed,
        explain=plan.explain, fragment_result=fragment_result,
        client_cost=cost, shipped_bytes=shipped)
    return result, elapsed


def _dispatch_sql_write(client, table, parsed, required_type):
    """Shared INSERT/UPDATE/DELETE dispatch for both clients.

    ``required_type`` is the client's versioned-table class; anything
    else in the catalog under that name cannot take writes.
    """
    if not isinstance(table, required_type):
        raise QueryError(
            f"table {parsed.table!r} is not versioned; write statements "
            f"need a table created with create_versioned_table")
    if parsed.kind == "insert":
        rows = rows_from_literals(table.schema, parsed.values)
        return client.insert(table, rows)
    if parsed.kind == "update":
        return client.update_where(table, parsed.predicate,
                                   dict(parsed.assignments))
    return client.delete_where(table, parsed.predicate)


def canonical_result_bytes(result) -> bytes:
    """The placement-invariant byte image of any query result.

    ``QueryResult.data`` is the raw shipped stream (possibly encrypted,
    possibly carrying overflow duplicates the client dedups);
    ``HybridQueryResult.data`` is already canonical.  This helper
    normalizes both to ``schema.to_bytes(rows())`` so results can be
    compared across placements.
    """
    rows = result.rows()
    return result.schema.to_bytes(rows)


@dataclass
class CompiledQueryResult:
    """Result of a compiled (extended) SQL statement.

    Mirrors :class:`HybridQueryResult`: ``rows()``/``data`` are the
    final canonical rows after every stage of the lowered DAG (head
    scan, join arms, client kernels); ``explain`` is the per-stage
    :class:`~repro.core.planner.DagPlan`; ``response_time_ns`` includes
    the modeled client compute time.
    """

    schema: Schema
    merged: np.ndarray = field(repr=False)
    response_time_ns: float = 0.0
    explain: Optional[object] = None            # DagPlan
    client_cost: Optional[CostBreakdown] = None
    #: Bytes that crossed the wire to the client, summed over every
    #: stage (head scan, build reads) — the compiled analogue of
    #: :attr:`HybridQueryResult.shipped_bytes`.
    shipped_bytes: int = 0

    def rows(self) -> np.ndarray:
        return self.merged

    @property
    def data(self) -> bytes:
        """Canonical result bytes (single-node offload layout)."""
        return self.schema.to_bytes(self.merged)

    @property
    def num_rows(self) -> int:
        return len(self.merged)


def _run_stage(client, handle, query: Query, placement: str,
               stats, dag, name: str):
    """Execute one offloadable stage of a compiled DAG and record its
    placement decision.  ``placement="offload"`` pins the legacy path;
    ship/auto price the stage independently through the planner — the
    per-stage composition IS the DAG generalization of
    :func:`~repro.core.planner.plan_placement`."""
    from .planner import StagePlan

    if placement == "offload":
        result, _ = client.far_view(handle, query)
        note = "pinned"
        strat = getattr(result, "join_strategy", None)
        if strat is not None:
            note = f"pinned, join={strat}"
        dag.stages.append(StagePlan(name, "offload", note=note))
        return result
    result, _ = client.far_view_planned(handle, query, placement, stats)
    explain = getattr(result, "explain", None)
    chosen = explain.chosen if explain is not None else placement
    strat = (explain.join_strategy if explain is not None else None) \
        or getattr(result, "join_strategy", None)
    dag.stages.append(StagePlan(name, chosen, explain=explain,
                                note=f"join={strat}" if strat else ""))
    return result


def _execute_compiled(client, parsed, placement: str, stats):
    """Execute an extended (compiled) SELECT on either client.

    Stage 0 runs the head :class:`~repro.core.query.Query`; each
    :class:`~repro.core.compile.BoundArm` reads its build side (raw, or
    through its own placed Query) and joins client-side; the remaining
    bound kernels (expression projection, aggregation, HAVING filter,
    DISTINCT, ORDER BY, LIMIT) run in client software with their
    modeled cost advancing the simulator clock — the same measurement
    endpoint as :func:`_execute_planned`.
    """
    from ..baselines.sw_ops import (software_aggregate, software_distinct,
                                    software_groupby, software_join,
                                    software_limit, software_select,
                                    software_sort)
    from ..operators.join import join_output_schema
    from .compile import (BoundAggregate, BoundDistinct, BoundEval,
                          BoundFilter, BoundLimit, BoundSort, bind_select)
    from .cost_model import HASHMAP_GROWTH_THRESHOLD
    from .ir import eval_expr
    from .planner import DagPlan, StagePlan

    def stage_shipped(stage_result) -> int:
        report = getattr(stage_result, "report", None)
        if report is not None:
            return report.bytes_shipped
        return getattr(stage_result, "shipped_bytes",
                       getattr(stage_result, "bytes_shipped", 0))

    bound = bind_select(parsed, client.catalog)
    cpu = getattr(client, "_cpu", None) or client._clients[0]._cpu
    sim = client.sim
    start = sim.now
    cost = CostBreakdown()
    cost.add("setup", cpu.setup_ns())
    dag = DagPlan(requested=placement)

    result = _run_stage(client, bound.base, bound.query, placement, stats,
                        dag, "scan")
    rows = result.rows()
    schema = result.schema
    shipped_total = stage_shipped(result)

    for arm in bound.arms:
        stage_name = f"build({arm.table})"
        if arm.query is None:
            build_rows, shipped = client._read_build_rows(arm.build)
            build_schema = arm.build.schema
            cost.add("read", cpu.read_ns(shipped))
            shipped_total += shipped
            dag.stages.append(StagePlan(stage_name, "ship",
                                        note="raw build read"))
        else:
            build_result = _run_stage(client, arm.build, arm.query,
                                      placement, stats, dag, stage_name)
            build_rows = build_result.rows()
            build_schema = build_result.schema
            shipped_total += stage_shipped(build_result)
        cost.add("hash", cpu.hash_ns(
            len(build_rows),
            growing=len(build_rows) > HASHMAP_GROWTH_THRESHOLD))
        cost.add("hash", cpu.hash_ns(len(rows), growing=False))
        rows = software_join(rows, schema, build_rows, build_schema,
                             arm.build_key, arm.probe_key,
                             list(arm.payload))
        schema = join_output_schema(schema, build_schema,
                                    list(arm.payload))

    for op in bound.ops:
        if isinstance(op, BoundEval):
            cost.add("project", cpu.select_ns(len(rows)))
            out = op.schema.empty(len(rows))
            for expr, name in op.items:
                out[name] = eval_expr(expr, rows, schema)
            rows, schema = out, op.schema
        elif isinstance(op, BoundFilter):
            cost.add("predicate", cpu.select_ns(len(rows)))
            rows = software_select(rows, op.predicate)
        elif isinstance(op, BoundAggregate):
            if op.group_by:
                output = software_groupby(rows, schema, list(op.group_by),
                                          list(op.aggregates))
                cost.add("hash", cpu.hash_ns(
                    len(rows), growing=output.map_resizes > 0))
                cost.add("aggregate", cpu.aggregate_update_ns(len(rows)))
                rows = output.rows
                schema = group_output_schema(schema, list(op.group_by),
                                             list(op.aggregates))
            else:
                cost.add("aggregate", cpu.aggregate_update_ns(len(rows)))
                rows = software_aggregate(rows, schema,
                                          list(op.aggregates))
                schema = aggregate_output_schema(schema,
                                                 list(op.aggregates))
        elif isinstance(op, BoundDistinct):
            output = software_distinct(rows, schema, list(schema.names))
            cost.add("hash", cpu.hash_ns(len(rows),
                                         growing=output.map_resizes > 0))
            rows = output.rows
        elif isinstance(op, BoundSort):
            cost.add("sort", cpu.sort_ns(len(rows)))
            rows = software_sort(rows, list(op.keys))
        elif isinstance(op, BoundLimit):
            rows = software_limit(rows, op.count)
        else:
            raise QueryError(f"unknown bound operator {type(op).__name__}")

    cost.add("write", cpu.write_ns(len(rows) * schema.row_width))
    sim.run_process(_client_compute(sim, cost.total_ns), "client-compute")
    elapsed = sim.now - start
    dag.actual_ns = elapsed
    compiled = CompiledQueryResult(schema=schema, merged=rows,
                                   response_time_ns=elapsed, explain=dag,
                                   client_cost=cost,
                                   shipped_bytes=shipped_total)
    return compiled, elapsed


class _ViewEngineMixin:
    """Shared view-maintenance verbs of both clients (docs/VIEWS.md).

    The mixin owns the sim-facing half of the view subsystem: it reads
    the committed delta segments over the wire, charges the circuit's
    client-side cost, and only then hands the fetched bytes to the
    yield-free :meth:`~repro.core.views.ViewCatalog.apply_refresh` fold.
    Because every read happens before any state mutation, a typed
    :class:`FaultError` mid-refresh surfaces with *no* partial push: the
    segments stay pending, the pins stay put, and the next refresh (or a
    :meth:`rebootstrap_view`) picks up from the last consistent epoch.

    Concrete clients provide four hooks: :meth:`_view_chains` (the
    per-node version chains behind a catalog handle, paired with the
    client that reads them), :meth:`_view_static_read_proc` (raw bytes
    of a static join build side), :meth:`_view_cpu` and
    :meth:`_view_run`.
    """

    views: ViewCatalog

    # -- hooks supplied by the concrete client -----------------------------
    def _view_chains(self, handle):
        raise NotImplementedError

    def _view_static_read_proc(self, handle):
        raise NotImplementedError

    def _view_cpu(self) -> CpuCostModel:
        raise NotImplementedError

    def _view_run(self, proc, name: str):
        raise NotImplementedError

    # -- registration -------------------------------------------------------
    def create_view_proc(self, sql: str, name: str | None = None):
        """Process: compile ``sql`` into a circuit and bootstrap it from
        an epoch-consistent MVCC snapshot of every versioned input.

        The chain trackers pin their chains *before* any simulated time
        passes, so writes committing mid-bootstrap queue as pending
        deltas on top of the snapshot instead of being half-read.
        Returns the registered :class:`MaterializedView`.
        """
        parsed = parse_sql(sql)
        if isinstance(parsed, ParsedWrite):
            raise QueryError("a view is defined by a SELECT statement")
        bound = bind_select(parsed, self.catalog)
        circuit = compile_circuit(bound)
        engine = self.views
        view_name = engine.fresh_name() if name is None else name
        if view_name in engine.views:
            raise QueryError(f"view {view_name!r} already exists")
        # Fold unconsumed segments first: a tracker shared with an
        # existing view must sit at the chain head before its mirror can
        # double as this view's bootstrap snapshot.
        if engine.has_pending():
            yield from self.refresh_views_proc()
        new_trackers: list[ChainTracker] = []
        for table, handle in circuit.dynamic_tables.items():
            if table in engine.trackers:
                continue
            trackers = []
            for owner, chain in self._view_chains(handle):
                tracker = ChainTracker(table, chain)  # pins + listens now
                tracker.owner = owner
                trackers.append(tracker)
            engine.trackers[table] = trackers
            new_trackers.extend(trackers)
        view = MaterializedView(view_name, sql, bound, circuit)
        try:
            for tracker in new_trackers:
                rows, ids, shipped = yield from tracker.owner \
                    .read_version_proc(tracker.chain, tracker.processed_epoch)
                tracker.load(rows, ids)
                view.bootstrap_bytes += shipped
            for stage, handle in circuit.static_loads:
                build_rows, nbytes = yield from \
                    self._view_static_read_proc(handle)
                stage.load_static(ZSet.from_rows(stage.build_in_schema,
                                                 build_rows))
                view.bootstrap_bytes += nbytes
        except BaseException:
            self._view_abandon_bootstrap(circuit, new_trackers)
            raise
        boot: dict[str, ZSet] = {}
        boot_rows = 0
        for table, handle in circuit.dynamic_tables.items():
            zset = ZSet(handle.schema)
            for tracker in engine.trackers[table]:
                tracker.bootstrap_into(zset)
            boot[table] = zset
            boot_rows += zset.entry_count
        yield from _client_compute(
            self.sim,
            view_circuit_cost_ns(self._view_cpu(), boot_rows, circuit.depth))
        view.contents = circuit.step(boot)
        view.epochs = {table: engine.trackers[table][0].processed_epoch
                       for table in circuit.dynamic_tables}
        engine.register(view)
        return view

    def _view_abandon_bootstrap(self, circuit, new_trackers) -> None:
        """Detach the trackers a failed bootstrap created (only those —
        trackers shared with registered views keep running)."""
        fresh = {id(t) for t in new_trackers}
        engine = self.views
        for table in circuit.dynamic_tables:
            trackers = engine.trackers.get(table)
            if not trackers or not all(id(t) in fresh for t in trackers):
                continue
            del engine.trackers[table]
            for tracker in trackers:
                self._view_free_segments(tracker, tracker.detach())

    def _view_free_segments(self, tracker, segments) -> None:
        owner = tracker.owner
        for segment in segments:
            try:
                owner.node.free_table_mem(owner.connection, segment)
            except FarviewError:
                pass  # a crashed node has nothing left to free

    # -- refresh ------------------------------------------------------------
    def refresh_views_proc(self):
        """Process: fold every unconsumed committed segment into every
        registered view and push the deltas to subscribers.

        Target epochs are captured synchronously up front, all segment
        reads complete before any state changes, and the fold itself is
        yield-free — so refreshes are atomic under both concurrent
        writers and node crashes.  Returns :class:`RefreshStats`.
        """
        engine = self.views
        work, targets = engine.pending_work()
        reads = []
        delta_rows = 0
        for tracker, segment in work:
            data = yield from tracker.owner.table_read_proc(segment.table)
            reads.append((tracker, segment, data))
            delta_rows += segment.num_rows
        if delta_rows:
            depth = max((view.circuit.depth
                         for view in engine.views.values()), default=1)
            yield from _client_compute(
                self.sim,
                view_circuit_cost_ns(self._view_cpu(), delta_rows, depth))
        stats = engine.apply_refresh(reads, targets)
        for trackers in engine.trackers.values():
            for tracker in trackers:
                self._view_free_segments(tracker, tracker.repin())
        return stats

    def _views_after_commit_proc(self):
        """Process: auto-propagation hook run after every versioned
        commit.  Returns before creating any simulation event when no
        auto-subscribed view has unconsumed input, keeping view-less
        workloads (fig6–fig19) event-for-event identical."""
        if not self.views.needs_auto_refresh():
            return
        yield from self.refresh_views_proc()

    # -- subscriptions ------------------------------------------------------
    def subscribe(self, view: MaterializedView,
                  auto: bool = True) -> Subscription:
        """Attach a subscriber fed by pushed deltas from ``view``'s
        current epoch on (``auto=False``: only on explicit refreshes)."""
        sub = Subscription(view, auto)
        view.subscriptions.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.view.subscriptions.remove(sub)

    def drop_view(self, view) -> None:
        """Unregister a view (by handle or name); detaches the chain
        trackers no remaining view needs and frees what their pins
        held."""
        name = view.name if isinstance(view, MaterializedView) else view
        for tracker in self.views.drop(name):
            self._view_free_segments(tracker, tracker.detach())

    def rebootstrap_view_proc(self, view: MaterializedView):
        """Process: rebuild ``view`` from the latest epoch, migrating
        its subscribers — the recovery path after a failed refresh."""
        subs = list(view.subscriptions)
        self.drop_view(view)
        fresh = yield from self.create_view_proc(view.sql, name=view.name)
        for sub in subs:
            sub.rebind(fresh)
            fresh.subscriptions.append(sub)
        return fresh

    # -- blocking conveniences ----------------------------------------------
    def create_view(self, sql: str, name: str | None = None):
        """Register + bootstrap a view; returns
        (:class:`MaterializedView`, elapsed_ns)."""
        return self._view_run(self.create_view_proc(sql, name), "create_view")

    def refresh_views(self):
        """Propagate committed segments; returns
        (:class:`RefreshStats`, elapsed_ns)."""
        return self._view_run(self.refresh_views_proc(), "refresh_views")

    def rebootstrap_view(self, view: MaterializedView):
        """Rebuild a view at the latest epoch; returns
        (:class:`MaterializedView`, elapsed_ns)."""
        return self._view_run(self.rebootstrap_view_proc(view),
                              "rebootstrap_view")


class FarviewClient(_ViewEngineMixin):
    """A query thread on a compute node, connected to a Farview node."""

    def __init__(self, node: FarviewNode,
                 buffer_capacity: int = 8 * 1024 * 1024,
                 cpu_model: CpuCostModel | None = None):
        self.node = node
        self.sim = node.sim
        self.catalog = Catalog()
        self._buffer_capacity = buffer_capacity
        self._conn: Connection | None = None
        self._compiled_cache: dict[str, CompiledQuery] = {}
        #: Cost model of this compute node's CPU — prices the client-side
        #: remainder of planned (ship/hybrid) executions.
        self._cpu = cpu_model if cpu_model is not None else CpuCostModel()
        #: Optional :class:`~repro.core.faults.RetryPolicy`: per-request
        #: deadline + capped exponential backoff on every verb.  ``None``
        #: (default) is the exact pre-fault-layer request path.
        self.retry_policy: RetryPolicy | None = None
        #: Registered materialized views + their chain trackers
        #: (verbs in :class:`_ViewEngineMixin`).
        self.views = ViewCatalog()

    # -- connection -----------------------------------------------------------
    def open_connection(self) -> Connection:
        if self._conn is not None:
            raise ConnectionError_("connection already open")
        self._conn = self.node.open_connection(self._buffer_capacity)
        return self._conn

    def close_connection(self) -> None:
        conn = self._require_conn()
        self.node.close_connection(conn)
        self._conn = None

    def abandon_connection(self) -> None:
        """Drop the connection handle without a node round trip.

        For a lease holder whose node died mid-lease (fail-stop with
        amnesia): the close RPC cannot reach the node, and the node-side
        state is gone with the crashed incarnation anyway.  Clears the
        client-side handle — and the node's stale connection entry, so a
        recovered node does not resurrect it — keeping lease-manager
        accounting exact even when :meth:`close_connection` raises a
        :class:`~repro.common.errors.FaultError`.
        """
        conn = self._require_conn()
        conn.qp.connected = False
        conn.closed = True
        self.node.connections.pop(conn.qp.qp_id, None)
        self._conn = None

    def _require_conn(self) -> Connection:
        if self._conn is None:
            raise ConnectionError_("no open connection; call open_connection")
        return self._conn

    @property
    def connection(self) -> Connection:
        return self._require_conn()

    # -- memory management -------------------------------------------------------
    def alloc_table_mem(self, table: FTable) -> FTable:
        self.node.alloc_table_mem(self._require_conn(), table)
        if table.name not in self.catalog:
            self.catalog.register(table)
        return table

    def free_table_mem(self, table: FTable) -> None:
        self.node.free_table_mem(self._require_conn(), table)
        self.catalog.deregister(table.name)

    def drop_table(self, table: FTable | VersionedTable | str) -> None:
        """Free a table's disaggregated memory and deregister it.

        The single-node counterpart of :meth:`ClusterClient.drop_table`:
        accepts a plain :class:`FTable`, a :class:`VersionedTable`
        (every live, retired and delta segment is freed), or a catalog
        name — no reaching into ``catalog.deregister`` or allocator
        internals required.
        """
        if isinstance(table, str):
            table = self.catalog.lookup(table)
        if isinstance(table, VersionedTable):
            conn = self._require_conn()
            for segment in table.drain_segments():
                self.node.free_table_mem(conn, segment)
            self.catalog.deregister(table.name)
            return
        self.free_table_mem(table)

    # -- fault-layer request wrapper ---------------------------------------------------
    def _with_policy_proc(self, make_proc, verb: str):
        """Process: run ``make_proc()`` under :attr:`retry_policy`.

        Typed fault errors retry with capped exponential backoff; a
        completion past the deadline is *discarded* (the late result is
        never returned) and retried, surfacing as
        :class:`RequestTimeoutError` once attempts are exhausted.  With
        no policy installed this is a plain pass-through — no extra
        simulator events, identical timing.
        """
        policy = self.retry_policy
        if policy is None:
            result = yield from make_proc()
            return result
        attempt = 0
        while True:
            attempt += 1
            start = self.sim.now
            try:
                result = yield from make_proc()
            except FaultError:
                if attempt >= policy.max_attempts:
                    raise
                yield self.sim.timeout(policy.backoff_ns(attempt))
                continue
            if (policy.deadline_ns is not None
                    and self.sim.now - start > policy.deadline_ns):
                if attempt >= policy.max_attempts:
                    raise RequestTimeoutError(
                        f"{verb} took {self.sim.now - start:.0f} ns "
                        f"(deadline {policy.deadline_ns:.0f} ns, "
                        f"{attempt} attempts)")
                yield self.sim.timeout(policy.backoff_ns(attempt))
                continue
            return result

    # -- verbs as processes ----------------------------------------------------------
    def table_write_proc(self, table: FTable, rows: np.ndarray | bytes):
        """Process: upload ``rows`` (array or raw image) to the buffer pool."""
        result = yield from self._with_policy_proc(
            lambda: self._table_write_once_proc(table, rows), "table_write")
        return result

    def _table_write_once_proc(self, table: FTable, rows: np.ndarray | bytes):
        conn = self._require_conn()
        if isinstance(rows, np.ndarray):
            table.validate_rows(rows)
            data = table.schema.to_bytes(rows)
        else:
            data = bytes(rows)
        result = yield from self.node.serve_write(conn, table, data)
        return result

    def table_read_proc(self, table: FTable, offset: int = 0,
                        length: int | None = None):
        """Process: raw RDMA read; returns the bytes landed in the buffer."""
        result = yield from self._with_policy_proc(
            lambda: self._table_read_once_proc(table, offset, length),
            "table_read")
        return result

    def _table_read_once_proc(self, table: FTable, offset: int,
                              length: int | None):
        conn = self._require_conn()
        conn.qp.buffer.reset()
        total = yield from self.node.serve_read(conn, table, offset, length)
        return conn.qp.buffer.read(0, total)

    def far_view_proc(self, table: FTable, query: Query):
        """Process: the Farview verb; returns a :class:`QueryResult`."""
        if isinstance(table, VersionedTable):
            result = yield from self.scan_versioned_proc(table, query)
            return result
        result = yield from self._with_policy_proc(
            lambda: self._far_view_once_proc(table, query), "far_view")
        return result

    def _far_view_once_proc(self, table: FTable, query: Query):
        conn = self._require_conn()
        build, build_token = self._pin_join_build(query)
        try:
            compiled = self._compile(table, query)
            conn.qp.buffer.reset()
            start = self.sim.now
            report = yield from self.node.serve_farview(conn, table, compiled)
        finally:
            if build is not None:
                self._release_pin(build, build_token)
        self._attach_group_meta(compiled, report)
        data = conn.qp.buffer.read(0, report.bytes_shipped)
        return QueryResult(
            data=data,
            schema=compiled.output_schema,
            report=report,
            response_time_ns=self.sim.now - start,
            output_key=query.encrypt_output)

    def _pin_join_build(self, query: Query):
        """Pin a versioned join build side at its current epoch.

        The pin is taken before any simulated time passes (the compile
        resolves the same epoch into the build view), so a dimension
        table being updated — or compacted — mid-scan cannot change or
        free the segments this join reads.  Returns ``(table, token)``
        or ``(None, None)`` when there is nothing to pin.
        """
        build = query.join.build_table if query.join is not None else None
        if isinstance(build, VersionedTable):
            return build, build.pin(build.epoch)
        return None, None

    def _compile(self, table: FTable, query: Query) -> CompiledQuery:
        # Pipelines are stateful/one-shot: always build a fresh one, but the
        # signature keeps region reconfiguration free across repeats.
        return compile_query(query, table, self.node.config)

    @staticmethod
    def _attach_group_meta(compiled: CompiledQuery,
                           report: ExecutionReport) -> None:
        if report.overflow_groups:
            query = compiled.query
            report.overflow_groups["__meta__"] = (
                list(query.group_by or ()),
                list(query.aggregates),
                sorted({s.column for s in query.aggregates
                        if not (s.func == "count" and s.column == "*")}))

    # -- blocking conveniences ------------------------------------------------------------
    def _run(self, proc, name: str):
        start = self.sim.now
        result = self.sim.run_process(proc, name)
        return result, self.sim.now - start

    def table_write(self, table: FTable, rows: np.ndarray | bytes):
        """Upload rows; returns (bytes_written, elapsed_ns)."""
        return self._run(self.table_write_proc(table, rows), "table_write")

    def table_read(self, table: FTable, offset: int = 0,
                   length: int | None = None):
        """Raw read; returns (bytes, elapsed_ns)."""
        return self._run(self.table_read_proc(table, offset, length),
                         "table_read")

    def far_view(self, table: FTable, query: Query):
        """Offloaded query; returns (QueryResult, elapsed_ns).

        Accepts a :class:`VersionedTable` too: the scan then runs over
        the MVCC view pinned at the current epoch (see
        :meth:`scan_versioned`).
        """
        if isinstance(table, VersionedTable):
            return self.scan_versioned(table, query)
        return self._run(self.far_view_proc(table, query), "far_view")

    # -- versioned write path (MVCC snapshots + delta segments) -------------------------------
    def create_versioned_table(self, name: str, schema: Schema,
                               rows: np.ndarray) -> VersionedTable:
        """Allocate + upload ``rows`` as the base segment of a version
        chain; registers the :class:`VersionedTable` under ``name``.

        Writes then go through :meth:`insert` / :meth:`update_where` /
        :meth:`delete_where`, each committing a copy-on-write delta
        segment and advancing the table's epoch.
        """
        require_versionable(schema)
        if len(rows) == 0:
            raise QueryError(
                f"versioned table {name!r} needs a non-empty base segment")
        if name in self.catalog:
            from ..common.errors import CatalogError
            raise CatalogError(f"table {name!r} already registered")
        conn = self._require_conn()
        base = FTable(f"{name}#b0", schema, len(rows))
        self.node.alloc_table_mem(conn, base)
        self.table_write(base, rows)
        vt = VersionedTable(name, schema, base,
                            np.arange(len(rows), dtype=np.uint64))
        self.catalog.register(vt)
        return vt

    def snapshot(self, table: VersionedTable) -> int:
        """The current committed epoch — pass to ``as_of`` for a
        repeatable snapshot read."""
        return table.epoch

    # prepare/commit split: the cluster router prepares on every shard
    # before committing any (two-phase epoch broadcast); the single-node
    # verbs below are prepare + immediate commit.
    def _prepare_insert_proc(self, vt: VersionedTable, rows: np.ndarray):
        conn = self._require_conn()
        rows = np.asarray(rows, dtype=vt.schema.dtype)
        if len(rows) == 0:
            return ("insert", None, 0, 0)
        ids = vt.allocate_rowids(len(rows))
        dschema = delta_schema(vt.schema)
        drows = dschema.empty(len(rows))
        drows[ROWID_COLUMN] = ids
        for column in vt.schema.names:
            drows[column] = rows[column]
        segment = FTable(vt.next_segment_name(), dschema, len(rows))
        self.node.alloc_table_mem(conn, segment)
        yield from self.node.serve_write(conn, segment,
                                         dschema.to_bytes(drows))
        return ("insert", segment, len(rows), len(rows))

    def _prepare_update_proc(self, vt: VersionedTable,
                             predicate: Predicate | None,
                             assignments: dict):
        conn = self._require_conn()
        token = vt.pin(vt.epoch)
        try:
            prepared = yield from self.node.serve_update_delta(
                conn, vt.view_at(vt.epoch), predicate, assignments,
                vt.next_segment_name())
        finally:
            self._release_pin(vt, token)
        if prepared is None:
            return ("update", None, 0, 0)
        segment, rowids = prepared
        return ("update", segment, len(rowids), 0)

    def _prepare_delete_proc(self, vt: VersionedTable,
                             predicate: Predicate | None):
        conn = self._require_conn()
        token = vt.pin(vt.epoch)
        try:
            prepared = yield from self.node.serve_delete_delta(
                conn, vt.view_at(vt.epoch), predicate,
                vt.next_segment_name())
        finally:
            self._release_pin(vt, token)
        if prepared is None:
            return ("delete", None, 0, 0)
        segment, rowids = prepared
        return ("delete", segment, len(rowids), -len(rowids))

    @staticmethod
    def _commit_prepared(vt: VersionedTable, prepared) -> int:
        kind, segment, num_rows, visible_change = prepared
        return vt.commit_delta(kind, segment, num_rows, visible_change)

    def insert_proc(self, vt: VersionedTable, rows: np.ndarray):
        """Process: append ``rows`` as an insert delta; returns the new
        epoch."""
        prepared = yield from self._prepare_insert_proc(vt, rows)
        epoch = self._commit_prepared(vt, prepared)
        yield from self._views_after_commit_proc()
        return epoch

    def update_where_proc(self, vt: VersionedTable,
                          predicate: Predicate | None, assignments: dict):
        """Process: offloaded read-modify-write.  The node evaluates
        ``predicate`` over the visible rows and writes an update delta
        with the ``column -> literal`` assignments applied; no table
        bytes cross the wire.  Returns the new epoch."""
        prepared = yield from self._prepare_update_proc(vt, predicate,
                                                        assignments)
        epoch = self._commit_prepared(vt, prepared)
        yield from self._views_after_commit_proc()
        return epoch

    def delete_where_proc(self, vt: VersionedTable,
                          predicate: Predicate | None):
        """Process: offloaded predicate delete; returns the new epoch."""
        prepared = yield from self._prepare_delete_proc(vt, predicate)
        epoch = self._commit_prepared(vt, prepared)
        yield from self._views_after_commit_proc()
        return epoch

    def compact_proc(self, vt: VersionedTable):
        """Process: fold the delta chain into a fresh base segment.

        A background maintenance pass: contents and epoch are unchanged,
        but subsequent scans ingest one segment instead of base + K
        deltas.  Superseded segments are freed immediately unless an
        in-flight pinned scan still reads them — then they are retired
        and freed when the last such scan ends.  Returns the epoch.
        """
        conn = self._require_conn()
        token = vt.pin(vt.epoch)
        try:
            new_base, ids = yield from self.node.serve_compact(
                conn, vt.view_at(vt.epoch),
                f"{vt.name}#b{vt.compactions + 1}")
        finally:
            self._release_pin(vt, token)
        for segment in vt.retire_for_compaction(new_base, ids):
            self.node.free_table_mem(conn, segment)
        return vt.epoch

    def _release_pin(self, vt: VersionedTable, token: int) -> None:
        conn = self._require_conn()
        for segment in vt.unpin(token):
            self.node.free_table_mem(conn, segment)

    def scan_versioned_proc(self, vt: VersionedTable, query: Query,
                            as_of: int | None = None):
        """Process: offloaded scan over the snapshot pinned at start.

        The epoch is resolved and pinned before any simulated time
        passes, so writers committing — and compactions retiring
        segments — mid-scan cannot change the bytes this scan returns.
        """
        conn = self._require_conn()
        epoch = vt.epoch if as_of is None else as_of
        token = vt.pin(epoch)
        build, build_token = self._pin_join_build(query)
        try:
            view = vt.view_at(epoch)
            compiled = compile_query(self._versioned_query(query),
                                     view.base, self.node.config)
            conn.qp.buffer.reset()
            start = self.sim.now
            report = yield from self.node.serve_farview_versioned(
                conn, view, compiled)
            self._attach_group_meta(compiled, report)
            data = conn.qp.buffer.read(0, report.bytes_shipped)
            return QueryResult(
                data=data, schema=compiled.output_schema, report=report,
                response_time_ns=self.sim.now - start,
                output_key=query.encrypt_output)
        finally:
            if build is not None:
                self._release_pin(build, build_token)
            self._release_pin(vt, token)

    @staticmethod
    def _versioned_query(query: Query) -> Query:
        """Delta-merge ingest needs the full row stream (like joins), so
        smart addressing is not applicable to versioned scans."""
        if query.smart_addressing:
            raise QueryError(
                "smart addressing is incompatible with versioned scans: "
                "the delta-merge ingest consumes the full row stream")
        if query.smart_addressing is None:
            return replace(query, smart_addressing=False)
        return query

    def read_version_proc(self, vt: VersionedTable, as_of: int | None = None):
        """Process: raw RDMA reads of every segment + client-side merge.

        Returns ``(visible_rows, rowids, bytes_shipped)`` — the ship-side
        building block of versioned placement, and the oracle the
        snapshot-isolation tests re-execute."""
        epoch = vt.epoch if as_of is None else as_of
        token = vt.pin(epoch)
        try:
            view = vt.view_at(epoch)
            images: dict[str, bytes] = {}
            shipped = 0
            for segment in view.segment_tables:
                data = yield from self.table_read_proc(segment)
                images[segment.name] = data
                shipped += len(data)
            rows, ids = view.materialize(lambda t: images[t.name])
            return rows, ids, shipped
        finally:
            self._release_pin(vt, token)

    # -- incremental view hooks (verbs in _ViewEngineMixin) -----------------------------------
    def _view_chains(self, handle):
        if not isinstance(handle, VersionedTable):
            raise QueryError(
                f"{getattr(handle, 'name', handle)!r} is not a versioned "
                f"table on this client")
        return [(self, handle)]

    def _view_static_read_proc(self, handle):
        data = yield from self.table_read_proc(handle)
        return handle.schema.from_bytes(data, copy=True), len(data)

    def _view_cpu(self) -> CpuCostModel:
        return self._cpu

    def _view_run(self, proc, name: str):
        return self._run(proc, name)

    # -- versioned blocking conveniences ------------------------------------------------------
    def insert(self, vt: VersionedTable, rows: np.ndarray):
        """Append rows; returns (new_epoch, elapsed_ns)."""
        return self._run(self.insert_proc(vt, rows), "insert")

    def update_where(self, vt: VersionedTable,
                     predicate: Predicate | None, assignments: dict):
        """Offloaded UPDATE ... SET ... WHERE; returns
        (new_epoch, elapsed_ns)."""
        return self._run(self.update_where_proc(vt, predicate, assignments),
                         "update_where")

    def delete_where(self, vt: VersionedTable,
                     predicate: Predicate | None):
        """Offloaded DELETE ... WHERE; returns (new_epoch, elapsed_ns)."""
        return self._run(self.delete_where_proc(vt, predicate),
                         "delete_where")

    def compact(self, vt: VersionedTable):
        """Fold the delta chain; returns (epoch, elapsed_ns)."""
        return self._run(self.compact_proc(vt), "compact")

    def read_version(self, vt: VersionedTable, as_of: int | None = None):
        """Visible byte image at an epoch; returns (bytes, elapsed_ns)."""
        (rows, _ids, _shipped), elapsed = self._run(
            self.read_version_proc(vt, as_of), "read_version")
        return vt.schema.to_bytes(rows), elapsed

    def scan_versioned(self, vt: VersionedTable, query: Query,
                       as_of: int | None = None, placement: str = "offload",
                       stats: PlanStats | None = None,
                       lease_manager=None):
        """Snapshot scan, optionally under cost-based placement.

        ``placement="offload"`` runs the delta-merge ingest on the node
        (the default, a plain :class:`QueryResult`); ``"ship"`` reads the
        raw segments and merges + executes client-side; ``"auto"`` picks
        the cheapest prefix split with delta-aware costing (the
        ship/offload crossover shifts with the delta fraction).
        Returns ``(result, elapsed_ns)``.
        """
        epoch = vt.epoch if as_of is None else as_of
        if placement == "offload":
            return self._run(self.scan_versioned_proc(vt, query, epoch),
                             "scan_versioned")
        plan = self.plan_versioned(vt, query, epoch, placement, stats,
                                   lease_manager)
        if plan.full_offload:
            try:
                result, elapsed = self._run(
                    self.scan_versioned_proc(vt, query, epoch),
                    "scan_versioned")
            except JoinBuildOverflowError:
                # The on-chip build load overflowed below nominal
                # capacity (data-dependent kick exhaustion); re-plan
                # with the join on the client.
                if placement != "auto" or query.join is None:
                    raise
                plan = self.plan_versioned(vt, query, epoch, placement,
                                           stats, lease_manager,
                                           refuse_join_offload=True)
                return self._scan_versioned_planned(vt, query, epoch, plan)
            except RegionFailedError:
                # The dynamic region died; under auto the ship path is
                # the automatic fallback — raw segment reads need no
                # region at all.
                if placement != "auto":
                    raise
                plan = self.plan_versioned(vt, query, epoch, "ship",
                                           stats, lease_manager)
                return self._scan_versioned_planned(vt, query, epoch, plan)
            plan.explain.actual_ns = elapsed
            result.explain = plan.explain
            return result, elapsed
        return self._scan_versioned_planned(vt, query, epoch, plan)

    def plan_versioned(self, vt: VersionedTable, query: Query,
                       epoch: int | None = None, placement: str = "auto",
                       stats: PlanStats | None = None,
                       lease_manager=None,
                       refuse_join_offload: bool = False) -> PlacementPlan:
        """Plan a versioned scan: base + K delta segments on the ingest
        side, raw segment reads + software merge on the ship side."""
        epoch = vt.epoch if epoch is None else epoch
        view = vt.view_at(epoch)
        region = self._require_conn().region
        return plan_placement(
            self._versioned_query(query), view.base, self.node.config,
            placement=placement, stats=stats, cpu=self._cpu,
            loaded_signature=region.loaded_pipeline,
            lease_manager=lease_manager,
            total_rows=vt.visible_rows_at(epoch),
            buffer_capacity=self._buffer_capacity,
            scan_bytes=float(view.scan_bytes),
            delta_rows=float(view.delta_rows),
            refuse_join_offload=refuse_join_offload)

    def _scan_versioned_planned(self, vt: VersionedTable, query: Query,
                                epoch: int, plan: PlacementPlan):
        """Ship/hybrid execution of a versioned scan (cf.
        :func:`_execute_planned`, plus the client-side delta merge)."""
        sim, cpu = self.sim, self._cpu
        view = vt.view_at(epoch)
        start = sim.now
        cost = CostBreakdown()
        cost.add("setup", cpu.setup_ns())
        build_rows = None
        if "join" in plan.client_steps:
            build_rows, build_shipped = self._read_join_build(query)
            cost.add("read", cpu.read_ns(build_shipped))
        if plan.fragment is None:
            rows, _ids, shipped = sim.run_process(
                self.read_version_proc(vt, epoch), "read_version")
            cost.add("read", cpu.read_ns(shipped))
            cost.add("merge", delta_merge_cost_ns(
                cpu, vt.visible_rows_at(epoch), view.delta_rows))
            current = vt.schema
            fragment_result = None
        else:
            fragment_result, _ = self._run(
                self.scan_versioned_proc(vt, plan.fragment, epoch),
                "scan_versioned")
            rows = fragment_result.rows()
            current = fragment_result.schema
            shipped = fragment_result.report.bytes_shipped
            cost.add("read", cpu.read_ns(shipped))
        rows, current = run_client_steps(rows, current,
                                         list(plan.client_steps), query,
                                         cpu, cost, build_rows=build_rows)
        cost.add("write", cpu.write_ns(len(rows) * current.row_width))
        sim.run_process(_client_compute(sim, cost.total_ns),
                        "client-compute")
        elapsed = sim.now - start
        plan.explain.actual_ns = elapsed
        result = HybridQueryResult(
            schema=current, merged=rows, response_time_ns=elapsed,
            explain=plan.explain, fragment_result=fragment_result,
            client_cost=cost, shipped_bytes=shipped)
        return result, elapsed

    # -- cost-based placement (offload vs ship-to-compute) -----------------------------------
    def plan(self, table: FTable, query: Query, placement: str = "auto",
             stats: PlanStats | None = None,
             lease_manager=None,
             refuse_join_offload: bool = False) -> PlacementPlan:
        """Plan (but do not run) ``query``: where should each operator go?

        The estimate accounts for the pipeline currently loaded in this
        connection's dynamic region (a different signature pays the
        partial-reconfiguration charge) and, if a ``lease_manager`` is
        given, for the expected region-lease wait on a saturated pool.
        """
        region = self._require_conn().region
        return plan_placement(query, table, self.node.config,
                              placement=placement, stats=stats,
                              cpu=self._cpu,
                              loaded_signature=region.loaded_pipeline,
                              lease_manager=lease_manager,
                              buffer_capacity=self._buffer_capacity,
                              refuse_join_offload=refuse_join_offload)

    def far_view_planned(self, table: FTable, query: Query,
                         placement: str = "auto",
                         stats: PlanStats | None = None,
                         lease_manager=None):
        """Run ``query`` under cost-based placement.

        ``placement="offload"`` is the legacy full-offload path (returns
        a plain :class:`QueryResult`, byte- and timing-identical to
        :meth:`far_view`); ``"ship"`` reads raw bytes and executes all
        operators in client software; ``"auto"`` picks the cheapest
        prefix split.  Ship/hybrid executions return a
        :class:`HybridQueryResult`; all variants carry an
        :class:`~repro.core.planner.ExplainPlan` with estimated and
        actual response times.  Returns ``(result, elapsed_ns)``.
        """
        if isinstance(table, VersionedTable):
            return self.scan_versioned(table, query, placement=placement,
                                       stats=stats,
                                       lease_manager=lease_manager)
        try:
            return self._far_view_planned_once(table, query, placement,
                                               stats, lease_manager)
        except JoinBuildOverflowError:
            # The compile-time capacity pre-check is nominal; cuckoo
            # kick chains can exhaust below it while actually loading
            # the build.  Under auto the refusal is productive: re-plan
            # with the join forced to the client.
            if placement != "auto" or query.join is None:
                raise
            return self._far_view_planned_once(table, query, placement,
                                               stats, lease_manager,
                                               refuse_join_offload=True)
        except RegionFailedError:
            # A dead region cannot host any pipeline; under auto,
            # degrade gracefully to the ship path (raw reads + client
            # software need no region).
            if placement != "auto":
                raise
            return self._far_view_planned_once(table, query, "ship",
                                               stats, lease_manager)

    def _far_view_planned_once(self, table: FTable, query: Query,
                               placement: str, stats, lease_manager,
                               refuse_join_offload: bool = False):
        plan = self.plan(table, query, placement, stats, lease_manager,
                         refuse_join_offload=refuse_join_offload)
        if plan.full_offload:
            result, elapsed = self.far_view(table, query)
            plan.explain.actual_ns = elapsed
            result.explain = plan.explain
            return result, elapsed
        return _execute_planned(
            self.sim, plan, query, self._cpu,
            read_raw=lambda: self.table_read(table)[0],
            run_fragment=lambda fragment: self.far_view(table, fragment)[0],
            schema=table.schema,
            decrypt_keys=((table.key, table.nonce)
                          if table.encrypted else None),
            read_build=lambda: self._read_join_build(query))

    def _read_join_build(self, query: Query):
        """Fetch + decode a shipped join's build side (timed raw read)."""
        return self._read_build_rows(query.join.build_table)

    def _read_build_rows(self, build):
        """Raw read + decode of a build-side table.

        A versioned build reads every segment of the chain pinned at the
        current epoch and merges client-side (the same oracle
        :meth:`read_version_proc` provides); a plain table is one raw
        RDMA read.  Returns ``(build_rows, bytes_shipped)``.
        """
        if isinstance(build, VersionedTable):
            (rows, _ids, shipped), _ = self._run(
                self.read_version_proc(build), "read_build")
            return rows, shipped
        data, _ = self.table_read(build)
        return build.schema.from_bytes(data), len(data)

    # -- paper-style higher-level helpers (§4.2's `select`) ----------------------------------
    def select(self, table: FTable, columns: list[str] | None,
               predicate: Predicate, vectorized: bool = False,
               placement: str = "offload",
               stats: PlanStats | None = None):
        """``SELECT columns FROM table WHERE predicate``.

        ``placement`` routes through the cost-based planner:
        ``"offload"`` (default, the paper's path), ``"ship"`` (raw read +
        client software), or ``"auto"`` (cheapest split; pass ``stats``
        for better estimates).
        """
        query = Query(projection=tuple(columns) if columns else None,
                      predicate=predicate, vectorized=vectorized,
                      label="select")
        if placement == "offload":
            return self.far_view(table, query)
        return self.far_view_planned(table, query, placement, stats)

    def select_distinct(self, table: FTable, columns: list[str]):
        query = Query(projection=tuple(columns), distinct=True,
                      label="distinct")
        return self.far_view(table, query)

    def group_by(self, table: FTable, keys: list[str],
                 aggregates: list[AggregateSpec]):
        query = Query(group_by=tuple(keys), aggregates=tuple(aggregates),
                      label="group_by")
        return self.far_view(table, query)

    def regex_match(self, table: FTable, column: str, pattern: str):
        query = Query(regex=RegexFilter(column, pattern), label="regex")
        return self.far_view(table, query)

    def sql(self, statement: str, placement: str | None = None,
            stats: PlanStats | None = None):
        """Parse and execute a SQL statement against the catalog.

        SELECTs run against any registered table (versioned scans pin
        the current epoch); ``INSERT INTO ... VALUES``, ``UPDATE ... SET
        ... WHERE`` and ``DELETE FROM ... WHERE`` commit write batches
        against a versioned table and return ``(new_epoch, elapsed_ns)``.
        Placement precedence for reads: the ``placement`` argument, then
        a ``/*+ placement(...) */`` hint, then full offload.  Returns
        ``(result, elapsed_ns)``.
        """
        from .sql import ParsedWrite, parse_sql, resolve_join_query

        parsed = parse_sql(statement)
        table = self.catalog.lookup(parsed.table)
        if isinstance(parsed, ParsedWrite):
            return self._execute_write(table, parsed)
        if getattr(parsed, "extended", False):
            placement = placement or parsed.placement or "offload"
            return _execute_compiled(self, parsed, placement, stats)
        query = parsed.query
        if parsed.join is not None:
            build = self.catalog.lookup(parsed.join.table)
            query = resolve_join_query(parsed, table.schema, build)
        placement = placement or parsed.placement or "offload"
        if placement == "offload":
            return self.far_view(table, query)
        return self.far_view_planned(table, query, placement, stats)

    def _execute_write(self, table, parsed):
        """Dispatch a parsed INSERT/UPDATE/DELETE to the write verbs."""
        return _dispatch_sql_write(self, table, parsed, VersionedTable)


@dataclass
class ClusterQueryResult:
    """Merged client-visible result of one scatter-gather execution.

    ``shard_results`` are the per-shard :class:`QueryResult`\\ s in shard
    order; ``rows()`` is the client-side merge of their post-processed
    rows (dedup / partial-group re-merge already applied).  ``data`` is
    the canonical byte image of the merged rows — under order-preserving
    ``chunk`` partitioning it is byte-identical to a single node's result
    for the same data (the cluster tests pin this with sha256).
    """

    schema: Schema
    shard_results: list[QueryResult]
    response_time_ns: float
    merged: np.ndarray = field(repr=False)
    explain: Optional[ExplainPlan] = None  # set by the placement planner
    #: Resolved scatter strategy of a join query (``broadcast`` /
    #: ``colocated`` / ``shuffle``), ``None`` for join-less queries.
    join_strategy: Optional[str] = None

    def rows(self) -> np.ndarray:
        return self.merged

    @property
    def data(self) -> bytes:
        """Canonical merged result bytes (plaintext, single-node layout)."""
        return self.schema.to_bytes(self.merged)

    @property
    def num_rows(self) -> int:
        return len(self.merged)

    @property
    def bytes_shipped(self) -> int:
        """Total result bytes shipped over all shard links (pre-merge)."""
        return sum(r.report.bytes_shipped for r in self.shard_results)

    @property
    def bytes_scanned(self) -> int:
        return sum(r.report.bytes_scanned for r in self.shard_results)


@dataclass
class _JoinReplica:
    """A broadcast build-table copy on one node, stamped with the node's
    incarnation at write time (a later crash makes the stamp stale — the
    copy is gone and must never be probed against)."""

    table: FTable
    incarnation: int = 0


@dataclass
class _EmptyShardResult:
    """Fabricated zero-row result for a fact shard whose join-build
    partition holds no rows.

    Under co-located and shuffle joins the build side is partitioned on
    the join key, so a fact shard facing an empty build partition cannot
    produce output (inner join: nothing to match).  The pool cannot even
    host a zero-byte build table (the MMU rejects empty allocations), so
    the client answers these shards locally — zero requests, zero bytes
    on the wire — shaped like a :class:`QueryResult` as far as
    :meth:`ClusterClient._gather` is concerned.
    """

    schema: Schema
    report: ExecutionReport

    def rows(self) -> np.ndarray:
        return self.schema.empty(0)


#: Sentinel a shard executor returns (instead of raising) when every
#: candidate replica of its shard is gone and the caller opted into
#: degraded results.  Filtered out by :meth:`ClusterClient._gather`.
_SHARD_LOST = object()


class _ConnLock:
    """FIFO mutex serializing shard requests on one per-node connection.

    Replica failover can route two shards' requests of the same scatter
    onto the same node, but a connection's landing buffer holds one
    request at a time (reset + read) — interleaving would corrupt both
    results.  The uncontended path takes and releases the lock
    synchronously (no events, no yields), so the no-fault baselines are
    bit-for-bit unaffected.
    """

    __slots__ = ("sim", "locked", "waiters")

    def __init__(self, sim):
        self.sim = sim
        self.locked = False
        self.waiters: deque = deque()

    def acquire(self):
        """Process: returns holding the lock (synchronously when free)."""
        if not self.locked:
            self.locked = True
            return
        ticket = self.sim.event()
        self.waiters.append(ticket)
        yield ticket  # woken by release(), lock handed over directly

    def release(self) -> None:
        if self.waiters:
            self.waiters.popleft().succeed()
        else:
            self.locked = False


class ClusterClient(_ViewEngineMixin):
    """Scatter-gather router: one query thread over a sharded pool.

    Owns one :class:`FarviewClient` (QP + dynamic region) per node of a
    :class:`~repro.core.cluster.FarviewCluster` and a cluster-level
    :class:`~repro.core.catalog.Catalog` of
    :class:`~repro.core.cluster.ShardedTable`\\ s.  Verbs mirror the
    single-node client (see the module docstring table): queries are
    rewritten by :func:`~repro.core.cluster.plan_scatter`, scattered to
    the shards that own data, executed with true node-level parallelism,
    and gathered client-side — DISTINCT dedup, GROUP BY / aggregate
    partial re-merges included.  Response time runs until the *last*
    shard's results land in client memory, matching the paper's
    measurement endpoint (§6.2).
    """

    def __init__(self, cluster: FarviewCluster,
                 buffer_capacity: int = 8 * 1024 * 1024):
        self.cluster = cluster
        self.sim = cluster.sim
        self.catalog = Catalog()
        self._clients = [FarviewClient(node, buffer_capacity)
                         for node in cluster.nodes]
        #: Broadcast join build replicas: build name -> node index ->
        #: the node-local copy of the dimension table (with the node's
        #: incarnation at write time).  Replicas are immutable (plain
        #: tables only) so they stay valid until the build table is
        #: dropped — or the node crashes, which invalidates the entry.
        self._join_replicas: dict[str, dict[int, _JoinReplica]] = {}
        #: In-flight broadcasts by build name: concurrent joins against
        #: the same dimension table share one broadcast process instead
        #: of racing the cache and leaking the loser's replicas.
        self._join_broadcasts: dict[str, object] = {}
        #: Repartition-shuffle fragment cache: ``"{build}->{fact}"`` ->
        #: ``(partition, node_index)`` -> the node-local fragment of the
        #: build's rows whose keys hash to ``partition`` (primary on node
        #: ``partition`` plus the fact table's failover ring).
        self._shuffle_fragments: dict[
            str, dict[tuple[int, int], _JoinReplica]] = {}
        #: In-flight shuffles by cache key (same dedupe as broadcasts).
        self._shuffle_jobs: dict[str, object] = {}
        #: Hash partitions of each shuffled build that hold no rows —
        #: their fact shards probe nothing and are answered client-side.
        self._shuffle_empty: dict[str, frozenset[int]] = {}
        #: Build-side bytes written into pool memory for join placement
        #: (broadcast replicas + shuffle fragments).  Co-located joins
        #: leave this untouched — the fig19 zero-replica-bytes assertion.
        self.replica_bytes_moved = 0
        #: Optional :class:`~repro.core.faults.RetryPolicy`, applied per
        #: shard request by the scatter router (backoff between retries
        #: on the same candidate, post-completion deadline check).
        #: ``None`` (default) keeps the exact pre-fault-layer path.
        self.retry_policy: RetryPolicy | None = None
        #: When True, a read that loses *every* replica of a shard
        #: raises :class:`DegradedResultError` carrying the partial
        #: merge of the surviving shards instead of the bare failure.
        self.allow_degraded = False
        #: One lock per per-node connection: failover may put two shard
        #: requests of one scatter on the same node, and its landing
        #: buffer serves one request at a time.
        self._conn_locks = [_ConnLock(self.sim) for _ in cluster.nodes]
        #: Registered materialized views + their chain trackers — one
        #: tracker per shard chain (verbs in :class:`_ViewEngineMixin`).
        self.views = ViewCatalog()

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    def node_client(self, index: int) -> FarviewClient:
        """The per-node client behind shard ``index``'s node."""
        return self._clients[index]

    # -- connection ----------------------------------------------------------
    def open_connection(self) -> None:
        """Open one QP + dynamic region on every node of the pool.

        All-or-nothing: if any node cannot grant a region, the regions
        already opened on earlier nodes are released before the error
        propagates.
        """
        opened: list[FarviewClient] = []
        try:
            for client in self._clients:
                client.open_connection()
                opened.append(client)
        except Exception:
            for client in opened:
                client.close_connection()
            raise

    def close_connection(self) -> None:
        for client in self._clients:
            client.close_connection()

    # -- sharded table lifecycle ---------------------------------------------
    def create_table(self, name: str, schema: Schema, rows: np.ndarray,
                     partition: PartitionSpec | None = None) -> ShardedTable:
        """Partition ``rows``, allocate and scatter-write the shards.

        Nodes whose shard would be empty get no shard table; the returned
        :class:`ShardedTable` is registered in the cluster catalog under
        ``name`` and its shard tables are named ``{name}@{node}``.
        """
        if len(rows) == 0:
            raise QueryError(
                f"cannot shard empty table {name!r}; empty shards have no "
                f"disaggregated memory to allocate")
        if name in self.catalog:
            # Fail before any shard is allocated or written — a duplicate
            # name is detectable from catalog information alone.
            from ..common.errors import CatalogError
            raise CatalogError(f"table {name!r} already registered")
        spec = partition if partition is not None else PartitionSpec()
        indices = partition_indices(rows, schema, spec,
                                    self.cluster.num_nodes)
        shards: list[TableShard] = []
        replica_allocs: list[tuple[int, FTable]] = []
        try:
            for node_index, idx in enumerate(indices):
                if len(idx) == 0:
                    continue
                shard_table = FTable(f"{name}@{node_index}", schema, len(idx))
                client = self._clients[node_index]
                client.alloc_table_mem(shard_table)
                # Track the shard before the write so a mid-upload failure
                # still rolls its allocation back.
                shard = TableShard(node_index, shard_table)
                shards.append(shard)
                client.table_write(shard_table, rows[idx])
                shard.incarnation = client.node.incarnation
                # k-replica placement: byte-identical copies on the next
                # ring nodes.  Replicas bypass the per-node catalogs
                # (like broadcast join copies) — only the cluster-level
                # placement knows about them.
                reps: list[ShardReplica] = []
                for rep_node in replica_nodes(node_index,
                                              self.cluster.num_nodes,
                                              spec.replicas):
                    rclient = self._clients[rep_node]
                    rtable = FTable(f"{name}@{node_index}r{rep_node}",
                                    schema, len(idx))
                    rclient.node.alloc_table_mem(rclient.connection, rtable)
                    replica_allocs.append((rep_node, rtable))
                    rclient.table_write(rtable, rows[idx])
                    reps.append(ShardReplica(rep_node, rtable,
                                             rclient.node.incarnation))
                shard.replicas = tuple(reps)
            shard_ranges: dict[int, tuple[float, float]] = {}
            if spec.scheme == "range":
                # Plan-time pruning metadata: each shard's observed key
                # span (recomputable from the deterministic placement,
                # cached here so pruning needs no reads).
                for node_index, idx in enumerate(indices):
                    if len(idx) == 0:
                        continue
                    values = rows[idx][spec.key].astype(np.float64)
                    shard_ranges[node_index] = (float(values.min()),
                                                float(values.max()))
            sharded = ShardedTable(name, schema, len(rows), spec, shards,
                                   num_partitions=self.cluster.num_nodes,
                                   shard_ranges=shard_ranges)
            self.catalog.register(sharded)
        except Exception:
            # All-or-nothing: free any shards already written so a failed
            # create leaves no orphaned pool memory behind.  Deregister a
            # per-node catalog name only if it maps to *this* shard (a
            # duplicate-name create never got to register its shards).
            for shard in shards:
                client = self._clients[shard.node_index]
                shard_name = shard.table.name
                if (shard_name in client.catalog
                        and client.catalog.lookup(shard_name) is shard.table):
                    client.free_table_mem(shard.table)
                else:
                    client.node.free_table_mem(client.connection, shard.table)
            for rep_node, rtable in replica_allocs:
                rclient = self._clients[rep_node]
                rclient.node.free_table_mem(rclient.connection, rtable)
            raise
        return sharded

    def drop_table(self,
                   sharded: ShardedTable | VersionedShardedTable) -> None:
        """Free every shard's disaggregated memory and deregister.

        Reuses the single-node :meth:`FarviewClient.drop_table` per
        shard, so plain and versioned shard tables (whole chains) are
        handled uniformly.  Broadcast join replicas of the table are
        freed too.
        """
        for shard in sharded.shards:
            self._clients[shard.node_index].drop_table(shard.table)
            for rep in getattr(shard, "replicas", ()):
                rclient = self._clients[rep.node_index]
                rclient.node.free_table_mem(rclient.connection, rep.table)
        for node_index, replica in self._join_replicas.pop(
                sharded.name, {}).items():
            client = self._clients[node_index]
            client.node.free_table_mem(client.connection, replica.table)
        self._join_broadcasts.pop(sharded.name, None)
        # Shuffle fragments are keyed per (build, fact) pairing — free
        # every pairing this table participates in, on either side.
        for key in [k for k in self._shuffle_fragments
                    if sharded.name in k.split("->")]:
            for (_part, node_index), rep in self._shuffle_fragments.pop(
                    key).items():
                if rep.table.allocated:
                    client = self._clients[node_index]
                    client.node.free_table_mem(client.connection, rep.table)
            self._shuffle_jobs.pop(key, None)
            self._shuffle_empty.pop(key, None)
        self.catalog.deregister(sharded.name)

    # -- broadcast joins ------------------------------------------------------
    def _ensure_join_replicas_proc(self, build):
        """Process: replicate a join's build table onto every node.

        The build-side broadcast of a distributed small-table join:
        gather the dimension table's bytes from its shards (ordinary
        scatter raw reads), then write one full copy into every node's
        pool memory in parallel — all timed through the normal
        wire/ingest model.  Replicas are cached per build name; repeated
        joins against the same dimension table pay the broadcast once.
        """
        if isinstance(build, (VersionedTable, VersionedShardedTable)):
            raise QueryError(
                "versioned build sides are single-node only; materialize "
                "the dimension table into a plain cluster table to join "
                "against it pool-wide")
        if not isinstance(build, ShardedTable):
            raise QueryError(
                "cluster joins need the build table registered in the "
                "cluster catalog (create it with create_table)")
        for _round in range(self.num_nodes + 2):
            cached = self._join_replicas.get(build.name)
            if cached is not None:
                # Invalidate entries written to a node that crashed
                # since: its pool memory is gone, and a stale copy must
                # never be probed against (never serve wrong bytes).
                for idx in [i for i, rep in cached.items()
                            if self.cluster.nodes[i].incarnation
                            != rep.incarnation]:
                    del cached[idx]
            targets = tuple(
                i for i in range(self.num_nodes)
                if not self.cluster.nodes[i].failed
                and (cached is None or i not in cached))
            if cached is not None and not targets:
                return cached
            inflight = self._join_broadcasts.get(build.name)
            if inflight is None:
                inflight = self.sim.process(
                    self._broadcast_build_proc(build, targets),
                    name=f"cluster.broadcast[{build.name}]")
                self._join_broadcasts[build.name] = inflight
            try:
                yield inflight
            except FaultError:
                # A node died mid-broadcast.  The loop re-evaluates:
                # the dead node drops out of the next round's targets
                # (re-replication onto the survivors only).
                pass
        raise NodeFailedError(
            f"could not broadcast {build.name!r}: nodes kept failing")

    def _broadcast_build_proc(self, build: ShardedTable,
                              targets: tuple[int, ...]):
        """Process: the broadcast itself (one in flight per build name),
        writing one replica onto each node in ``targets``."""
        replicas: dict[int, _JoinReplica] = {}
        try:
            data = yield from self.table_read_proc(build)
            procs = []
            for node_index in targets:
                client = self._clients[node_index]
                replica = FTable(f"{build.name}@bcast{node_index}",
                                 build.schema, build.num_rows)
                client.node.alloc_table_mem(client.connection, replica)
                replicas[node_index] = _JoinReplica(
                    replica, client.node.incarnation)
                procs.append(self.sim.process(
                    client.node.serve_write(client.connection, replica,
                                            data),
                    name=f"cluster.broadcast[{replica.name}]"))
            if procs:
                yield self.sim.all_of(procs)
            for rep in replicas.values():
                self.replica_bytes_moved += rep.table.size_bytes
        except BaseException:
            # A failed broadcast (e.g. a node out of pool memory) must
            # not leave a dead in-flight handle behind — later joins
            # would wait on it forever — nor leak partial replicas.
            self._join_broadcasts.pop(build.name, None)
            for node_index, rep in replicas.items():
                if rep.table.allocated:
                    client = self._clients[node_index]
                    client.node.free_table_mem(client.connection, rep.table)
            raise
        # Publish cache and retire the in-flight handle in one step (no
        # yields between), so callers see exactly one of the two.  A
        # drop_table mid-broadcast removes the in-flight handle; the
        # orphaned replicas are then freed instead of cached.  Merge
        # (not replace): a re-replication round after a crash must keep
        # the survivors' still-valid entries.
        if self._join_broadcasts.pop(build.name, None) is not None:
            cached = self._join_replicas.setdefault(build.name, {})
            cached.update(replicas)
            return cached
        for node_index, rep in replicas.items():
            client = self._clients[node_index]
            client.node.free_table_mem(client.connection, rep.table)
        return replicas

    def _localize_join(self, shard_query: Query,
                       replicas: dict[int, _JoinReplica],
                       node_index: int) -> Query:
        """Swap the node-local build replica into one shard's fragment.

        Raises :class:`NodeFailedError` when the node has no live
        replica (crashed since the broadcast) — the shard executor then
        fails over to the next candidate node.
        """
        rep = replicas.get(node_index)
        if rep is None or not self._node_usable(node_index,
                                                rep.incarnation):
            raise NodeFailedError(
                f"no live build replica on node {node_index}")
        spec = replace(shard_query.join, build_table=rep.table)
        return replace(shard_query, join=spec)

    def _node_usable(self, node_index: int,
                     incarnation: int | None = None) -> bool:
        """Is the node up — and, if ``incarnation`` is given, still the
        same incarnation that wrote the data we want to read?  (A crash
        wipes pool memory: same index, new incarnation, empty node.)"""
        node = self.cluster.nodes[node_index]
        if node.failed:
            return False
        return incarnation is None or node.incarnation == incarnation

    # -- partition-aware joins: strategy resolution, shuffle, co-location ----
    def _resolve_join_strategy(self, sharded, query: Query,
                               requested: str | None = None
                               ) -> Optional[str]:
        """Resolve the scatter strategy for a join query.

        An explicit ``requested`` strategy is validated against the
        feasible set (:func:`~repro.core.cluster.join_strategies`) and a
        typed error explains an infeasible request.  Under ``None``
        (auto) the cheapest build-movement cost wins
        (:meth:`~repro.core.cost_model.PlacementCostModel.
        join_movement_ns`, zero for placements already cached), with
        ties broken toward the strategy that moves least.
        """
        if query.join is None:
            if requested is not None:
                raise QueryError(
                    f"join_strategy={requested!r} given but the query has "
                    f"no join")
            return None
        feasible = join_strategies(sharded, query)
        if requested is not None:
            if requested not in JOIN_STRATEGIES:
                raise QueryError(
                    f"unknown join strategy {requested!r}; choose from "
                    f"{JOIN_STRATEGIES}")
            if requested not in feasible:
                raise QueryError(
                    f"join strategy {requested!r} is infeasible for "
                    f"{sharded.name!r}: feasible strategies are "
                    f"{feasible} (colocated needs both sides "
                    f"hash-partitioned on the join key with matching "
                    f"shard counts; shuffle needs the probe side "
                    f"hash-partitioned on the probe key)")
            return requested
        if len(feasible) == 1:
            return feasible[0]
        build = query.join.build_table
        model = PlacementCostModel(self.cluster.config,
                                   self._clients[0]._cpu)
        copies = min(sharded.partition.replicas, self.num_nodes)
        costs: dict[str, float] = {}
        for strat in feasible:
            if strat == "colocated":
                costs[strat] = 0.0
            elif strat == "broadcast":
                cached = self._join_replicas.get(build.name)
                costs[strat] = (0.0 if cached else model.join_movement_ns(
                    "broadcast", build.size_bytes, self.num_nodes))
            else:  # shuffle
                key = f"{build.name}->{sharded.name}"
                cached = self._shuffle_fragments.get(key)
                costs[strat] = (0.0 if cached else model.join_movement_ns(
                    "shuffle", build.size_bytes, sharded.num_partitions,
                    copies=copies))
        order = {"colocated": 0, "shuffle": 1, "broadcast": 2}
        return min(feasible, key=lambda s: (costs[s], order[s]))

    def _ensure_shuffle_fragments_proc(self, build, sharded, build_key: str):
        """Process: repartition a join's build side onto the fact shards.

        The node→node shuffle path: gather the build's bytes (ordinary
        scatter raw reads), re-key every row with the same splitmix64
        ``hash_key_batch`` the fact placement used, and write partition
        ``s``'s fragment onto node ``s`` plus the fact table's failover
        ring — all timed through the normal wire/ingest model.
        Fragments are cached per ``(build, fact)`` pairing; like the
        broadcast cache, entries written to a node that crashed since
        are invalidated and re-shuffled onto the survivors.
        """
        if isinstance(build, (VersionedTable, VersionedShardedTable)):
            raise QueryError(
                "versioned build sides are single-node only; materialize "
                "the dimension table into a plain cluster table to join "
                "against it pool-wide")
        if not isinstance(build, ShardedTable):
            raise QueryError(
                "cluster joins need the build table registered in the "
                "cluster catalog (create it with create_table)")
        key = f"{build.name}->{sharded.name}"
        for _round in range(self.num_nodes + 2):
            cached = self._shuffle_fragments.get(key)
            if cached is not None:
                for fkey in [fk for fk, rep in cached.items()
                             if self.cluster.nodes[fk[1]].incarnation
                             != rep.incarnation]:
                    del cached[fkey]
            empty = self._shuffle_empty.get(key, frozenset())
            targets: list[tuple[int, int]] = []
            for shard in sharded.shards:
                partition = shard.node_index
                if cached is not None and partition in empty:
                    continue
                ring = (partition,) + replica_nodes(
                    partition, self.num_nodes, sharded.partition.replicas)
                for node_index in ring:
                    if self.cluster.nodes[node_index].failed:
                        continue
                    if cached is None or (partition, node_index) not in cached:
                        targets.append((partition, node_index))
            if cached is not None and not targets:
                return cached
            inflight = self._shuffle_jobs.get(key)
            if inflight is None:
                inflight = self.sim.process(
                    self._shuffle_build_proc(build, sharded, build_key, key,
                                             tuple(targets)),
                    name=f"cluster.shuffle[{key}]")
                self._shuffle_jobs[key] = inflight
            try:
                yield inflight
            except FaultError:
                # A node died mid-shuffle.  The loop re-evaluates: the
                # dead node drops out of the next round's targets.
                pass
        raise NodeFailedError(
            f"could not shuffle {build.name!r} onto {sharded.name!r}: "
            f"nodes kept failing")

    def _shuffle_build_proc(self, build: ShardedTable, sharded, build_key: str,
                            key: str, targets: tuple[tuple[int, int], ...]):
        """Process: the shuffle itself (one in flight per pairing),
        writing the per-partition fragments named by ``targets``."""
        written: dict[tuple[int, int], _JoinReplica] = {}
        try:
            data = yield from self.table_read_proc(build)
            rows = build.schema.from_bytes(data)
            spec = PartitionSpec("hash", key=build_key)
            parts = partition_indices(rows, build.schema, spec,
                                      sharded.num_partitions)
            self._shuffle_empty[key] = frozenset(
                p for p, idx in enumerate(parts) if len(idx) == 0)
            by_node: dict[int, list[tuple[int, np.ndarray]]] = {}
            for partition, node_index in targets:
                idx = parts[partition]
                if len(idx) == 0:
                    continue
                by_node.setdefault(node_index, []).append(
                    (partition, rows[idx]))
            procs = [
                self.sim.process(
                    self._write_fragments_proc(build, node_index, frags,
                                               written),
                    name=f"cluster.shuffle[{key}->n{node_index}]")
                for node_index, frags in sorted(by_node.items())]
            if procs:
                yield self.sim.all_of(procs)
        except BaseException:
            # Mirror the broadcast cleanup: never leave a dead in-flight
            # handle or partially written fragments behind.
            self._shuffle_jobs.pop(key, None)
            for (_part, node_index), rep in written.items():
                if rep.table.allocated:
                    client = self._clients[node_index]
                    client.node.free_table_mem(client.connection, rep.table)
            raise
        if self._shuffle_jobs.pop(key, None) is not None:
            cached = self._shuffle_fragments.setdefault(key, {})
            cached.update(written)
            return cached
        for (_part, node_index), rep in written.items():
            client = self._clients[node_index]
            client.node.free_table_mem(client.connection, rep.table)
        return written

    def _write_fragments_proc(self, build: ShardedTable, node_index: int,
                              frags: list, written: dict):
        """Process: write one node's shuffle fragments back-to-back.

        One link per node: a node receiving several fragments (its own
        partition plus the ring failover copies landing on it) pays each
        write's fixed cost serially — the term that keeps broadcast
        competitive for small builds under k-replication.
        """
        client = self._clients[node_index]
        for partition, fragment_rows in frags:
            table = FTable(f"{build.name}@shf{partition}n{node_index}",
                           build.schema, len(fragment_rows))
            client.node.alloc_table_mem(client.connection, table)
            written[(partition, node_index)] = _JoinReplica(
                table, client.node.incarnation)
            yield from client.node.serve_write(
                client.connection, table,
                build.schema.to_bytes(fragment_rows))
            self.replica_bytes_moved += table.size_bytes

    def _localize_colocated(self, shard_query: Query, build: ShardedTable,
                            partition: int, node_index: int) -> Query:
        """Swap the build's co-located shard (or the ring replica living
        on the candidate node) into one fact shard's fragment."""
        for shard in build.shards:
            if shard.node_index != partition:
                continue
            for candidate in shard.candidates():
                if (candidate.node_index == node_index
                        and self._node_usable(node_index,
                                              candidate.incarnation)):
                    spec = replace(shard_query.join,
                                   build_table=candidate.table)
                    return replace(shard_query, join=spec)
            break
        raise NodeFailedError(
            f"no live co-located build shard for partition {partition} "
            f"on node {node_index}")

    def _localize_shuffle(self, shard_query: Query, fragments: dict,
                          partition: int, node_index: int) -> Query:
        """Swap the node-local shuffle fragment into one shard's
        fragment; a missing or stale fragment fails over."""
        rep = fragments.get((partition, node_index))
        if rep is None or not self._node_usable(node_index,
                                                rep.incarnation):
            raise NodeFailedError(
                f"no live shuffle fragment for partition {partition} on "
                f"node {node_index}")
        spec = replace(shard_query.join, build_table=rep.table)
        return replace(shard_query, join=spec)

    def _scatter_output_schema(self, sharded, plan: ScatterPlan) -> Schema:
        """The per-shard result schema of one scatter fragment — used to
        fabricate empty shard results without a node round-trip."""
        shard_query = plan.shard_query
        chain = operator_chain(shard_query)
        if not chain:
            return sharded.schema
        steps = estimate_chain(chain, shard_query, sharded.schema, 0,
                               PlanStats())
        return steps[-1].schema_out

    def _empty_shard_result(self, sharded, plan: ScatterPlan):
        """A zero-row stand-in for a fact shard whose build partition
        holds no rows: an inner join cannot match anything there, so no
        request is scattered (pool memory cannot even hold a zero-byte
        build table)."""
        schema = self._scatter_output_schema(sharded, plan)
        return _EmptyShardResult(schema,
                                 ExecutionReport(signature="empty-partition"))

    def _read_join_build(self, query: Query):
        """Gather + decode a shipped join's build side (timed reads)."""
        return self._read_build_rows(query.join.build_table)

    def _read_build_rows(self, build):
        """Scatter-gathered raw read + decode of a build-side table."""
        if not isinstance(build, ShardedTable):
            raise QueryError(
                "cluster joins need the build table registered in the "
                "cluster catalog (create it with create_table)")
        data, _ = self.table_read(build)
        return build.schema.from_bytes(data), len(data)

    # -- versioned write path (two-phase epoch broadcast) --------------------
    def create_versioned_table(self, name: str, schema: Schema,
                               rows: np.ndarray,
                               partition: PartitionSpec | None = None
                               ) -> VersionedShardedTable:
        """Chunk-partition ``rows`` into per-node version chains.

        Only order-preserving ``chunk`` partitioning is supported (the
        global visible row order is shard-concatenation order, which is
        what keeps scatter-gather merges byte-identical to single-node
        execution); inserts append to the last shard for the same
        reason.
        """
        spec = partition if partition is not None else PartitionSpec()
        if not spec.order_preserving:
            raise QueryError(
                f"versioned cluster tables require 'chunk' partitioning, "
                f"got {spec.scheme!r}")
        if len(rows) == 0:
            raise QueryError(
                f"cannot shard empty versioned table {name!r}")
        if name in self.catalog:
            from ..common.errors import CatalogError
            raise CatalogError(f"table {name!r} already registered")
        indices = partition_indices(rows, schema, spec,
                                    self.cluster.num_nodes)
        shards: list[VersionedShard] = []
        try:
            for node_index, idx in enumerate(indices):
                if len(idx) == 0:
                    continue
                vt = self._clients[node_index].create_versioned_table(
                    f"{name}@{node_index}", schema, rows[idx])
                shards.append(VersionedShard(node_index, vt))
            sharded = VersionedShardedTable(name, schema, spec, shards)
            self.catalog.register(sharded)
        except Exception:
            for shard in shards:
                self._clients[shard.node_index].drop_table(shard.table)
            raise
        return sharded

    def snapshot(self, sharded: VersionedShardedTable) -> int:
        """The cluster-wide committed epoch (every shard agrees on it)."""
        sharded.check_epochs()
        return sharded.epoch

    def _commit_all(self, sharded: VersionedShardedTable,
                    prepared_by_shard: list) -> int:
        """Phase 2 of the epoch broadcast: commit every shard's prepared
        batch (no-op bumps included) and advance the cluster epoch.

        Contains no simulation yields, so between phase 1 and this call
        every reader still snapshots the old epoch on *all* shards, and
        after it every reader sees the new epoch on all shards — there
        is no interleaving in which a scatter-gather scan observes a
        half-committed write.
        """
        for shard, prepared in zip(sharded.shards, prepared_by_shard):
            kind, segment, num_rows, visible_change = prepared
            shard.table.commit_delta(kind, segment, num_rows,
                                     visible_change)
        sharded.epoch += 1
        sharded.check_epochs()
        return sharded.epoch

    def insert_proc(self, sharded: VersionedShardedTable, rows: np.ndarray):
        """Process: append ``rows`` cluster-wide (tail shard), two-phase."""
        rows = np.asarray(rows, dtype=sharded.schema.dtype)
        last = sharded.last_shard
        prepared = yield from self._clients[last.node_index] \
            ._prepare_insert_proc(last.table, rows)
        by_shard = [prepared if shard is last else ("insert", None, 0, 0)
                    for shard in sharded.shards]
        epoch = self._commit_all(sharded, by_shard)
        yield from self._views_after_commit_proc()
        return epoch

    @staticmethod
    def _guarded_proc(gen):
        """Process: run ``gen``, capturing any Farview error as a value.

        The two-phase writes scatter their prepares under this wrapper
        so one crashed shard cannot fail the whole AllOf before the
        other prepares report — phase 2 then aborts cleanly
        (:meth:`_commit_or_abort`) instead of leaving some shards
        prepared and others not.
        """
        try:
            value = yield from gen
        except FarviewError as exc:
            return ("err", exc)
        return ("ok", value)

    def _commit_or_abort(self, sharded: VersionedShardedTable,
                         outcomes: list) -> int:
        """Phase 2 of the epoch broadcast: commit everywhere, or abort.

        On any failed prepare the abort frees the prepared delta
        segments of the shards that *did* succeed (best effort — a dead
        node has nothing left to free), verifies no shard epoch moved,
        and re-raises the first failure.  A crash mid-write therefore
        never splits cluster epochs: either every shard commits in the
        atomic phase 2, or none does.
        """
        failures = [value for tag, value in outcomes if tag == "err"]
        if not failures:
            return self._commit_all(sharded,
                                    [value for _tag, value in outcomes])
        for (tag, value), shard in zip(outcomes, sharded.shards):
            if tag != "ok":
                continue
            _kind, segment, _num_rows, _visible = value
            if segment is None:
                continue
            client = self._clients[shard.node_index]
            try:
                client.node.free_table_mem(client.connection, segment)
            except FarviewError:
                pass
        sharded.check_epochs()
        raise failures[0]

    def update_where_proc(self, sharded: VersionedShardedTable,
                          predicate: Predicate | None, assignments: dict):
        """Process: scatter the offloaded read-modify-write, then commit
        every shard's epoch at once (two-phase broadcast)."""
        procs = [
            self.sim.process(
                self._guarded_proc(
                    self._clients[s.node_index]._prepare_update_proc(
                        s.table, predicate, assignments)),
                name=f"cluster.update[{s.table.name}]")
            for s in sharded.shards]
        outcomes = yield self.sim.all_of(procs)
        epoch = self._commit_or_abort(sharded, list(outcomes))
        yield from self._views_after_commit_proc()
        return epoch

    def delete_where_proc(self, sharded: VersionedShardedTable,
                          predicate: Predicate | None):
        """Process: scatter the offloaded delete, then commit all shards."""
        procs = [
            self.sim.process(
                self._guarded_proc(
                    self._clients[s.node_index]._prepare_delete_proc(
                        s.table, predicate)),
                name=f"cluster.delete[{s.table.name}]")
            for s in sharded.shards]
        outcomes = yield self.sim.all_of(procs)
        epoch = self._commit_or_abort(sharded, list(outcomes))
        yield from self._views_after_commit_proc()
        return epoch

    def compact_proc(self, sharded: VersionedShardedTable):
        """Process: fold every shard's delta chain (epoch unchanged)."""
        procs = [
            self.sim.process(
                self._clients[s.node_index].compact_proc(s.table),
                name=f"cluster.compact[{s.table.name}]")
            for s in sharded.shards
            if s.table.num_deltas > 0 and s.table.num_rows > 0]
        if procs:
            yield self.sim.all_of(procs)
        return sharded.epoch

    def scan_versioned_proc(self, sharded: VersionedShardedTable,
                            query: Query, as_of: int | None = None):
        """Process: scatter-gather snapshot scan.

        The cluster epoch is resolved once up front and every shard scan
        pins it locally (shard epochs always equal the cluster epoch),
        so the merged result is a consistent cluster-wide snapshot even
        with writers committing mid-scatter.
        """
        epoch = sharded.epoch if as_of is None else as_of
        plan = plan_scatter(query)
        start = self.sim.now
        shard_queries = {s.node_index: plan.shard_query
                         for s in sharded.shards}
        if query.join is not None:
            replicas = yield from self._ensure_join_replicas_proc(
                query.join.build_table)
            shard_queries = {
                idx: self._localize_join(plan.shard_query, replicas, idx)
                for idx in shard_queries}
        procs = [
            self.sim.process(
                self._clients[s.node_index].scan_versioned_proc(
                    s.table, shard_queries[s.node_index], epoch),
                name=f"cluster.vscan[{s.table.name}]")
            for s in sharded.shards]
        shard_results = yield self.sim.all_of(procs)
        return self._gather(sharded, query, plan, list(shard_results),
                            self.sim.now - start)

    def read_version_proc(self, sharded: VersionedShardedTable,
                          as_of: int | None = None):
        """Process: raw scatter reads + per-shard merges, shard order."""
        epoch = sharded.epoch if as_of is None else as_of
        procs = [
            self.sim.process(
                self._clients[s.node_index].read_version_proc(s.table,
                                                              epoch),
                name=f"cluster.vread[{s.table.name}]")
            for s in sharded.shards]
        parts = yield self.sim.all_of(procs)
        merged = np.concatenate([rows for rows, _ids, _n in parts])
        return merged

    # -- incremental view hooks (verbs in _ViewEngineMixin) --------------------
    def _view_chains(self, handle):
        if not isinstance(handle, VersionedShardedTable):
            raise QueryError(
                f"{getattr(handle, 'name', handle)!r} is not a versioned "
                f"table on this cluster")
        return [(self._clients[s.node_index], s.table)
                for s in handle.shards]

    def _view_static_read_proc(self, handle):
        data = yield from self.table_read_proc(handle)
        return handle.schema.from_bytes(data, copy=True), len(data)

    def _view_cpu(self) -> CpuCostModel:
        return self._clients[0]._cpu

    def _view_run(self, proc, name: str):
        return self._run_timed(proc, f"cluster.{name}")

    # -- versioned blocking conveniences --------------------------------------
    def insert(self, sharded: VersionedShardedTable, rows: np.ndarray):
        """Append rows cluster-wide; returns (new_epoch, elapsed_ns)."""
        return self._run_timed(self.insert_proc(sharded, rows),
                               "cluster.insert")

    def update_where(self, sharded: VersionedShardedTable,
                     predicate: Predicate | None, assignments: dict):
        """Cluster-wide UPDATE; returns (new_epoch, elapsed_ns)."""
        return self._run_timed(
            self.update_where_proc(sharded, predicate, assignments),
            "cluster.update_where")

    def delete_where(self, sharded: VersionedShardedTable,
                     predicate: Predicate | None):
        """Cluster-wide DELETE; returns (new_epoch, elapsed_ns)."""
        return self._run_timed(self.delete_where_proc(sharded, predicate),
                               "cluster.delete_where")

    def compact(self, sharded: VersionedShardedTable):
        """Compact every shard; returns (epoch, elapsed_ns)."""
        return self._run_timed(self.compact_proc(sharded),
                               "cluster.compact")

    def scan_versioned(self, sharded: VersionedShardedTable, query: Query,
                       as_of: int | None = None):
        """Scatter-gather snapshot scan; returns
        (ClusterQueryResult, elapsed_ns)."""
        return self._run_timed(
            self.scan_versioned_proc(sharded, query, as_of),
            "cluster.scan_versioned")

    def read_version(self, sharded: VersionedShardedTable,
                     as_of: int | None = None):
        """Cluster-wide visible byte image; returns (bytes, elapsed_ns)."""
        merged, elapsed = self._run_timed(
            self.read_version_proc(sharded, as_of), "cluster.read_version")
        return sharded.schema.to_bytes(merged), elapsed

    def _run_timed(self, proc, name: str):
        start = self.sim.now
        result = self.sim.run_process(proc, name)
        return result, self.sim.now - start

    # -- verbs as processes --------------------------------------------------
    def _shard_exec_proc(self, shard: TableShard, make_proc,
                         allow_degraded: bool):
        """Process: run one shard's request with failover + retries.

        Tries the primary, then each replica in fixed ring order
        (deterministic: which copy serves is a pure function of which
        nodes are up).  Within a candidate, typed fault errors retry
        under :attr:`retry_policy` with capped exponential backoff as
        long as the node stays usable; a completion past the policy
        deadline is discarded and counted as a timeout.  When every
        candidate is exhausted: raise the last fault error, or return
        :data:`_SHARD_LOST` when ``allow_degraded``.
        """
        policy = self.retry_policy
        last_exc: Exception | None = None
        for candidate in shard.candidates():
            if not self._node_usable(candidate.node_index,
                                     candidate.incarnation):
                last_exc = NodeFailedError(
                    f"node {candidate.node_index} is down or lost shard "
                    f"{candidate.table.name!r}")
                continue
            attempt = 0
            lock = self._conn_locks[candidate.node_index]
            while True:
                attempt += 1
                start = self.sim.now
                try:
                    yield from lock.acquire()
                    try:
                        result = yield from make_proc(candidate)
                    finally:
                        lock.release()
                except FaultError as exc:
                    last_exc = exc
                    if (policy is not None
                            and attempt < policy.max_attempts
                            and self._node_usable(candidate.node_index,
                                                  candidate.incarnation)):
                        yield self.sim.timeout(policy.backoff_ns(attempt))
                        continue
                    break  # fail over to the next candidate
                if (policy is not None and policy.deadline_ns is not None
                        and self.sim.now - start > policy.deadline_ns):
                    last_exc = RequestTimeoutError(
                        f"shard request {candidate.table.name!r} took "
                        f"{self.sim.now - start:.0f} ns (deadline "
                        f"{policy.deadline_ns:.0f} ns)")
                    if attempt < policy.max_attempts:
                        yield self.sim.timeout(policy.backoff_ns(attempt))
                        continue
                    break
                return result
        if allow_degraded:
            return _SHARD_LOST
        if last_exc is None:
            last_exc = NodeFailedError(
                f"shard {shard.table.name!r} has no live candidates")
        raise last_exc

    def table_read_proc(self, sharded: ShardedTable):
        """Process: scatter raw reads, gather bytes in shard order.

        Under ``chunk`` partitioning the concatenation is the original
        table image; other schemes return shard-order bytes.  A shard
        whose primary is down reads from a replica (byte-identical by
        construction), so the gathered image never changes under
        failover.
        """
        procs = [
            self.sim.process(
                self._shard_exec_proc(
                    s,
                    lambda candidate: self._clients[candidate.node_index]
                    .table_read_proc(candidate.table),
                    False),
                name=f"cluster.read[{s.table.name}]")
            for s in sharded.shards]
        chunks = yield self.sim.all_of(procs)
        return b"".join(chunks)

    def far_view_proc(self, sharded: ShardedTable, query: Query,
                      join_strategy: str | None = None):
        """Process: scatter the shard fragment, gather + merge results.

        Queries with a join place the build side first under the
        resolved strategy (:meth:`_resolve_join_strategy`):
        ``broadcast`` caches one full replica per node, ``shuffle``
        repartitions the build node→node on the fact's splitmix64
        placement hash, ``colocated`` moves nothing (both sides already
        hash-partitioned on the join key).  Each shard request fails
        over across its replica candidates (:meth:`_shard_exec_proc`);
        the join fragment is localized per candidate node lazily, so a
        failover probes against the surviving node's build copy.  Fact
        shards facing an empty build partition are answered client-side
        (inner join: nothing can match), and range-partitioned tables
        skip shards the predicate statically excludes
        (:func:`~repro.core.cluster.prune_scatter_shards`).
        """
        if isinstance(sharded, VersionedShardedTable):
            if join_strategy not in (None, "broadcast"):
                raise QueryError(
                    "versioned cluster scans broadcast their build side; "
                    f"join_strategy={join_strategy!r} is not available")
            result = yield from self.scan_versioned_proc(sharded, query)
            return result
        strategy = self._resolve_join_strategy(sharded, query, join_strategy)
        plan = plan_scatter(query, sharded, join_strategy=strategy)
        start = self.sim.now
        build = query.join.build_table if query.join is not None else None
        replicas = None
        fragments = None
        if strategy == "broadcast":
            replicas = yield from self._ensure_join_replicas_proc(build)
        elif strategy == "shuffle":
            fragments = yield from self._ensure_shuffle_fragments_proc(
                build, sharded, query.join.build_key)
        empty_parts: frozenset[int] = frozenset()
        if strategy == "colocated":
            present = {b.node_index for b in build.shards}
            empty_parts = frozenset(p for p in range(sharded.num_partitions)
                                    if p not in present)
        elif strategy == "shuffle":
            empty_parts = self._shuffle_empty.get(
                f"{build.name}->{sharded.name}", frozenset())

        def make_for(shard):
            partition = shard.node_index

            def make(candidate):
                if strategy == "broadcast":
                    q = self._localize_join(plan.shard_query, replicas,
                                            candidate.node_index)
                elif strategy == "colocated":
                    q = self._localize_colocated(plan.shard_query, build,
                                                 partition,
                                                 candidate.node_index)
                elif strategy == "shuffle":
                    q = self._localize_shuffle(plan.shard_query, fragments,
                                               partition,
                                               candidate.node_index)
                else:
                    q = plan.shard_query
                return self._clients[candidate.node_index].far_view_proc(
                    candidate.table, q)

            return make

        pruned = set(plan.pruned_nodes)
        slots: list = []
        procs: list = []
        for s in sharded.shards:
            if s.node_index in pruned:
                continue
            if s.node_index in empty_parts:
                slots.append(self._empty_shard_result(sharded, plan))
                continue
            procs.append(self.sim.process(
                self._shard_exec_proc(s, make_for(s), self.allow_degraded),
                name=f"cluster.farview[{s.table.name}]"))
            slots.append(None)
        if procs:
            live = iter((yield self.sim.all_of(procs)))
            shard_results = [next(live) if slot is None else slot
                             for slot in slots]
        else:
            shard_results = slots
        return self._gather(sharded, query, plan, shard_results,
                            self.sim.now - start)

    def _gather(self, sharded: ShardedTable, query: Query,
                plan: ScatterPlan, shard_results: list,
                elapsed_ns: float) -> ClusterQueryResult:
        """Client-side merge step of the scatter-gather execution.

        Shard slots holding :data:`_SHARD_LOST` (every replica gone,
        degraded mode) are excluded from the merge; the partial result
        then travels on a :class:`DegradedResultError` so a caller can
        never mistake it for a complete answer.
        """
        lost = tuple(i for i, r in enumerate(shard_results)
                     if r is _SHARD_LOST)
        survivors = [r for r in shard_results if r is not _SHARD_LOST]
        if not survivors:
            raise NodeFailedError(
                f"every shard of {sharded.name!r} is unavailable")
        parts = [r.rows() for r in survivors]
        stacked = np.concatenate(parts)
        if plan.mode == "group":
            assert query.group_by is not None
            merged = merge_group_rows(stacked, survivors[0].schema,
                                      sharded.schema, list(query.group_by),
                                      plan.shard_specs, plan.partial_plans)
            schema = group_output_schema(
                sharded.schema, list(query.group_by),
                [p.spec for p in plan.partial_plans])
        elif plan.mode == "aggregate":
            merged = merge_aggregate_rows(stacked, sharded.schema,
                                          plan.shard_specs,
                                          plan.partial_plans)
            schema = aggregate_output_schema(
                sharded.schema, [p.spec for p in plan.partial_plans])
        elif plan.mode == "distinct":
            schema = survivors[0].schema
            merged = merge_distinct_rows(stacked, schema,
                                         query.distinct_columns)
        else:
            schema = survivors[0].schema
            merged = stacked
        result = ClusterQueryResult(schema=schema, shard_results=survivors,
                                    response_time_ns=elapsed_ns,
                                    merged=merged,
                                    join_strategy=plan.join_strategy)
        if lost:
            raise DegradedResultError(
                f"{len(lost)} of {len(shard_results)} shards of "
                f"{sharded.name!r} unavailable", partial=result,
                failed_shards=lost)
        return result

    # -- blocking conveniences -----------------------------------------------
    def table_read(self, sharded: ShardedTable):
        """Scatter raw reads; returns (bytes, elapsed_ns)."""
        start = self.sim.now
        data = self.sim.run_process(self.table_read_proc(sharded),
                                    "cluster.table_read")
        return data, self.sim.now - start

    def far_view(self, sharded: ShardedTable, query: Query,
                 join_strategy: str | None = None):
        """Scatter-gather offloaded query; returns
        (ClusterQueryResult, elapsed_ns).

        ``join_strategy`` pins a join's build placement (one of
        :data:`~repro.core.cluster.JOIN_STRATEGIES`); ``None`` lets the
        cost model choose.
        """
        start = self.sim.now
        result = self.sim.run_process(
            self.far_view_proc(sharded, query, join_strategy=join_strategy),
            "cluster.far_view")
        return result, self.sim.now - start

    # -- cost-based placement (offload vs ship-to-compute) -------------------
    def plan(self, sharded: ShardedTable, query: Query,
             placement: str = "auto", stats: PlanStats | None = None,
             lease_manager=None,
             refuse_join_offload: bool = False,
             join_strategy: str | None = None) -> PlacementPlan:
        """Plan ``query`` over the pool: offload, ship, or hybrid.

        Estimates use pool-level cardinalities with per-shard streaming
        parallelism; the region-residency check samples the first
        shard's region (shards are deployed symmetrically).  An optional
        ``lease_manager`` folds per-shard lease contention into the
        offload side.  Join queries fold the resolved scatter strategy
        in: partitioned strategies size the per-node build at ``1/N``,
        an uncached shuffle charges its wire movement against the
        offload side, and the chosen strategy lands on the
        :class:`~repro.core.planner.ExplainPlan` (``ship`` when the
        join stays client-side).
        """
        first = sharded.shards[0]
        strategy = None
        join_transfer_ns = 0.0
        join_build_shards = 1
        if query.join is not None and not isinstance(
                sharded, VersionedShardedTable):
            strategy = self._resolve_join_strategy(sharded, query,
                                                   join_strategy)
            if strategy in ("colocated", "shuffle"):
                join_build_shards = sharded.num_partitions
            if strategy == "shuffle":
                build = query.join.build_table
                if f"{build.name}->{sharded.name}" \
                        not in self._shuffle_fragments:
                    model = PlacementCostModel(
                        self.cluster.config,
                        self._clients[first.node_index]._cpu)
                    join_transfer_ns = model.join_movement_ns(
                        "shuffle", build.size_bytes, sharded.num_partitions,
                        copies=min(sharded.partition.replicas,
                                   self.num_nodes))
        return plan_placement(
            query, first.table, self.cluster.nodes[0].config,
            placement=placement, stats=stats,
            cpu=self._clients[first.node_index]._cpu,
            loaded_signature=(self._clients[first.node_index]
                              .connection.region.loaded_pipeline),
            lease_manager=lease_manager,
            shards=len(sharded.shards), total_rows=sharded.num_rows,
            buffer_capacity=(self._clients[first.node_index]
                             ._buffer_capacity),
            refuse_join_offload=refuse_join_offload,
            join_strategy=strategy, join_transfer_ns=join_transfer_ns,
            join_build_shards=join_build_shards)

    def far_view_planned(self, sharded: ShardedTable, query: Query,
                         placement: str = "auto",
                         stats: PlanStats | None = None,
                         lease_manager=None,
                         join_strategy: str | None = None):
        """Scatter-gather execution under cost-based placement.

        Full offload is the legacy :meth:`far_view` path (byte- and
        timing-identical).  Ship/hybrid gathers the raw or partially
        reduced shard streams and runs the remainder in client software;
        merged-row order matches single-node execution under
        order-preserving ``chunk`` partitioning (the same contract as
        :meth:`table_read`).  Returns ``(result, elapsed_ns)``.
        """
        if isinstance(sharded, VersionedShardedTable):
            if placement not in ("offload", "auto"):
                raise QueryError(
                    "versioned cluster scans run offloaded only (per-"
                    "shard ship/hybrid placement is a single-node "
                    "feature); use placement='offload'")
            return self.far_view(sharded, query)
        try:
            return self._far_view_planned_once(sharded, query, placement,
                                               stats, lease_manager,
                                               join_strategy=join_strategy)
        except JoinBuildOverflowError:
            # Same fallback as the single-node client: a build load that
            # overflowed below nominal capacity reroutes to the client.
            if placement != "auto" or query.join is None:
                raise
            return self._far_view_planned_once(sharded, query, placement,
                                               stats, lease_manager,
                                               refuse_join_offload=True,
                                               join_strategy=join_strategy)
        except RegionFailedError:
            # A shard's dynamic region died; under auto, degrade to the
            # ship path — scatter raw reads need no regions.
            if placement != "auto":
                raise
            return self._far_view_planned_once(sharded, query, "ship",
                                               stats, lease_manager,
                                               join_strategy=join_strategy)

    def _far_view_planned_once(self, sharded: ShardedTable, query: Query,
                               placement: str, stats, lease_manager,
                               refuse_join_offload: bool = False,
                               join_strategy: str | None = None):
        plan = self.plan(sharded, query, placement, stats, lease_manager,
                         refuse_join_offload=refuse_join_offload,
                         join_strategy=join_strategy)
        cpu = self._clients[sharded.shards[0].node_index]._cpu
        if plan.full_offload:
            strat = (plan.explain.join_strategy
                     if plan.explain.join_strategy in JOIN_STRATEGIES
                     else None)
            result, elapsed = self.far_view(sharded, query,
                                            join_strategy=strat)
            plan.explain.actual_ns = elapsed
            result.explain = plan.explain
            return result, elapsed
        # decrypt_keys=None: the cluster layer does not shard encrypted
        # tables, so a client-side decrypt step fails loudly if reached.
        return _execute_planned(
            self.sim, plan, query, cpu,
            read_raw=lambda: self.table_read(sharded)[0],
            run_fragment=lambda fragment: self.far_view(sharded,
                                                        fragment)[0],
            schema=sharded.schema, decrypt_keys=None,
            read_build=lambda: self._read_join_build(query))

    # -- paper-style higher-level helpers ------------------------------------
    def select(self, sharded: ShardedTable, columns: list[str] | None,
               predicate: Predicate, vectorized: bool = False,
               placement: str = "offload",
               stats: PlanStats | None = None):
        """``SELECT columns FROM sharded WHERE predicate``, pool-wide.

        ``placement`` routes through the cost-based planner exactly as
        on the single-node client.
        """
        query = Query(projection=tuple(columns) if columns else None,
                      predicate=predicate, vectorized=vectorized,
                      label="select")
        if placement == "offload":
            return self.far_view(sharded, query)
        return self.far_view_planned(sharded, query, placement, stats)

    def select_distinct(self, sharded: ShardedTable, columns: list[str]):
        query = Query(projection=tuple(columns), distinct=True,
                      label="distinct")
        return self.far_view(sharded, query)

    def group_by(self, sharded: ShardedTable, keys: list[str],
                 aggregates: list[AggregateSpec]):
        query = Query(group_by=tuple(keys), aggregates=tuple(aggregates),
                      label="group_by")
        return self.far_view(sharded, query)

    def sql(self, statement: str, placement: str | None = None,
            stats: PlanStats | None = None):
        """Parse and scatter one SQL statement against the cluster catalog.

        The FROM table must have been created via :meth:`create_table`.
        Placement precedence matches the single-node client: argument,
        then ``/*+ placement(...) */`` hint, then full offload.  Write
        statements (INSERT / UPDATE / DELETE) commit through the
        two-phase epoch broadcast and return ``(new_epoch, elapsed_ns)``.
        Returns ``(result, elapsed_ns)``.
        """
        from .sql import ParsedWrite, parse_sql, resolve_join_query

        parsed = parse_sql(statement)
        sharded = self.catalog.lookup(parsed.table)
        if isinstance(parsed, ParsedWrite):
            return _dispatch_sql_write(self, sharded, parsed,
                                       VersionedShardedTable)
        if getattr(parsed, "extended", False):
            placement = placement or parsed.placement or "offload"
            return _execute_compiled(self, parsed, placement, stats)
        query = parsed.query
        if parsed.join is not None:
            build = self.catalog.lookup(parsed.join.table)
            query = resolve_join_query(parsed, sharded.schema, build)
        placement = placement or parsed.placement or "offload"
        if placement == "offload":
            return self.far_view(sharded, query)
        return self.far_view_planned(sharded, query, placement, stats)
