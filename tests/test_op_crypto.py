"""AES-128-CTR: FIPS-197 / SP 800-38A vectors and stream properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OperatorError
from repro.operators.crypto import (
    INV_SBOX,
    SBOX,
    AesCtr,
    encrypt_block,
    encrypt_blocks,
    expand_key,
)
from repro.operators.encryption_op import (
    DecryptOperator,
    EncryptOperator,
    decrypt_table_image,
    encrypt_table_image,
)

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# NIST SP 800-38A F.5.1 CTR-AES128.Encrypt
SP_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafb")  # first 12 counter bytes
SP_FIRST_COUNTER = 0xFCFDFEFF                          # last 4 counter bytes
SP_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")
SP_CT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee")


# --- S-box derivation --------------------------------------------------------------

def test_sbox_known_entries():
    # FIPS-197 figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_inverts():
    values = np.arange(256, dtype=np.uint8)
    np.testing.assert_array_equal(INV_SBOX[SBOX[values]], values)


# --- key expansion -------------------------------------------------------------------

def test_key_expansion_first_and_last_round_keys():
    rk = expand_key(FIPS_KEY)
    assert rk.shape == (11, 16)
    assert rk[0].tobytes() == FIPS_KEY
    # FIPS-197 A.1 final round key for the sequential 00..0f key.
    assert rk[10].tobytes().hex() == "13111d7fe3944a17f307a78b4d2b30c5"


def test_key_expansion_rejects_bad_key():
    with pytest.raises(OperatorError):
        expand_key(b"short")


# --- block encryption ------------------------------------------------------------------

def test_fips197_appendix_c1():
    assert encrypt_block(FIPS_PT, FIPS_KEY) == FIPS_CT


def test_encrypt_blocks_vectorized_matches_scalar():
    rk = expand_key(FIPS_KEY)
    blocks = np.frombuffer(FIPS_PT * 4, dtype=np.uint8).reshape(4, 16)
    out = encrypt_blocks(blocks, rk)
    for row in out:
        assert row.tobytes() == FIPS_CT


def test_encrypt_block_rejects_bad_size():
    with pytest.raises(OperatorError):
        encrypt_block(b"tiny", FIPS_KEY)


# --- CTR mode ------------------------------------------------------------------------------

def test_sp800_38a_ctr_vector():
    ctr = AesCtr(SP_KEY, SP_NONCE)
    ct = ctr.process(SP_PT, byte_offset=SP_FIRST_COUNTER * 16)
    assert ct == SP_CT


def test_ctr_round_trip():
    ctr = AesCtr(FIPS_KEY, b"\x00" * 12)
    data = bytes(range(256)) * 10
    assert ctr.process(ctr.process(data)) == data


def test_ctr_is_seekable():
    ctr = AesCtr(FIPS_KEY, b"\x01" * 12)
    data = b"A" * 64
    whole = ctr.process(data, 0)
    # Encrypt the second 32 bytes independently at offset 32.
    part = ctr.process(data[32:], 32)
    assert part == whole[32:]


def test_ctr_rejects_unaligned_offset():
    ctr = AesCtr(FIPS_KEY, b"\x00" * 12)
    with pytest.raises(OperatorError):
        ctr.process(b"x" * 16, byte_offset=8)


def test_ctr_nonce_must_be_12_bytes():
    with pytest.raises(OperatorError):
        AesCtr(FIPS_KEY, b"\x00" * 16)


def test_ctr_different_nonces_differ():
    a = AesCtr(FIPS_KEY, b"\x00" * 12).process(b"Z" * 32)
    b = AesCtr(FIPS_KEY, b"\x01" + b"\x00" * 11).process(b"Z" * 32)
    assert a != b


def test_ctr_empty_input():
    ctr = AesCtr(FIPS_KEY, b"\x00" * 12)
    assert ctr.process(b"") == b""
    assert len(ctr.keystream(0, 0)) == 0


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=1000))
def test_ctr_round_trip_property(data):
    ctr = AesCtr(FIPS_KEY, b"\x07" * 12)
    assert ctr.process(ctr.process(data)) == data


# --- streaming operators ------------------------------------------------------------------

def test_decrypt_operator_streams_arbitrary_chunks():
    key, nonce = FIPS_KEY, b"\x02" * 12
    plain = bytes(range(256)) * 8
    cipher = encrypt_table_image(plain, key, nonce)
    op = DecryptOperator(key, nonce)
    out = b""
    # Chunk sizes deliberately not multiples of 16.
    for cut in (0, 7, 100, 333, len(cipher)):
        pass
    chunks = [cipher[0:7], cipher[7:100], cipher[100:333], cipher[333:]]
    for chunk in chunks:
        out += op.process(chunk)
    out += op.finish()
    assert out == plain


def test_encrypt_then_decrypt_operators_compose():
    key, nonce = FIPS_KEY, b"\x03" * 12
    plain = b"farview" * 100
    enc = EncryptOperator(key, nonce)
    dec = DecryptOperator(key, nonce)
    middle = enc.process(plain) + enc.finish()
    out = dec.process(middle) + dec.finish()
    assert out == plain


def test_table_image_round_trip():
    key, nonce = FIPS_KEY, b"\x04" * 12
    image = b"\x55" * 4096
    assert decrypt_table_image(encrypt_table_image(image, key, nonce),
                               key, nonce) == image


def test_encrypt_table_rejects_empty():
    with pytest.raises(OperatorError):
        encrypt_table_image(b"", FIPS_KEY, b"\x00" * 12)


def test_ciphertext_looks_random():
    """Sanity: encrypting zeros yields ~uniform bytes (entropy check)."""
    ct = encrypt_table_image(b"\x00" * 65536, FIPS_KEY, b"\x08" * 12)
    counts = np.bincount(np.frombuffer(ct, dtype=np.uint8), minlength=256)
    # Each value should appear ~256 times; allow generous spread.
    assert counts.min() > 128 and counts.max() < 512
