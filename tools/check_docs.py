#!/usr/bin/env python
"""Docs smoke check: references, intra-doc anchors, operator coverage.

Three guards, all run by ``main``:

1. **File references** — every backtick-quoted repo path in the docs must
   exist (the guard against dangling references like the pre-PR-2
   ``EXPERIMENTS.md`` pointer in ``cli.py``). Illustrative output names
   (``out.csv`` …) are allowlisted.
2. **Anchor links** — every markdown ``[text](#anchor)`` (and
   ``[text](path#anchor)``) must resolve to a heading in the target doc,
   using GitHub's slugging rules.
3. **Operator coverage** — every module under ``src/repro/operators/``
   must have its own section heading in ``docs/OPERATORS.md`` (the
   operator reference may not rot as operators are added).

Usage::

    python tools/check_docs.py          # exit 0 iff all checks pass
"""

from __future__ import annotations

import posixpath
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOCS = ("README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md",
        "docs/OPERATORS.md", "docs/FAULTS.md", "docs/SQL.md",
        "docs/VIEWS.md", "docs/SERVING.md")

#: Roots a doc reference may be relative to (ARCHITECTURE.md abbreviates
#: module paths as "under src/repro/", per its own preamble).
BASES = (".", "src", "src/repro")

#: Names that appear in docs as *outputs* or placeholders, not repo files.
IGNORE = {"out.csv", "results.csv"}

#: Backtick-quoted tokens that look like file/dir paths:
#: contain a slash and/or end in a known extension.
_CANDIDATE = re.compile(
    r"`([A-Za-z0-9_.\-/]+(?:\.(?:py|md|json|yml|yaml|toml|txt|csv)|/))`")

#: Markdown headings (ATX style), for anchor resolution.
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

#: Fenced code blocks — stripped before heading scans so '#'-prefixed
#: shell comments inside snippets cannot register as phantom headings.
_FENCE = re.compile(r"^```.*?^```[^\n]*$", re.MULTILINE | re.DOTALL)


def strip_code_blocks(text: str) -> str:
    return _FENCE.sub("", text)

#: Markdown links whose target contains an anchor: [text](#a), [text](p#a).
_ANCHOR_LINK = re.compile(r"\[[^\]]+\]\(([^)\s#]*)#([^)\s]+)\)")


def referenced_paths(text: str) -> set[str]:
    found = set()
    for match in _CANDIDATE.finditer(text):
        token = match.group(1).rstrip("/")
        if token in IGNORE or not token:
            continue
        # Globby references ("bench_fig*.py") check their parent dir.
        if "*" in token:
            token = str(Path(token).parent)
            if token == ".":
                continue
        found.add(token)
    return found


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, drop anything that is
    not a word character / space / hyphen, spaces become hyphens."""
    text = heading.strip().lower()
    # Strip inline markdown formatting markers. Literal underscores are
    # kept — GitHub only drops them when they delimit emphasis, and the
    # docs here use underscores solely in module names.
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(text: str) -> set[str]:
    slugs: set[str] = set()
    for match in _HEADING.finditer(strip_code_blocks(text)):
        slug = github_slug(match.group(1))
        # GitHub de-duplicates repeats as slug-1, slug-2, ...; the docs
        # here keep headings unique, so the base slug suffices.
        slugs.add(slug)
    return slugs


def anchor_links(text: str) -> list[tuple[str, str]]:
    """All (target_path, anchor) pairs; target_path '' means same doc."""
    return [(m.group(1), m.group(2)) for m in _ANCHOR_LINK.finditer(text)]


def check_anchors() -> list[tuple[str, str]]:
    """Return (doc, broken-link-description) pairs."""
    texts = {doc: (REPO / doc).read_text()
             for doc in DOCS if (REPO / doc).exists()}
    slugs = {doc: heading_slugs(text) for doc, text in texts.items()}
    broken: list[tuple[str, str]] = []
    for doc, text in texts.items():
        # Strip fences for link extraction too: example links inside
        # code blocks are illustrative, not navigable anchors.
        for target, anchor in anchor_links(strip_code_blocks(text)):
            if re.match(r"^[a-z][a-z0-9+.\-]*:", target, re.IGNORECASE):
                continue  # external URL (https://...#fragment)
            if target:
                # Resolve a cross-doc link relative to this doc's folder;
                # normalize so "../README.md" maps onto the DOCS key.
                target_path = posixpath.normpath(
                    (Path(doc).parent / target).as_posix())
                if target_path not in texts:
                    if not (REPO / target_path).exists():
                        broken.append((doc, f"{target}#{anchor} "
                                            f"(missing target doc)"))
                    continue  # a non-doc file cannot be anchor-checked
                target_slugs = slugs[target_path]
            else:
                target_slugs = slugs[doc]
            # Case-sensitive on purpose: GitHub renders lowercase anchors
            # and fragment matching is case-sensitive, so a mixed-case
            # link is broken even when the heading text matches.
            if anchor not in target_slugs:
                broken.append((doc, f"{target}#{anchor}"))
    return broken


def operators_missing_sections() -> list[str]:
    """Operator modules without their own heading in docs/OPERATORS.md."""
    doc_path = REPO / "docs/OPERATORS.md"
    if not doc_path.exists():
        return ["<docs/OPERATORS.md itself>"]
    text = strip_code_blocks(doc_path.read_text())
    headings = [match.group(1) for match in _HEADING.finditer(text)]
    missing = []
    for module in sorted((REPO / "src/repro/operators").glob("*.py")):
        if module.name.startswith("_"):
            continue  # __init__ re-exports; it is not an operator
        if not any(module.name in heading for heading in headings):
            missing.append(module.name)
    return missing


def main() -> int:
    missing: list[tuple[str, str]] = []
    checked = 0
    for doc in DOCS:
        doc_path = REPO / doc
        if not doc_path.exists():
            missing.append((doc, "<the doc itself>"))
            continue
        for ref in sorted(referenced_paths(doc_path.read_text())):
            checked += 1
            if not any((REPO / base / ref).exists() for base in BASES):
                missing.append((doc, ref))
    for doc, link in check_anchors():
        missing.append((doc, f"broken anchor {link}"))
    for module in operators_missing_sections():
        missing.append(("docs/OPERATORS.md", f"no section for {module}"))
    if missing:
        for doc, ref in missing:
            print(f"MISSING: {doc} references {ref!r}", file=sys.stderr)
        return 1
    print(f"docs ok: {checked} references across {len(DOCS)} docs resolve; "
          f"anchors and operator sections complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
