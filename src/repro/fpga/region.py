"""Dynamic regions: allocation and runtime partial reconfiguration (§3.2, §4.5).

The FPGA is divided into pre-defined, fixed-size dynamic regions.  Each
serves one client connection and hosts one operator pipeline.  Pipelines
are swapped at runtime ("on the order of milliseconds, depending on the
size of the region") without disturbing other regions.
"""

from __future__ import annotations

import enum

from ..common.config import OperatorStackConfig
from ..common.errors import (OperatorError, RegionFailedError,
                             RegionUnavailableError)
from ..sim.engine import Simulator


class RegionState(enum.Enum):
    FREE = "free"
    CONFIGURING = "configuring"
    READY = "ready"
    #: The region hardware failed (fault injection): it serves nothing and
    #: is never allocated until repaired.
    FAILED = "failed"


class DynamicRegion:
    """One isolated, reconfigurable slot in the operator stack."""

    def __init__(self, sim: Simulator, config: OperatorStackConfig, index: int):
        self.sim = sim
        self.config = config
        self.index = index
        self.state = RegionState.FREE
        self.loaded_pipeline: str | None = None
        self.owner_qp: int | None = None
        self.reconfigurations = 0
        self.failures = 0

    def assign(self, qp_id: int) -> None:
        if self.state is not RegionState.FREE:
            raise OperatorError(
                f"region {self.index} is {self.state.value}, cannot assign")
        self.owner_qp = qp_id

    def release(self) -> None:
        if self.state is RegionState.FAILED:
            # A failed region drops its owner but stays failed until
            # repaired — it must never be handed to the next connection.
            self.loaded_pipeline = None
            self.owner_qp = None
            return
        self.state = RegionState.FREE
        self.loaded_pipeline = None
        self.owner_qp = None

    def fail(self) -> None:
        """Fault injection: the region hardware dies mid-pipeline.  Any
        resident pipeline is lost; queries touching it raise
        :class:`~repro.common.errors.RegionFailedError`."""
        self.state = RegionState.FAILED
        self.loaded_pipeline = None
        self.failures += 1

    def repair(self) -> None:
        """Fault injection: bring a failed region back (empty — the owner,
        if still connected, reconfigures on its next query)."""
        if self.state is not RegionState.FAILED:
            return
        self.state = (RegionState.FREE if self.owner_qp is None
                      else RegionState.READY)

    def load_pipeline(self, pipeline_name: str):
        """Process: partial reconfiguration of this region (ms-scale).

        Loading the pipeline that is already resident is free — the paper's
        pipelines are precompiled bitstreams cached per query shape.
        """
        if self.state is RegionState.FAILED:
            raise RegionFailedError(f"region {self.index} has failed")
        if self.owner_qp is None:
            raise OperatorError(f"region {self.index} has no owner")
        if self.state is RegionState.CONFIGURING:
            raise OperatorError(f"region {self.index} is mid-reconfiguration")
        if self.loaded_pipeline == pipeline_name:
            self.state = RegionState.READY
            return
        self.state = RegionState.CONFIGURING
        yield self.sim.timeout(self.config.reconfiguration_ns)
        if self.state is RegionState.FAILED:
            # The region died during reconfiguration.
            raise RegionFailedError(
                f"region {self.index} failed mid-reconfiguration")
        self.loaded_pipeline = pipeline_name
        self.state = RegionState.READY
        self.reconfigurations += 1

    def __repr__(self) -> str:
        return (f"DynamicRegion({self.index}, {self.state.value}, "
                f"pipeline={self.loaded_pipeline!r}, qp={self.owner_qp})")


class RegionManager:
    """Allocates the fixed pool of dynamic regions to client connections."""

    def __init__(self, sim: Simulator, config: OperatorStackConfig):
        self.sim = sim
        self.config = config
        self.regions = [DynamicRegion(sim, config, i)
                        for i in range(config.regions)]

    def acquire(self, qp_id: int) -> DynamicRegion:
        """Assign a free region to a connection, or raise."""
        for region in self.regions:
            if region.state is RegionState.FREE and region.owner_qp is None:
                region.assign(qp_id)
                return region
        raise RegionUnavailableError(
            f"all {len(self.regions)} dynamic regions are in use")

    def release(self, region: DynamicRegion) -> None:
        region.release()

    def region_of(self, qp_id: int) -> DynamicRegion:
        for region in self.regions:
            if region.owner_qp == qp_id:
                return region
        raise OperatorError(f"no region owned by QP {qp_id}")

    @property
    def free_count(self) -> int:
        return sum(1 for r in self.regions
                   if r.state is RegionState.FREE and r.owner_qp is None)
