"""Comparison baselines: LCPU, RCPU, RNIC (paper §6.1)."""

from .cpu_model import CostBreakdown, CpuCostModel
from .hashmap import SoftwareHashMap
from .lcpu import LcpuBaseline
from .rcpu import RcpuBaseline
from .rnic import RnicBaseline
from .sw_ops import (
    software_decrypt,
    software_distinct,
    software_groupby,
    software_project,
    software_regex,
    software_select,
)

__all__ = [
    "CostBreakdown",
    "CpuCostModel",
    "SoftwareHashMap",
    "LcpuBaseline",
    "RcpuBaseline",
    "RnicBaseline",
    "software_decrypt",
    "software_distinct",
    "software_groupby",
    "software_project",
    "software_regex",
    "software_select",
]
