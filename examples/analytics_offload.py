"""Analytical query offloading: TPC-H-style Q6 and Q1 fragments.

The paper motivates Farview with exactly these two query shapes (§1, §5):

* **Q6** — a highly selective scan (~2% of tuples survive): pushing the
  filter into disaggregated memory slashes network traffic by ~50x.
* **Q1** — GROUP BY with aggregation over two flag columns: the entire
  table collapses to six result rows before touching the network.

The example reports the data-movement savings and compares Farview
against the LCPU/RCPU baselines on the same workload.

Run:  python examples/analytics_offload.py
"""

from repro.baselines.lcpu import LcpuBaseline
from repro.baselines.rcpu import RcpuBaseline
from repro.common.units import to_us
from repro.core.api import FarviewClient
from repro.core.node import FarviewNode
from repro.core.table import FTable
from repro.sim.engine import Simulator
from repro.workloads.tpch import LINEITEM_SCHEMA, lineitem, q1_query, q6_query

NUM_ROWS = 16_384  # 1 MB of lineitem


def main() -> None:
    sim = Simulator()
    node = FarviewNode(sim)
    client = FarviewClient(node)
    client.open_connection()

    rows = lineitem(NUM_ROWS)
    table = FTable("lineitem", LINEITEM_SCHEMA, len(rows))
    client.alloc_table_mem(table)
    client.table_write(table, rows)
    print(f"lineitem: {NUM_ROWS} rows, {table.size_bytes} bytes")

    # ---- Q6: selective scan ---------------------------------------------------
    q6 = q6_query()
    client.far_view(table, q6)                       # deploy pipeline
    result, elapsed = client.far_view(table, q6)     # warm measurement
    survivors = result.rows()
    selectivity = len(survivors) / NUM_ROWS
    revenue = float((survivors["extendedprice"] * survivors["discount"]).sum())
    reduction = table.size_bytes / max(1, result.report.bytes_shipped)
    print(f"\nQ6 fragment: {len(survivors)} rows ({selectivity:.1%} "
          f"selectivity, paper quotes ~2%)")
    print(f"  revenue = {revenue:,.2f}")
    print(f"  FV: {to_us(elapsed):.1f} us; network traffic reduced "
          f"{reduction:.0f}x by the pushdown")

    _, t_l, _ = LcpuBaseline().select(LINEITEM_SCHEMA, rows, q6.predicate)
    _, t_r, _ = RcpuBaseline().select(LINEITEM_SCHEMA, rows, q6.predicate)
    print(f"  LCPU: {to_us(t_l):.1f} us   RCPU: {to_us(t_r):.1f} us")

    # ---- Q1: group-by aggregation ------------------------------------------------
    q1 = q1_query()
    client.far_view(table, q1)
    result, elapsed = client.far_view(table, q1)
    groups = result.rows()
    print(f"\nQ1 fragment: {len(groups)} groups "
          f"(returnflag x linestatus) in {to_us(elapsed):.1f} us, "
          f"{result.report.bytes_shipped} bytes shipped")
    for row in sorted(groups.tolist()):
        flag, status, qty, price, disc, count = row
        print(f"  flag={flag} status={status}: count={count}, "
              f"sum_qty={qty:,.0f}, avg_disc={disc:.3f}")

    # Validate against a straightforward pandas-style computation.
    check: dict[tuple[int, int], int] = {}
    for r in rows:
        key = (int(r["returnflag"]), int(r["linestatus"]))
        check[key] = check.get(key, 0) + 1
    got = {(int(g["returnflag"]), int(g["linestatus"])): int(g["count_order"])
           for g in groups}
    assert got == check, "group-by result mismatch"
    print("\nQ1 counts verified against local recomputation. done.")


if __name__ == "__main__":
    main()
