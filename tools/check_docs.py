#!/usr/bin/env python
"""Docs smoke check: every file path referenced from the docs must exist.

Scans README.md, EXPERIMENTS.md and docs/ARCHITECTURE.md for
backtick-quoted repo paths (and table cells that look like paths) and
fails if any referenced file or directory is missing — the guard against
dangling references like the pre-PR-2 ``EXPERIMENTS.md`` pointer in
``cli.py``. Illustrative output names (``out.csv`` …) are allowlisted.

Usage::

    python tools/check_docs.py          # exit 0 iff all references resolve
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOCS = ("README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md")

#: Roots a doc reference may be relative to (ARCHITECTURE.md abbreviates
#: module paths as "under src/repro/", per its own preamble).
BASES = (".", "src", "src/repro")

#: Names that appear in docs as *outputs* or placeholders, not repo files.
IGNORE = {"out.csv", "results.csv"}

#: Backtick-quoted tokens that look like file/dir paths:
#: contain a slash and/or end in a known extension.
_CANDIDATE = re.compile(
    r"`([A-Za-z0-9_.\-/]+(?:\.(?:py|md|json|yml|yaml|toml|txt|csv)|/))`")


def referenced_paths(text: str) -> set[str]:
    found = set()
    for match in _CANDIDATE.finditer(text):
        token = match.group(1).rstrip("/")
        if token in IGNORE or not token:
            continue
        # Globby references ("bench_fig*.py") check their parent dir.
        if "*" in token:
            token = str(Path(token).parent)
            if token == ".":
                continue
        found.add(token)
    return found


def main() -> int:
    missing: list[tuple[str, str]] = []
    checked = 0
    for doc in DOCS:
        doc_path = REPO / doc
        if not doc_path.exists():
            missing.append((doc, "<the doc itself>"))
            continue
        for ref in sorted(referenced_paths(doc_path.read_text())):
            checked += 1
            if not any((REPO / base / ref).exists() for base in BASES):
                missing.append((doc, ref))
    if missing:
        for doc, ref in missing:
            print(f"MISSING: {doc} references {ref!r}", file=sys.stderr)
        return 1
    print(f"docs ok: {checked} references across {len(DOCS)} docs resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
