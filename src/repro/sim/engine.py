"""Discrete-event simulation kernel.

A compact, dependency-free engine in the style of SimPy: *processes* are
Python generators that ``yield`` events (timeouts, queue operations, other
processes) and are resumed by the event loop when those events fire.  Time is
a float in **nanoseconds** (see :mod:`repro.common.units`).

The kernel is deliberately small — just enough to model pipelined hardware:
packet streams, bandwidth-limited channels, credit-based backpressure — while
staying fast enough to push megabytes of simulated traffic per experiment.

Example::

    sim = Simulator()

    def producer(env, store):
        for i in range(3):
            yield env.timeout(10.0)
            yield store.put(i)

    # (see repro.sim.resources for Store)
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..common.errors import FarviewError


class SimulationError(FarviewError):
    """The event loop detected an inconsistency (e.g. deadlock)."""


class Event:
    """A one-shot occurrence with an optional value.

    Callbacks registered via :meth:`add_callback` run when the event is
    triggered.  Events may be triggered immediately (:meth:`succeed`) or
    scheduled through :meth:`Simulator.schedule_event`.
    """

    __slots__ = ("sim", "_value", "_ok", "triggered", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self.triggered = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Late subscribers run at the current time, preserving ordering.
            self.sim._immediate(fn, self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.triggered = True
        if self._callbacks:
            self.sim._immediate_all(self._callbacks, self)
            self._callbacks.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event now with an exception to raise in the waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = exc
        self._ok = False
        self.triggered = True
        if self._callbacks:
            self.sim._immediate_all(self._callbacks, self)
            self._callbacks.clear()
        return self


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any = None) -> None:
        self._value = value
        self.triggered = True
        for fn in self._callbacks:
            fn(self)
        self._callbacks.clear()


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process returns.

    The process generator yields :class:`Event` instances; the returned value
    of the generator becomes the value of this event.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        sim.schedule(0.0, self._resume, None, True)

    def _resume(self, event_value: Any = None, ok: bool = True) -> None:
        try:
            if ok:
                target = self._gen.send(event_value)
            else:
                target = self._gen.throw(event_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Exception as exc:
            # The process died: fail its completion event so waiters
            # (AllOf compositions, processes yielding on it) receive the
            # exception at their resume point instead of it escaping the
            # event loop and tearing down unrelated processes.
            # run_process re-raises it for top-level callers.
            self._value = exc
            self._ok = False
            self.triggered = True
            if self._callbacks:
                self.sim._immediate_all(self._callbacks, self)
                self._callbacks.clear()
            return
        if type(target) is not Event and not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances")
        if target.triggered:
            self.sim._immediate(self._on_event, target)
        else:
            target._callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._resume(event._value, event._ok)

    def _finish(self, value: Any) -> None:
        self._value = value
        self.triggered = True
        if self._callbacks:
            self.sim._immediate_all(self._callbacks, self)
            self._callbacks.clear()


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    A failed child fails the whole composition: the first child exception
    propagates to the waiter as soon as it fires (remaining children still
    run, but their completions are ignored).
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            sim._immediate(self.succeed, [])
        else:
            for ev in self._events:
                ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self._events])


class Simulator:
    """The event loop: a time-ordered heap plus an immediate-callback deque.

    Zero-delay work (event callbacks, process hand-offs) dominates the
    schedule in pipelined models, so it bypasses the heap entirely: it is
    appended to a FIFO deque and drained at the current timestamp.  Every
    callback — heap or deque — carries a ticket from one shared counter and
    the loop always executes the lowest ticket among entries due *now*, so
    the execution order is identical to a pure-heap engine.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._imm: deque[tuple[int, Callable, tuple]] = deque()
        self._counter = itertools.count()
        self._running = False
        #: Total callbacks executed across all runs (perf harness metric).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns."""
        if delay == 0.0:
            self._imm.append((next(self._counter), fn, args))
            return
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), fn, args))

    def _immediate(self, fn: Callable, *args: Any) -> None:
        """Queue ``fn(*args)`` at the current time (fast path, no heap)."""
        self._imm.append((next(self._counter), fn, args))

    def _immediate_all(self, fns: list[Callable], event: "Event") -> None:
        """Queue ``fn(event)`` for every callback, preserving FIFO order."""
        imm = self._imm
        counter = self._counter
        for fn in fns:
            imm.append((next(counter), fn, (event,)))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- running --------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap (optionally stopping at time ``until``).

        Returns the simulation time when the loop stopped.  ``max_events``
        guards against runaway loops in buggy models.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        imm = self._imm
        heap = self._heap
        heappop = heapq.heappop
        steps = 0
        try:
            while imm or heap:
                # Deque entries are due at the current time; a heap entry due
                # now with a lower ticket was scheduled earlier and runs first.
                if imm:
                    if until is not None and self._now > until:
                        self._now = until
                        break
                    if heap and heap[0][0] <= self._now and heap[0][1] < imm[0][0]:
                        _t, _seq, fn, args = heappop(heap)
                    else:
                        _seq, fn, args = imm.popleft()
                else:
                    time, _seq, fn, args = heap[0]
                    if until is not None and time > until:
                        self._now = until
                        break
                    heappop(heap)
                    self._now = time
                fn(*args)
                steps += 1
                if steps > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a runaway model")
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self.events_processed += steps
            self._running = False
        return self._now

    def run_process(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Convenience: register ``gen``, drain the loop, return its value.

        Raises if the process did not complete (deadlock in the model).
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never completed (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
