"""FPGA resource accounting — reproduces Table 1 of the paper.

The paper reports utilization of the deployed system on a Xilinx Alveo u250
(Table 1): the 6-region configuration consumes 24% of CLB LUTs, 23% of
registers, 29% of BRAM tiles and no DSPs; individual operators add small
per-region increments.

We model the device inventory and a component cost table so that (a) the
bench regenerates Table 1 and (b) deploying pipelines at runtime tracks
whether a configuration still fits ("Farview does not utilize more than
30% of the total on-chip resources", §6.1).

Decomposition assumption: the paper only reports the aggregate for the
6-region configuration.  We split it into a fixed *shell* share (network
stack + memory stack/MMU + management) and a per-region share such that
shell + 6 x region reproduces the published row; the split is documented
in the constants below and the invariant is tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError, OperatorError

#: Xilinx Alveo u250 device inventory (product brief).
U250_LUTS = 1_728_000
U250_REGS = 3_456_000
U250_BRAM_TILES = 2_688
U250_DSPS = 12_288


@dataclass(frozen=True)
class ResourceVector:
    """Resource usage as fractions of the whole device (0..1 per field)."""

    luts: float = 0.0
    regs: float = 0.0
    bram: float = 0.0
    dsps: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("luts", "regs", "bram", "dsps"):
            value = getattr(self, field_name)
            if value < 0 or value > 1:
                raise ConfigurationError(
                    f"{field_name} fraction out of [0, 1]: {value}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            min(1.0, self.luts + other.luts),
            min(1.0, self.regs + other.regs),
            min(1.0, self.bram + other.bram),
            min(1.0, self.dsps + other.dsps),
        )

    def scaled(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ConfigurationError(f"negative scale factor: {factor}")
        return ResourceVector(self.luts * factor, self.regs * factor,
                              self.bram * factor, self.dsps * factor)

    def as_percentages(self) -> tuple[float, float, float, float]:
        return (self.luts * 100, self.regs * 100,
                self.bram * 100, self.dsps * 100)


#: Aggregate published in Table 1 for the full 6-region system.
SYSTEM_6_REGIONS = ResourceVector(luts=0.24, regs=0.23, bram=0.29, dsps=0.0)

#: Shell share (network stack + memory stack/MMU + management logic).  The
#: paper attributes "the majority of the utilized on-chip memory ... to the
#: memory management unit and the state keeping structures of the operator
#: and network stack" (§6.1) — hence the BRAM-heavy shell.
SHELL = ResourceVector(luts=0.14, regs=0.14, bram=0.20, dsps=0.0)

#: Per-region infrastructure share: (system - shell) / 6.
PER_REGION = ResourceVector(
    luts=(SYSTEM_6_REGIONS.luts - SHELL.luts) / 6,
    regs=(SYSTEM_6_REGIONS.regs - SHELL.regs) / 6,
    bram=(SYSTEM_6_REGIONS.bram - SHELL.bram) / 6,
    dsps=0.0,
)

#: Per-operator costs, one row each in Table 1 ("per dynamic region").
#: "<1%" entries are modelled as 0.4% so they render as "<1" in the report
#: while keeping a fully loaded 6-region deployment inside the paper's
#: "not more than 30%" envelope (§6.1).  Note Table 1 rows are pipeline
#: *stages*: "Projection/Selection/Aggregation" is one combined stage.
_LT1 = 0.004
OPERATOR_COSTS: dict[str, ResourceVector] = {
    "projection": ResourceVector(luts=_LT1, regs=_LT1),
    "selection": ResourceVector(luts=_LT1, regs=_LT1),
    "aggregation": ResourceVector(luts=_LT1, regs=_LT1),
    "regex": ResourceVector(luts=0.023, regs=_LT1),
    "distinct": ResourceVector(luts=0.021, regs=0.013, bram=0.08),
    "groupby": ResourceVector(luts=0.021, regs=0.013, bram=0.08),
    "encryption": ResourceVector(luts=0.036, regs=_LT1),
    "decryption": ResourceVector(luts=0.036, regs=_LT1),
    "packing": ResourceVector(luts=_LT1, regs=_LT1),
    "sending": ResourceVector(luts=_LT1, regs=_LT1),
    "smart_addressing": ResourceVector(luts=_LT1, regs=_LT1),
    "join_small_table": ResourceVector(luts=0.021, regs=0.013, bram=0.08),
}

#: Table 1 row labels -> operator keys they summarize.
TABLE1_OPERATOR_ROWS: list[tuple[str, str]] = [
    ("Projection/Selection/Aggregation", "selection"),
    ("Regular expression", "regex"),
    ("Distinct/Group by", "distinct"),
    ("En(de)cryption", "encryption"),
    ("Packing/Sending", "packing"),
]


def operator_cost(name: str) -> ResourceVector:
    if name not in OPERATOR_COSTS:
        raise OperatorError(
            f"unknown operator {name!r}; known: {sorted(OPERATOR_COSTS)}")
    return OPERATOR_COSTS[name]


def system_cost(regions: int) -> ResourceVector:
    """Shell + infrastructure for ``regions`` dynamic regions (no operators)."""
    if regions <= 0:
        raise ConfigurationError(f"regions must be positive: {regions}")
    return SHELL + PER_REGION.scaled(regions)


class ResourceModel:
    """Tracks device utilization as pipelines are deployed into regions."""

    def __init__(self, regions: int = 6):
        self.regions = regions
        self._deployed: dict[int, list[str]] = {}

    def deploy(self, region_index: int, operators: list[str]) -> None:
        if not 0 <= region_index < self.regions:
            raise OperatorError(
                f"region {region_index} out of range [0, {self.regions})")
        for op in operators:
            operator_cost(op)  # validate names
        self._deployed[region_index] = list(operators)

    def undeploy(self, region_index: int) -> None:
        self._deployed.pop(region_index, None)

    def total(self) -> ResourceVector:
        usage = system_cost(self.regions)
        for operators in self._deployed.values():
            for op in operators:
                usage = usage + operator_cost(op)
        return usage

    def fits(self, budget_fraction: float = 1.0) -> bool:
        """Whether the current deployment fits within a utilization budget."""
        total = self.total()
        return all(v <= budget_fraction
                   for v in (total.luts, total.regs, total.bram, total.dsps))


def _fmt_pct(value: float) -> str:
    pct = value * 100
    if pct == 0:
        return "0%"
    if pct < 1:
        return "<1%"
    return f"{pct:.1f}%".replace(".0%", "%")


def render_table1(regions: int = 6) -> str:
    """Render the reproduction of Table 1 as aligned text."""
    lines = []
    header = f"{'Configuration':<38}{'CLB LUTs':>10}{'Regs':>8}{'BRAM':>8}{'DSPs':>8}"
    lines.append(header)
    sys_cost = system_cost(regions)
    lines.append(f"{f'{regions} regions':<38}"
                 f"{_fmt_pct(sys_cost.luts):>10}{_fmt_pct(sys_cost.regs):>8}"
                 f"{_fmt_pct(sys_cost.bram):>8}{_fmt_pct(sys_cost.dsps):>8}")
    lines.append(f"{'Operators (per dynamic region)':<38}"
                 f"{'CLB LUTs':>10}{'Regs':>8}{'BRAM':>8}{'DSPs':>8}")
    for label, key in TABLE1_OPERATOR_ROWS:
        cost = operator_cost(key)
        lines.append(f"{label:<38}"
                     f"{_fmt_pct(cost.luts):>10}{_fmt_pct(cost.regs):>8}"
                     f"{_fmt_pct(cost.bram):>8}{_fmt_pct(cost.dsps):>8}")
    return "\n".join(lines)
