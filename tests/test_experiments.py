"""Experiment harnesses on scaled-down sweeps: shapes must match the paper."""

import pytest

from repro.experiments import (
    fig6_rdma,
    fig7_projection,
    fig8_selection,
    fig9_grouping,
    fig10_regex,
    fig12_multiclient,
    fig13_scaleout,
    fig14_pushdown,
    fig15_updates,
    fig17_availability,
    fig21_serving,
    table1_resources,
)

KB = 1024


def test_table1_reproduces_paper_rows():
    result = table1_resources.run()
    assert result.system_row == pytest.approx((24.0, 23.0, 29.0, 0.0))
    assert result.full_deployment_max_utilization <= 0.30
    assert "6 regions" in result.render()


def test_fig6_small_vs_large_transfer_shape():
    fig6a, fig6b = fig6_rdma.run(
        sizes_throughput=(512, 2 * KB, 16 * KB),
        sizes_response=(512, 16 * KB))
    tput_fv = fig6a.series_named("FV")
    tput_rnic = fig6a.series_named("RNIC")
    # RNIC ahead at small, FV ahead at large.
    assert tput_rnic.y_at(512) >= tput_fv.y_at(512)
    assert tput_fv.y_at(16 * KB) > tput_rnic.y_at(16 * KB)
    resp_fv = fig6b.series_named("FV")
    resp_rnic = fig6b.series_named("RNIC")
    assert resp_rnic.y_at(512) <= resp_fv.y_at(512)
    assert resp_fv.y_at(16 * KB) < resp_rnic.y_at(16 * KB)


def test_fig7_crossover_between_256_and_512():
    result = fig7_projection.run(tuple_counts=(1024, 4096))
    sa = result.series_named("FV-SA")
    t256 = result.series_named("FV-t256B")
    t512 = result.series_named("FV-t512B")
    for n in (1024, 4096):
        assert t256.y_at(n) <= sa.y_at(n) <= t512.y_at(n)


def test_fig8_orderings_at_25pct():
    result = fig8_selection.run_panel(0.25, table_sizes=(64 * KB, 256 * KB))
    fv = result.series_named("FV")
    fvv = result.series_named("FV-V")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    for size in (64 * KB, 256 * KB):
        assert fvv.y_at(size) <= fv.y_at(size) <= lcpu.y_at(size) <= rcpu.y_at(size)


def test_fig8_vectorization_useless_at_full_selectivity():
    result = fig8_selection.run_panel(1.0, table_sizes=(256 * KB,))
    fv = result.series_named("FV")
    fvv = result.series_named("FV-V")
    assert fv.y_at(256 * KB) == pytest.approx(fvv.y_at(256 * KB), rel=0.1)


def test_fig9a_baselines_grow_faster_than_fv():
    result = fig9_grouping.run_distinct(table_sizes=(64 * KB, 256 * KB))
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    fv_growth = fv.y_at(256 * KB) / fv.y_at(64 * KB)
    lcpu_growth = lcpu.y_at(256 * KB) / lcpu.y_at(64 * KB)
    assert lcpu.y_at(64 * KB) > fv.y_at(64 * KB)
    assert lcpu_growth >= fv_growth * 0.9  # both grow; baseline at least as fast


def test_fig9c_fv_flush_grows_with_groups():
    result = fig9_grouping.run_groupby_vs_groups(
        group_counts=(256, 2048), table_size=256 * KB)
    fv = result.series_named("FV")
    assert fv.y_at(2048) > fv.y_at(256)


def test_fig10_fv_ahead_and_gap_widens():
    result = fig10_regex.run(string_sizes=(256, 4 * KB), num_rows=4)
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    for size in (256, 4 * KB):
        assert fv.y_at(size) < lcpu.y_at(size) < rcpu.y_at(size)
    assert (lcpu.y_at(4 * KB) / fv.y_at(4 * KB)
            >= lcpu.y_at(256) / fv.y_at(256))


def test_fig12_fv_beats_contending_cpus():
    result = fig12_multiclient.run(table_sizes=(64 * KB, 256 * KB))
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    for size in (64 * KB, 256 * KB):
        assert fv.y_at(size) < lcpu.y_at(size) < rcpu.y_at(size)


def test_fig13_throughput_scales_with_nodes():
    result = fig13_scaleout.run(node_counts=(1, 2, 4), table_size=128 * KB)
    pool = result.series_named("FV-pool")
    ideal = result.series_named("ideal")
    # Meaningful speedup at every doubling, but never above linear.
    assert pool.y_at(2) > pool.y_at(1) * 1.5
    assert pool.y_at(4) > pool.y_at(2) * 1.5
    for n in (1, 2, 4):
        assert pool.y_at(n) <= ideal.y_at(n) * 1.001


def test_fig14_crossover_and_auto_tracking():
    """One 64 B panel at two sweep ends: ship wins the selective end,
    offload the unselective end, and auto sits on the winner (the runner
    itself asserts the 10% tracking bound at every point)."""
    (panel,) = fig14_pushdown.run(tuple_widths=(64,),
                                  selectivities=(0.25, 1.0))
    off = panel.series_named("FV-off")
    ship = panel.series_named("FV-ship")
    auto = panel.series_named("FV-auto")
    assert ship.y_at(0.25) < off.y_at(0.25)   # reconfiguration dominates
    assert off.y_at(1.0) < ship.y_at(1.0)     # materialization dominates
    for x in (0.25, 1.0):
        assert auto.y_at(x) <= min(off.y_at(x), ship.y_at(x)) * 1.10


def test_fig15_delta_sweep_shapes():
    """Scan latency grows with the delta fraction, shipping grows faster
    (it adds the client-side merge), and the compacted scan is flat at
    the chain-free latency."""
    panel = fig15_updates.run_delta_sweep(fractions=(0.0, 0.5),
                                          table_bytes=128 * KB)
    deltas = panel.series_named("FV-deltas")
    ship = panel.series_named("FV-ship")
    compacted = panel.series_named("FV-compacted")
    xs = deltas.xs
    assert deltas.points[1].y > deltas.points[0].y
    assert (ship.points[1].y - ship.points[0].y
            > deltas.points[1].y - deltas.points[0].y)
    assert compacted.points[1].y == pytest.approx(compacted.points[0].y,
                                                  rel=0.01)
    assert compacted.points[1].y < deltas.points[1].y
    assert xs[0] == 0.0 and xs[1] > 0.0


def test_fig15_scan_under_update_isolation_and_contention():
    """The runner itself asserts every scan equals a quiesced replay at
    its pinned epoch; here: writers only add contention latency."""
    panel = fig15_updates.run_scan_under_update(rates=(0, 4),
                                                table_bytes=64 * KB)
    latency = panel.series_named("FV-under-update")
    assert latency.points[1].y > latency.points[0].y


def test_fig16_build_sweep_crossover_and_scaleout():
    """Scaled-down fig16: ship wins the small build on a cold region,
    offload wins the large one (the runner asserts byte-identity and
    the 10% auto-tracking bound itself), and the broadcast join's
    response time improves with pool size (the runner pins the merged
    sha256 against single-node execution)."""
    from repro.experiments import fig16_joins

    panel = fig16_joins.run_build_sweep(fact_bytes=128 * KB,
                                        build_rows=(256, 16384))
    off = panel.series_named("FV-off")
    ship = panel.series_named("FV-ship")
    auto = panel.series_named("FV-auto")
    assert ship.y_at(256) < off.y_at(256)         # reconfiguration dominates
    assert off.y_at(16384) < ship.y_at(16384)     # build-hash dominates
    for x in (256, 16384):
        assert auto.y_at(x) <= min(off.y_at(x), ship.y_at(x)) * 1.10

    scale = fig16_joins.run_scaleout(fact_rows=4096, build_rows=256,
                                     node_counts=(1, 2, 4))
    latency = scale.series_named("FV-join")
    assert latency.y_at(2) < latency.y_at(1)
    assert latency.y_at(4) < latency.y_at(2)


def test_fig17_replication_buys_availability():
    # The runner asserts the byte-exactness and zero-loss claims inline;
    # here: a scaled-down sweep keeps the expected availability ordering.
    fig17a, fig17b = fig17_availability.run_fault_sweep(
        crash_counts=(0, 2), num_nodes=2)
    for panel in (fig17a, fig17b):
        assert {s.name for s in panel.series} == {"k=1", "k=2"}
    k1, k2 = (fig17a.series_named(n) for n in ("k=1", "k=2"))
    assert k2.y_at(0) > 0 and k1.y_at(0) > 0       # no-fault sanity
    assert k2.y_at(2) >= k1.y_at(2)                # replicas never hurt

    fig17c = fig17_availability.run_availability(node_counts=(1, 2))
    k1c, k2c = (fig17c.series_named(n) for n in ("k=1", "k=2"))
    assert k2c.y_at(2) == 100.0                    # headline: zero loss
    assert k1c.y_at(2) < 100.0                     # unreplicated loses


def test_fig21_serving_sweep_scaled_down():
    # The runner asserts drain, zero starvation, and sha-vs-serial-replay
    # inline; here: a scaled-down sweep keeps the headline shape.
    fig21a, fig21b = fig21_serving.run_load_sweep(tenant_counts=(20, 80))
    assert {s.name for s in fig21a.series} == {"p50", "p99"}
    p50, p99 = (fig21a.series_named(n) for n in ("p50", "p99"))
    for count in (20, 80):
        assert 0 < p50.y_at(count) <= p99.y_at(count)
    offered = fig21b.series_named("offered")
    executed = fig21b.series_named("executed")
    assert offered.y_at(80) > offered.y_at(20)     # load actually grew
    # Coalescing: executions grow far slower than offered load.
    assert executed.y_at(80) < offered.y_at(80) / 4


def test_fig21_fairness_panel_scaled_down():
    fig21c = fig21_serving.run_fairness(weights=(4.0,))
    heavy = fig21c.series_named("fair heavy")
    light = fig21c.series_named("fair light")
    assert heavy.y_at(4.0) < light.y_at(4.0)       # weight buys latency
    fifo_h = fig21c.series_named("fifo heavy")
    fifo_l = fig21c.series_named("fifo light")
    # FIFO is weight-blind: its class gap is a rounding error next to
    # the fair policy's.
    fifo_gap = abs(fifo_h.y_at(4.0) - fifo_l.y_at(4.0))
    fair_gap = light.y_at(4.0) - heavy.y_at(4.0)
    assert fair_gap > 10 * fifo_gap


def test_experiment_result_rendering():
    result = fig8_selection.run_panel(1.0, table_sizes=(64 * KB,))
    text = result.render()
    assert "fig8_100pct" in text
    assert "FV" in text and "RCPU" in text
    with pytest.raises(KeyError):
        result.series_named("nope")
