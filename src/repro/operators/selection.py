"""Predicate selection operators, scalar and vectorized (paper §5.3).

Predicates are hardwired matching circuits in the FPGA; we model them as a
small expression tree (column comparisons combined with AND/OR/NOT)
evaluated vectorized over tuple batches.  Complex predicates over multiple
columns are supported ("It also permits complex predicates defined over
different tuple columns", §5.3).

The *vectorized* variant has identical semantics; it differs in the timing
model (parallel selection lanes fed from multiple memory channels, §5.3
"Vectorization"), which the Farview node accounts for via
:attr:`VectorizedSelectionOperator.lanes`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..common.errors import OperatorError, QueryError
from ..common.records import Schema
from .base import RowOperator

_COMPARATORS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


class Predicate(abc.ABC):
    """A boolean expression over tuple columns."""

    @abc.abstractmethod
    def validate(self, schema: Schema) -> None:
        """Raise :class:`QueryError` if the predicate doesn't fit the schema."""

    @abc.abstractmethod
    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        """Vectorized evaluation; returns a boolean mask."""

    @abc.abstractmethod
    def columns(self) -> set[str]:
        """All column names the predicate touches."""

    # Composition sugar: (p & q), (p | q), ~p
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """column <op> constant — one hardwired comparator circuit."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(
                f"unknown comparison {self.op!r}; supported: "
                f"{sorted(_COMPARATORS)}")

    def validate(self, schema: Schema) -> None:
        col = schema.column(self.column)  # raises on unknown column
        if col.kind == "char":
            if self.op not in ("==", "!="):
                raise QueryError(
                    f"char column {self.column!r} supports only ==/!=, "
                    f"got {self.op!r}")
            if not isinstance(self.value, (bytes, str)):
                raise QueryError(
                    f"char comparison needs bytes/str, got {type(self.value).__name__}")
        else:
            if isinstance(self.value, (bytes, str)):
                raise QueryError(
                    f"numeric column {self.column!r} compared to "
                    f"{type(self.value).__name__}")

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        value = self.value
        if isinstance(value, str):
            value = value.encode()
        return _COMPARATORS[self.op](batch[self.column], value)

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def validate(self, schema: Schema) -> None:
        self.left.validate(schema)
        self.right.validate(schema)

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return self.left.evaluate(batch) & self.right.evaluate(batch)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def validate(self, schema: Schema) -> None:
        self.left.validate(schema)
        self.right.validate(schema)

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return self.left.evaluate(batch) | self.right.evaluate(batch)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def validate(self, schema: Schema) -> None:
        self.inner.validate(schema)

    def evaluate(self, batch: np.ndarray) -> np.ndarray:
        return ~self.inner.evaluate(batch)

    def columns(self) -> set[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class SelectionOperator(RowOperator):
    """Filter tuples by a predicate (maps to the SQL WHERE clause)."""

    def __init__(self, predicate: Predicate, name: str = "selection"):
        super().__init__(name)
        self.predicate = predicate

    def _bind(self, schema: Schema) -> Schema:
        try:
            self.predicate.validate(schema)
        except QueryError as exc:
            raise OperatorError(str(exc)) from exc
        return schema

    def _process(self, batch: np.ndarray) -> np.ndarray:
        mask = self.predicate.evaluate(batch)
        return batch[mask]

    @property
    def selectivity(self) -> float:
        """Observed fraction of tuples that passed so far."""
        return self.rows_out / self.rows_in if self.rows_in else 0.0


class VectorizedSelectionOperator(SelectionOperator):
    """Selection with parallel lanes fed from striped memory channels.

    Semantically identical to :class:`SelectionOperator`; the Farview node
    uses :attr:`lanes` to model the higher ingest bandwidth of the
    vectorized processing model (§5.3: "The number of parallel operators is
    chosen based on the number of memory channels and the tuple width").
    """

    def __init__(self, predicate: Predicate, lanes: int):
        super().__init__(predicate, name="selection_vec")
        if lanes <= 0:
            raise OperatorError(f"lanes must be positive: {lanes}")
        self.lanes = lanes

    @classmethod
    def for_configuration(cls, predicate: Predicate, memory_channels: int,
                          tuple_width: int, datapath_bytes: int = 64
                          ) -> "VectorizedSelectionOperator":
        """Choose the lane count from channels and tuple width (§5.3)."""
        if tuple_width <= 0:
            raise OperatorError(f"tuple width must be positive: {tuple_width}")
        lanes_by_width = max(1, (memory_channels * datapath_bytes) // tuple_width)
        return cls(predicate, lanes=max(memory_channels, min(lanes_by_width, 16)))
