"""On-board DRAM channel model (paper §4.4, §6.1).

Each channel is a byte-addressable backing store (a real ``bytearray``, so
reads return the bytes that were written) plus a :class:`BandwidthPipe`
modelling the softcore controller: 64-byte interface at 300 MHz, ~18 GBps
theoretical, with a fixed access latency for the first beat of a burst.

Reads and writes use **decoupled pipes** ("fully decoupled read and write
channels", §4.4): a stream of reads does not queue behind writes.
"""

from __future__ import annotations

import numpy as np

from ..common.config import MemoryConfig
from ..common.errors import MemoryError_
from ..sim.engine import Event, Simulator
from ..sim.resources import BandwidthPipe


class DramChannel:
    """One memory channel: backing store + read/write bandwidth pipes."""

    def __init__(self, sim: Simulator, config: MemoryConfig, index: int):
        self.sim = sim
        self.config = config
        self.index = index
        self.capacity = config.channel_capacity
        # numpy backing store: zero pages are materialized lazily by the OS
        # (multi-GB channels cost nothing until touched) and the MMU's
        # de-striping path can gather/scatter through views without copies.
        self._data = np.zeros(self.capacity, dtype=np.uint8)
        rate = config.effective_channel_bandwidth
        self.read_pipe = BandwidthPipe(
            sim, rate, latency_ns=config.access_latency_ns,
            name=f"dram{index}.rd")
        self.write_pipe = BandwidthPipe(
            sim, rate, latency_ns=config.access_latency_ns,
            name=f"dram{index}.wr")

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise MemoryError_(
                f"channel {self.index}: access [{offset}, {offset + length}) "
                f"outside capacity {self.capacity}")

    # -- functional access (no timing) ---------------------------------------
    def peek(self, offset: int, length: int) -> bytes:
        """Read bytes without consuming simulated bandwidth."""
        self._check_range(offset, length)
        return self._data[offset:offset + length].tobytes()

    def poke(self, offset: int, data: bytes | memoryview) -> None:
        """Write bytes without consuming simulated bandwidth."""
        self._check_range(offset, len(data))
        self._data[offset:offset + len(data)] = np.frombuffer(data,
                                                              dtype=np.uint8)

    def store_slice(self, offset: int, length: int) -> np.ndarray:
        """Raw view into the backing store (MMU de-striping internals).

        The view aliases live channel memory: the MMU copies out of it (or
        scatters into it) immediately and never hands it to callers.
        """
        self._check_range(offset, length)
        return self._data[offset:offset + length]

    # -- timed access ---------------------------------------------------------
    def read(self, offset: int, length: int) -> Event:
        """Timed read; the event fires with the bytes read."""
        data = self.peek(offset, length)
        done = self.sim.event()
        self.read_pipe.transfer(length).add_callback(
            lambda _ev: done.succeed(data))
        return done

    def write(self, offset: int, data: bytes) -> Event:
        """Timed write; the event fires when the last byte lands."""
        self.poke(offset, data)
        return self.write_pipe.transfer(len(data))

    @property
    def bytes_read(self) -> int:
        return self.read_pipe.bytes_transferred

    @property
    def bytes_written(self) -> int:
        return self.write_pipe.bytes_transferred


def build_channels(sim: Simulator, config: MemoryConfig) -> list[DramChannel]:
    """Instantiate the configured number of channels."""
    return [DramChannel(sim, config, i) for i in range(config.channels)]
