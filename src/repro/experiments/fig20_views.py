"""Figure 20 (extension): incremental materialized views over the delta chain.

Every earlier figure answers queries by rescanning the base relation.
With the view subsystem (docs/VIEWS.md) a registered view is maintained
by shipping only the committed delta segments to the client and folding
them through a Z-set circuit — the far-memory bet being that a delta is
a tiny fraction of the chain, so propagating it beats re-ingesting the
whole relation.  This experiment measures where that bet pays:

* **fig20a — refresh vs rescan latency over the delta fraction.**  A
  group-by view over a versioned table; each cell commits several
  update rounds touching a fraction ``f`` of the rows, then a
  compaction folds the chain (the trackers' pins keep the retired
  segments readable).  The incremental refresh ships and replays the
  whole retired delta tail; the full rescan (re-bootstrapping the view
  from the chain at the same epoch) reads only the folded base.  Small
  ``f`` refreshes ship a few delta rows and win outright; at heavy
  churn the accumulated tail outweighs the base and the rescan wins —
  churn, not table size, decides (the crossover, asserted).  Both the
  measured times and the placement cost model's predictions
  (:meth:`view_refresh_ns` / :meth:`view_rescan_ns`) are plotted, and
  every cell's refreshed view, re-bootstrapped view, and the serial
  reference model are sha256-identical (asserted).

* **fig20b — bytes ingested per update path.**  The same sweep's byte
  story: a refresh reads only the committed segments (touched rows x
  delta row width x rounds); the rescan reads the compacted chain.
  Asserted strictly smaller at the smallest fraction and strictly
  larger at full-table churn (the byte crossover).

* **fig20c — epoch-consistent subscription stream on a 4-node cluster.**
  An auto-subscribed view over a chunk-partitioned versioned table,
  driven by rounds of mixed insert / update / delete commits with a
  cluster-wide compaction mid-stream.  Every commit triggers an
  incremental push; after every round the view, the subscriber's folded
  copy, and a full rescan through the serial model are asserted
  sha256-identical, and the subscriber's O(1) splitmix64 digest matches
  the view's (the integrity shortcut).  Plotted: cumulative rows pushed
  and per-round output delta rows vs epoch — the push traffic stays
  proportional to the churn, not to the table.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..baselines.cpu_model import CpuCostModel
from ..baselines.sql_model import execute_model
from ..common.records import Column, Schema
from ..core.api import ClusterClient, FarviewClient
from ..core.cluster import FarviewCluster
from ..core.cost_model import PlacementCostModel
from ..core.node import FarviewNode
from ..core.query import Query
from ..operators.aggregate import AggregateSpec
from ..operators.selection import Compare
from ..sim.engine import Simulator
from ..sim.stats import Series
from .common import EXPERIMENT_CONFIG, ExperimentResult, us

#: fig20a/b sweep: fraction of the base table each update round touches.
DELTA_FRACTIONS = (0.01, 0.05, 0.25, 1.0)
BASE_ROWS = 4096
#: Update rounds committed (then compacted) before each measurement.
CHURN_ROUNDS = 4

#: fig20c stream.
STREAM_NODES = 4
STREAM_BASE_ROWS = 2048
STREAM_ROUNDS = 6
STREAM_BATCH = 96

BASE_SCHEMA = Schema([
    Column("k", "int64"),       # unique row key (predicate target)
    Column("cat", "char", 4),   # group key, 8 categories
    Column("val", "float64"),   # dyadic values: sums are exact
])

#: The maintained view: a grouped aggregate (stateful circuit).
VIEW_SQL = "SELECT cat, SUM(val) AS s, COUNT(*) AS n FROM t GROUP BY cat"

CATEGORIES = [f"c{i}".encode() for i in range(8)]


def make_base(num_rows: int, seed: int = 20) -> np.ndarray:
    rows = BASE_SCHEMA.empty(num_rows)
    rng = np.random.default_rng(seed)
    rows["k"] = np.arange(num_rows)
    for i in range(num_rows):
        rows["cat"][i] = CATEGORIES[i % len(CATEGORIES)]
    rows["val"] = rng.integers(0, 1000, num_rows) * 0.25
    return rows


def view_query() -> Query:
    """The offloadable Query equivalent of :data:`VIEW_SQL`."""
    return Query(group_by=["cat"],
                 aggregates=[AggregateSpec("sum", "val", "s"),
                             AggregateSpec("count", "*", "n")],
                 label="fig20")


def sorted_sha(schema: Schema, rows: np.ndarray) -> str:
    """sha256 of the sorted row byte-images — the same canonical form
    :meth:`ZSet.sha256` hashes, so views and rescans compare directly."""
    data = schema.to_bytes(rows)
    width = schema.row_width
    images = sorted(data[i:i + width] for i in range(0, len(data), width))
    return hashlib.sha256(b"".join(images)).hexdigest()


def model_sha(current_rows: np.ndarray) -> str:
    """The serial reference model's answer at this epoch, canonicalized."""
    out_schema, out_rows = execute_model(
        VIEW_SQL, {"t": (BASE_SCHEMA, current_rows)})
    return sorted_sha(out_schema, out_rows)


def _fresh_client() -> FarviewClient:
    client = FarviewClient(FarviewNode(Simulator(), EXPERIMENT_CONFIG))
    client.open_connection()
    return client


def _run_crossover_cell(fraction: float):
    """One cold client: commit :data:`CHURN_ROUNDS` updates each
    touching ``fraction`` of the base rows, compact, then measure the
    incremental refresh and a full re-bootstrap at the same epoch.
    Returns the cell's measurements."""
    client = _fresh_client()
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(BASE_ROWS))
    view, _ = client.create_view(VIEW_SQL, name="fig20")
    touched = max(1, int(round(fraction * BASE_ROWS)))
    for round_index in range(CHURN_ROUNDS):
        client.update_where(vt, Compare("k", "<", touched),
                            {"val": 31.5 + round_index})
    # Fold the chain: the rescan now reads one base segment, while the
    # refresh replays the retired delta tail its tracker pins kept.
    client.compact(vt)
    chain_bytes = vt.size_bytes
    base_rows = vt.num_rows

    stats, refresh_ns = client.refresh_views()
    assert stats.delta_rows == CHURN_ROUNDS * touched

    client.drop_view(view)
    rescan_view, rescan_ns = client.create_view(VIEW_SQL, name="fig20r")

    image, _ = client.read_version(vt)
    expected = model_sha(BASE_SCHEMA.from_bytes(image, copy=True))
    assert view.sha256() == expected, (
        f"refreshed view diverged from the model at fraction {fraction}")
    assert rescan_view.sha256() == expected, (
        f"re-bootstrapped view diverged from the model at fraction "
        f"{fraction}")

    cpu = CpuCostModel()
    cost = PlacementCostModel(EXPERIMENT_CONFIG, cpu)
    predicted_refresh = cost.view_refresh_ns(stats.bytes_read,
                                             stats.delta_rows,
                                             view.circuit.depth)
    predicted_rescan = cost.view_rescan_ns(chain_bytes, base_rows, 0,
                                           view.circuit.depth)
    return (refresh_ns, rescan_ns, stats.bytes_read,
            rescan_view.bootstrap_bytes, predicted_refresh,
            predicted_rescan)


def run_crossover(fractions=DELTA_FRACTIONS) -> list[ExperimentResult]:
    """fig20a + fig20b: the incremental-vs-rescan crossover sweep."""
    refresh_us = Series("refresh")
    rescan_us = Series("rescan")
    model_refresh = Series("model-refresh")
    model_rescan = Series("model-rescan")
    refresh_kb = Series("refresh-bytes")
    rescan_kb = Series("rescan-bytes")
    crossed = False
    for fraction in fractions:
        (t_refresh, t_rescan, b_refresh, b_rescan,
         p_refresh, p_rescan) = _run_crossover_cell(fraction)
        refresh_us.add(fraction, us(t_refresh))
        rescan_us.add(fraction, us(t_rescan))
        model_refresh.add(fraction, us(p_refresh))
        model_rescan.add(fraction, us(p_rescan))
        refresh_kb.add(fraction, b_refresh / 1024)
        rescan_kb.add(fraction, b_rescan / 1024)
        if t_rescan < t_refresh:
            crossed = True
    assert refresh_us.points[0].y < rescan_us.points[0].y, (
        "the smallest delta fraction must refresh faster than a rescan")
    assert refresh_kb.points[0].y < rescan_kb.points[0].y, (
        "the smallest delta fraction must refresh with strictly fewer "
        "ingested bytes than a rescan")
    assert refresh_kb.points[-1].y > rescan_kb.points[-1].y, (
        "full-table churn must accumulate a delta tail larger than the "
        "compacted chain (the byte crossover)")
    assert model_refresh.points[0].y < model_rescan.points[0].y, (
        "the cost model must predict the small-fraction refresh win")
    assert model_refresh.points[-1].y > model_rescan.points[-1].y, (
        "the cost model must predict the heavy-churn rescan win")
    assert crossed, ("rescan never beat refresh — the sweep does not "
                     "reach the crossover")
    fig20a = ExperimentResult(
        experiment_id="fig20a",
        title=(f"Incremental refresh vs full rescan, {BASE_ROWS} base "
               f"rows, {CHURN_ROUNDS} update rounds + compaction "
               f"(cold clients)"),
        x_label="delta fraction", y_label="us",
        series=[refresh_us, rescan_us, model_refresh, model_rescan],
        notes=[
            "refresh ships the retired delta tail (pinned across the "
            "compaction) and folds it through the Z-set circuit; rescan "
            "re-bootstraps the view from the compacted chain at the same "
            "epoch",
            "every cell sha256-identical to the serial model (asserted); "
            "refresh wins strictly at the smallest fraction, rescan wins "
            "at full-table churn, and the cost model predicts both ends "
            "(asserted crossover)",
        ])
    fig20b = ExperimentResult(
        experiment_id="fig20b",
        title=(f"Bytes ingested per update path, {BASE_ROWS} base rows, "
               f"{CHURN_ROUNDS} update rounds + compaction"),
        x_label="delta fraction", y_label="kB",
        series=[refresh_kb, rescan_kb],
        notes=[
            "refresh reads delta-segment bytes only (touched rows x delta "
            "row width x rounds); rescan reads the folded base — the byte "
            "crossover sits where the accumulated tail outgrows the "
            "compacted chain (asserted at both ends)",
        ])
    return [fig20a, fig20b]


def run_subscription_stream() -> ExperimentResult:
    """fig20c: auto-subscribed view under a mixed commit stream on a
    4-node cluster, compaction mid-stream, sha-pinned every round."""
    client = ClusterClient(FarviewCluster(Simulator(), STREAM_NODES,
                                          EXPERIMENT_CONFIG))
    client.open_connection()
    vt = client.create_versioned_table(
        "t", BASE_SCHEMA, make_base(STREAM_BASE_ROWS, seed=41))
    view, _ = client.create_view(VIEW_SQL, name="fig20c")
    sub = client.subscribe(view)          # auto: every commit pushes

    pushed = Series("rows-pushed")
    out_rows = Series("output-delta-rows")
    next_key = STREAM_BASE_ROWS
    rng = np.random.default_rng(7)
    for round_index in range(STREAM_ROUNDS):
        batch = BASE_SCHEMA.empty(STREAM_BATCH)
        batch["k"] = np.arange(next_key, next_key + STREAM_BATCH)
        for i in range(STREAM_BATCH):
            batch["cat"][i] = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
        batch["val"] = rng.integers(0, 1000, STREAM_BATCH) * 0.25
        next_key += STREAM_BATCH
        client.insert(vt, batch)
        client.update_where(
            vt, Compare("k", "<", (round_index + 1) * 128),
            {"val": 0.5 + round_index})
        if round_index == STREAM_ROUNDS // 2:
            client.compact(vt)
        client.delete_where(
            vt, Compare("k", ">=", next_key - STREAM_BATCH // 4))

        image, _ = client.read_version(vt)
        expected = model_sha(BASE_SCHEMA.from_bytes(image, copy=True))
        assert view.sha256() == expected, (
            f"view diverged from the model at round {round_index}")
        assert sub.sha256() == expected, (
            f"subscriber diverged from the view at round {round_index}")
        assert sub.digest() == view.digest(), (
            f"subscriber digest mismatch at round {round_index}")
        pushed.add(vt.epoch, sub.rows_pushed)
        out_rows.add(vt.epoch, view.contents.entry_count)
    assert sub.updates_received >= 3 * STREAM_ROUNDS, (
        "every commit with churn must push an incremental update")
    return ExperimentResult(
        experiment_id="fig20c",
        title=(f"Epoch-consistent subscription stream, {STREAM_NODES} "
               f"nodes, {STREAM_ROUNDS} rounds of mixed commits "
               f"(compaction mid-stream)"),
        x_label="epoch", y_label="rows",
        series=[pushed, out_rows],
        notes=[
            "each committed write batch auto-propagates one incremental "
            "push; the subscriber folds deltas only and is asserted "
            "sha256- and digest-identical to the view and the serial "
            "model after every round",
            "the cluster-wide compaction mid-stream neither double-counts "
            "nor misses rows (trackers pin their chains across it)",
        ])


def run() -> list[ExperimentResult]:
    return run_crossover() + [run_subscription_stream()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
