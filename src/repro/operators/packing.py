"""Packing unit: dense 64-byte output words (paper §5.5).

"At the end of the processing pipeline, the annotated columns are first
packed based on their annotation flags in a bid to reduce the overall data
sent over the network.  Multiple columns across the tuples are packed into
64 byte words prior to their writing into the output queue.  This packing
uses an overflow buffer to efficiently sustain the line rate."

Our row operators already narrow tuples to the annotated columns, so the
packer's functional job is dense serialization into 64-byte words with a
carry (the "overflow buffer") for the partial word between bursts.  For
the vectorized model it also models the round-robin lane combiner.
"""

from __future__ import annotations

from ..common.errors import OperatorError

WORD_BYTES = 64


class Packer:
    """Accumulates output bytes and releases whole 64-byte words."""

    def __init__(self, word_bytes: int = WORD_BYTES):
        if word_bytes <= 0:
            raise OperatorError(f"word size must be positive: {word_bytes}")
        self.word_bytes = word_bytes
        self._carry = bytearray()  # the overflow buffer
        self.words_emitted = 0
        self.bytes_in = 0

    def pack(self, data: bytes) -> bytes:
        """Append ``data``; return all complete words ready for the queue."""
        self.bytes_in += len(data)
        self._carry.extend(data)
        whole = (len(self._carry) // self.word_bytes) * self.word_bytes
        if whole == 0:
            return b""
        out = bytes(self._carry[:whole])
        del self._carry[:whole]
        self.words_emitted += whole // self.word_bytes
        return out

    def flush(self) -> bytes:
        """Release the final partial word (sent as-is, like the hardware)."""
        if not self._carry:
            return b""
        out = bytes(self._carry)
        self._carry.clear()
        self.words_emitted += 1
        return out

    @property
    def pending_bytes(self) -> int:
        return len(self._carry)


class RoundRobinCombiner:
    """Combines the output of parallel vectorized lanes (§5.5).

    "In case of the vectorized processing model, the tuples are first
    combined from each of the parallel pipelines with a simple round-robin
    arbiter."  Lanes push row-serialized chunks; the combiner releases them
    in strict lane order so the output is deterministic.
    """

    def __init__(self, lanes: int):
        if lanes <= 0:
            raise OperatorError(f"lanes must be positive: {lanes}")
        self.lanes = lanes
        self._queues: list[list[bytes]] = [[] for _ in range(lanes)]
        self._next = 0

    def push(self, lane: int, chunk: bytes) -> None:
        if not 0 <= lane < self.lanes:
            raise OperatorError(f"lane {lane} out of range [0, {self.lanes})")
        self._queues[lane].append(chunk)

    def drain(self) -> bytes:
        """Release queued chunks in round-robin lane order."""
        out = bytearray()
        while True:
            progressed = False
            for offset in range(self.lanes):
                lane = (self._next + offset) % self.lanes
                if self._queues[lane]:
                    out.extend(self._queues[lane].pop(0))
                    self._next = (lane + 1) % self.lanes
                    progressed = True
                    break
            if not progressed:
                break
        return bytes(out)
