"""Client-side data API, mirroring the paper's programmatic interface (§4.2).

The paper's C-style functions map onto :class:`FarviewClient` methods:

====================================  =======================================
Paper                                 This library
====================================  =======================================
``openConnection(qp, node)``          ``client = FarviewClient(node)`` /
                                      ``client.open_connection()``
``allocTableMem(qp, ft)``             ``client.alloc_table_mem(ft)``
``freeTableMem(qp, ft)``              ``client.free_table_mem(ft)``
``tableWrite(qp, ft)``                ``client.table_write(ft, rows)``
``tableRead(qp, ft)``                 ``client.table_read(ft)``
``farView(qp, ft, params)``           ``client.far_view(ft, query)``
``select(qp, ft, proj, sel, pred)``   ``client.select(ft, columns, predicate)``
====================================  =======================================

Each verb exists in two forms: a ``*_proc`` generator to compose inside a
running simulation (multi-client experiments) and a blocking convenience
that drives the simulator to completion and returns ``(result, elapsed_ns)``
— the paper's measurement endpoint is "until the final results are written
to the memory of the client machine" (§6.2), which is exactly when these
processes complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..common.errors import ConnectionError_, QueryError
from ..common.records import Schema
from ..operators.aggregate import AggregateSpec
from ..operators.crypto import AesCtr
from ..operators.selection import Predicate
from .catalog import Catalog
from .node import Connection, ExecutionReport, FarviewNode
from .pipeline_compiler import CompiledQuery, compile_query
from .query import Query, RegexFilter
from .table import FTable


@dataclass
class QueryResult:
    """Client-visible result of one Farview-verb execution."""

    data: bytes
    schema: Schema
    report: ExecutionReport
    response_time_ns: float
    output_key: Optional[tuple[bytes, bytes]] = None  # (key, nonce) if encrypted
    _client_dedup_applied: bool = field(default=False, repr=False)

    def raw_rows(self) -> np.ndarray:
        """Decode the shipped bytes (decrypting the transmission first)."""
        data = self.data
        if self.output_key is not None:
            key, nonce = self.output_key
            data = AesCtr(key, nonce).process(data)
        return self.schema.from_bytes(data)

    def rows(self) -> np.ndarray:
        """Rows after the client-side software post-processing the paper
        prescribes: deduplicate overflow leakage from the DISTINCT operator
        (§5.4) and merge overflowed GROUP BY partial aggregates."""
        rows = self.raw_rows()
        if self.report.overflow_keys:
            rows = _software_dedup(rows)
        if self.report.overflow_groups:
            rows = _merge_overflow_groups(rows, self.schema, self.report)
        return rows

    @property
    def num_rows(self) -> int:
        return len(self.rows())


def _software_dedup(rows: np.ndarray) -> np.ndarray:
    """Order-preserving exact dedup (the paper's client-side fallback)."""
    seen: set[bytes] = set()
    keep = np.zeros(len(rows), dtype=bool)
    for i in range(len(rows)):
        key = rows[i].tobytes()
        if key not in seen:
            seen.add(key)
            keep[i] = True
    return rows[keep]


def _merge_overflow_groups(rows: np.ndarray, schema: Schema,
                           report: ExecutionReport) -> np.ndarray:
    """Append overflowed groups (partially aggregated server-side)."""
    if not report.overflow_groups:
        return rows
    # The overflow accumulators carry the same spec list as the pipeline's
    # group-by; the report stores (key_bytes -> Accumulator).  Key layout is
    # the group-key schema prefix of the output schema.
    extra = schema.empty(len(report.overflow_groups))
    agg_names = [n for n in schema.names]
    # Group keys occupy the leading columns; remaining are aggregates.
    meta = report.overflow_groups.get("__meta__")
    items = [(k, v) for k, v in report.overflow_groups.items()
             if k != "__meta__"]
    if meta is None:
        raise QueryError(
            "overflow groups present but merge metadata missing")
    key_columns, specs, value_columns = meta
    key_schema = schema.project(key_columns)
    for i, (key_bytes, acc) in enumerate(items):
        key_row = key_schema.from_bytes(key_bytes)
        for name in key_columns:
            extra[name][i] = key_row[name][0]
        for spec in specs:
            idx = (value_columns.index(spec.column)
                   if spec.column in value_columns else 0)
            extra[spec.alias][i] = acc.result(spec, idx)
    del agg_names
    return np.concatenate([rows, extra])


class FarviewClient:
    """A query thread on a compute node, connected to a Farview node."""

    def __init__(self, node: FarviewNode,
                 buffer_capacity: int = 8 * 1024 * 1024):
        self.node = node
        self.sim = node.sim
        self.catalog = Catalog()
        self._buffer_capacity = buffer_capacity
        self._conn: Connection | None = None
        self._compiled_cache: dict[str, CompiledQuery] = {}

    # -- connection -----------------------------------------------------------
    def open_connection(self) -> Connection:
        if self._conn is not None:
            raise ConnectionError_("connection already open")
        self._conn = self.node.open_connection(self._buffer_capacity)
        return self._conn

    def close_connection(self) -> None:
        conn = self._require_conn()
        self.node.close_connection(conn)
        self._conn = None

    def _require_conn(self) -> Connection:
        if self._conn is None:
            raise ConnectionError_("no open connection; call open_connection")
        return self._conn

    @property
    def connection(self) -> Connection:
        return self._require_conn()

    # -- memory management -------------------------------------------------------
    def alloc_table_mem(self, table: FTable) -> FTable:
        self.node.alloc_table_mem(self._require_conn(), table)
        if table.name not in self.catalog:
            self.catalog.register(table)
        return table

    def free_table_mem(self, table: FTable) -> None:
        self.node.free_table_mem(self._require_conn(), table)
        self.catalog.deregister(table.name)

    # -- verbs as processes ----------------------------------------------------------
    def table_write_proc(self, table: FTable, rows: np.ndarray | bytes):
        """Process: upload ``rows`` (array or raw image) to the buffer pool."""
        conn = self._require_conn()
        if isinstance(rows, np.ndarray):
            table.validate_rows(rows)
            data = table.schema.to_bytes(rows)
        else:
            data = bytes(rows)
        result = yield from self.node.serve_write(conn, table, data)
        return result

    def table_read_proc(self, table: FTable, offset: int = 0,
                        length: int | None = None):
        """Process: raw RDMA read; returns the bytes landed in the buffer."""
        conn = self._require_conn()
        conn.qp.buffer.reset()
        total = yield from self.node.serve_read(conn, table, offset, length)
        return conn.qp.buffer.read(0, total)

    def far_view_proc(self, table: FTable, query: Query):
        """Process: the Farview verb; returns a :class:`QueryResult`."""
        conn = self._require_conn()
        compiled = self._compile(table, query)
        conn.qp.buffer.reset()
        start = self.sim.now
        report = yield from self.node.serve_farview(conn, table, compiled)
        self._attach_group_meta(compiled, report)
        data = conn.qp.buffer.read(0, report.bytes_shipped)
        return QueryResult(
            data=data,
            schema=compiled.output_schema,
            report=report,
            response_time_ns=self.sim.now - start,
            output_key=query.encrypt_output)

    def _compile(self, table: FTable, query: Query) -> CompiledQuery:
        # Pipelines are stateful/one-shot: always build a fresh one, but the
        # signature keeps region reconfiguration free across repeats.
        return compile_query(query, table, self.node.config)

    @staticmethod
    def _attach_group_meta(compiled: CompiledQuery,
                           report: ExecutionReport) -> None:
        if report.overflow_groups:
            query = compiled.query
            report.overflow_groups["__meta__"] = (
                list(query.group_by or ()),
                list(query.aggregates),
                sorted({s.column for s in query.aggregates
                        if not (s.func == "count" and s.column == "*")}))

    # -- blocking conveniences ------------------------------------------------------------
    def _run(self, proc, name: str):
        start = self.sim.now
        result = self.sim.run_process(proc, name)
        return result, self.sim.now - start

    def table_write(self, table: FTable, rows: np.ndarray | bytes):
        """Upload rows; returns (bytes_written, elapsed_ns)."""
        return self._run(self.table_write_proc(table, rows), "table_write")

    def table_read(self, table: FTable, offset: int = 0,
                   length: int | None = None):
        """Raw read; returns (bytes, elapsed_ns)."""
        return self._run(self.table_read_proc(table, offset, length),
                         "table_read")

    def far_view(self, table: FTable, query: Query):
        """Offloaded query; returns (QueryResult, elapsed_ns)."""
        return self._run(self.far_view_proc(table, query), "far_view")

    # -- paper-style higher-level helpers (§4.2's `select`) ----------------------------------
    def select(self, table: FTable, columns: list[str] | None,
               predicate: Predicate, vectorized: bool = False):
        """``SELECT columns FROM table WHERE predicate``."""
        query = Query(projection=tuple(columns) if columns else None,
                      predicate=predicate, vectorized=vectorized,
                      label="select")
        return self.far_view(table, query)

    def select_distinct(self, table: FTable, columns: list[str]):
        query = Query(projection=tuple(columns), distinct=True,
                      label="distinct")
        return self.far_view(table, query)

    def group_by(self, table: FTable, keys: list[str],
                 aggregates: list[AggregateSpec]):
        query = Query(group_by=tuple(keys), aggregates=tuple(aggregates),
                      label="group_by")
        return self.far_view(table, query)

    def regex_match(self, table: FTable, column: str, pattern: str):
        query = Query(regex=RegexFilter(column, pattern), label="regex")
        return self.far_view(table, query)

    def sql(self, statement: str):
        """Parse and offload a SQL statement against the catalog.

        The FROM table must have been registered via
        :meth:`alloc_table_mem`.  Returns ``(QueryResult, elapsed_ns)``.
        """
        from .sql import parse_sql

        parsed = parse_sql(statement)
        table = self.catalog.lookup(parsed.table)
        return self.far_view(table, parsed.query)
