"""Figure 9 bench: DISTINCT and GROUP BY + SUM response times."""

from repro.experiments import fig9_grouping


def test_fig9a_distinct(benchmark, shape):
    result = benchmark.pedantic(fig9_grouping.run_distinct,
                                rounds=1, iterations=1)
    shape.render(result)
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    shape.dominates(fv, lcpu, "fig9a")
    shape.dominates(lcpu, rcpu, "fig9a")
    # The baselines degrade dramatically as input grows (paper §6.5):
    # at 1 MB the gap exceeds 5x.
    largest = fv.xs[-1]
    assert lcpu.y_at(largest) / fv.y_at(largest) >= 5.0
    for series in (fv, lcpu, rcpu):
        shape.monotonic(series, "fig9a")


def test_fig9b_groupby_scaling(benchmark, shape):
    result = benchmark.pedantic(fig9_grouping.run_groupby_scaling,
                                rounds=1, iterations=1)
    shape.render(result)
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    shape.dominates(fv, lcpu, "fig9b")
    shape.dominates(lcpu, rcpu, "fig9b")
    # Group-by costs more than plain distinct for the baselines
    # (aggregate updates), keeping the FV gap wide.
    largest = fv.xs[-1]
    assert lcpu.y_at(largest) / fv.y_at(largest) >= 5.0


def test_fig9c_groupby_vs_groups(benchmark, shape):
    result = benchmark.pedantic(fig9_grouping.run_groupby_vs_groups,
                                rounds=1, iterations=1)
    shape.render(result)
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    shape.dominates(fv, lcpu, "fig9c")
    shape.dominates(lcpu, rcpu, "fig9c")
    # FV's response time grows with the number of groups: the flush phase
    # adds latency per aggregate (paper: "The response time is thus bigger
    # if the number of aggregates is higher").
    assert fv.ys[-1] > fv.ys[0]
    shape.monotonic(fv, "fig9c")
