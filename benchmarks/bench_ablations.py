"""Ablation benches: quantify the design choices the paper motivates.

Each ablation flips one architectural knob and checks the expected
direction of the effect:

* memory **channel count** / striping (§4.4: striping "maximizes the
  available bandwidth to each dynamic region"),
* **credit window** of the flow control (§4.3),
* network **packet size** (header amortization),
* MMU **burst size** (overlap granularity between memory and network),
* **vectorization lanes** vs selectivity (§5.3),
* the §7 **small-table join** offload vs shipping both tables.
"""

import pytest

from repro.common.config import (
    FarviewConfig,
    MemoryConfig,
    NetworkConfig,
    OperatorStackConfig,
)
from repro.core.query import JoinSpec, Query, select_star
from repro.core.table import FTable
from repro.experiments.common import make_bench, run_query_warm, upload_table
from repro.memory.mmu import Mmu
from repro.operators.selection import Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import make_rows, selection_workload

KB = 1024
MB = 1024 * KB


def _fv_select_time(config: FarviewConfig, selectivity: float = 1.0,
                    num_rows: int = 8192, vectorized: bool = False) -> float:
    bench = make_bench(config)
    wl = selection_workload(num_rows, selectivity)
    table = upload_table(bench, "S", wl.schema, wl.rows)
    _, elapsed = run_query_warm(
        bench, table, select_star(wl.predicate, vectorized=vectorized))
    return elapsed


def _config(channels=2, packet=1 * KB, credits=32, burst=16 * KB):
    return FarviewConfig(
        memory=MemoryConfig(channels=channels, channel_capacity=32 * MB),
        network=NetworkConfig(packet_size=packet, initial_credits=credits),
    ), burst


def test_ablation_memory_channels(benchmark):
    """More striped channels -> faster vectorized scans (§4.4)."""

    def run():
        times = {}
        for channels in (1, 2, 4):
            config, _ = _config(channels=channels)
            times[channels] = _fv_select_time(config, selectivity=0.25,
                                              vectorized=True)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nchannels -> us: { {c: t / 1000 for c, t in times.items()} }")
    assert times[2] < times[1]
    assert times[4] <= times[2] * 1.05  # saturates once network-bound


def test_ablation_credit_window(benchmark):
    """Starved flow control serializes packet delivery (§4.3)."""

    def run():
        times = {}
        for credits in (1, 4, 32):
            config, _ = _config(credits=credits)
            times[credits] = _fv_select_time(config, selectivity=1.0)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncredits -> us: { {c: t / 1000 for c, t in times.items()} }")
    assert times[1] > times[4] >= times[32]


def test_ablation_packet_size(benchmark):
    """Small packets waste goodput on headers; 1 kB+ amortizes them."""

    def run():
        times = {}
        for packet in (256, 1 * KB, 4 * KB):
            config, _ = _config(packet=packet)
            times[packet] = _fv_select_time(config, selectivity=1.0)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npacket -> us: { {p: t / 1000 for p, t in times.items()} }")
    assert times[256] > times[1 * KB] >= times[4 * KB] * 0.9


def test_ablation_burst_size(benchmark):
    """Tiny MMU bursts pay per-burst latency; big bursts reduce overlap.

    Mid-size bursts should be within a few percent of the best setting.
    """

    def run():
        times = {}
        for burst in (1 * KB, 16 * KB, 64 * KB):
            sim_config = FarviewConfig(
                memory=MemoryConfig(channels=2, channel_capacity=32 * MB))
            bench = make_bench(sim_config)
            bench.node.mmu.burst_bytes = burst
            wl = selection_workload(8192, 1.0)
            table = upload_table(bench, "S", wl.schema, wl.rows)
            _, elapsed = run_query_warm(bench, table,
                                        select_star(wl.predicate))
            times[burst] = elapsed
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nburst -> us: { {b: t / 1000 for b, t in times.items()} }")
    assert times[1 * KB] > times[16 * KB]  # per-burst latency dominates


def test_ablation_vectorization_by_selectivity(benchmark):
    """Vectorization pays off only below the network-bound regime (§5.3)."""

    def run():
        ratios = {}
        for selectivity in (1.0, 0.25):
            config, _ = _config()
            t_std = _fv_select_time(config, selectivity, vectorized=False)
            t_vec = _fv_select_time(config, selectivity, vectorized=True)
            ratios[selectivity] = t_std / t_vec
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nselectivity -> speedup: {ratios}")
    assert ratios[1.0] == pytest.approx(1.0, abs=0.15)
    assert ratios[0.25] >= 1.4


def test_ablation_join_offload_vs_ship_both(benchmark):
    """§7 join: offloading avoids shipping the fact table to the client."""

    from repro.common.records import Column, Schema
    import numpy as np

    dim_schema = Schema([Column("id", "int64"), Column("rate", "float64")])

    def run():
        bench = make_bench()
        dim = dim_schema.empty(64)
        dim["id"] = np.arange(64)
        dim["rate"] = np.arange(64) * 0.5
        dim_table = FTable("dim", dim_schema, len(dim))
        bench.client.alloc_table_mem(dim_table)
        bench.client.table_write(dim_table, dim)

        from repro.common.records import default_schema
        fact_schema = default_schema()
        fact = make_rows(fact_schema, 8192)
        fact["a"] = np.arange(8192) % 256  # 25% of keys match the dim
        fact_table = FTable("fact", fact_schema, len(fact))
        bench.client.alloc_table_mem(fact_table)
        bench.client.table_write(fact_table, fact)

        join_query = Query(join=JoinSpec(dim_table, "id", "a", ("rate",)))
        result, t_offload = run_query_warm(bench, fact_table, join_query)

        # Alternative: ship both tables raw and join on the client.
        _, t_fact = bench.client.table_read(fact_table)
        _, t_dim = bench.client.table_read(dim_table)
        t_ship = t_fact + t_dim
        return result.report.bytes_shipped, fact_table.size_bytes, \
            t_offload, t_ship

    shipped, fact_bytes, t_offload, t_ship = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\njoin offload: shipped {shipped} of {fact_bytes} fact bytes; "
          f"offload {t_offload / 1000:.1f} us vs ship-both "
          f"{t_ship / 1000:.1f} us")
    assert shipped < fact_bytes  # only matches travel
    assert t_offload < t_ship
