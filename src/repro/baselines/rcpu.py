"""RCPU baseline: remote buffer cache behind a CPU + commercial NIC (§6.1).

"a remote buffer cache implemented on the memory of a different machine
and reachable through a commercial NIC via two-sided RDMA operations ...
This latter configuration resembles what is being done today for storage,
where part of the processing is moved to a CPU located in the storage
server."

The remote CPU runs the same software operators as LCPU (it owns the
buffer cache in its DRAM), then the *result* travels to the client over
the commercial NIC.  The two-sided protocol adds software RPC overhead on
both ends.  RCPU is therefore LCPU plus network shipping — matching the
paper's observation that "in all the cases it is slower than LCPU" (§6.4).
"""

from __future__ import annotations

import numpy as np

from ..common import calibration as cal
from ..common.config import RnicConfig
from ..common.records import Schema
from ..operators.aggregate import AggregateSpec
from ..operators.selection import Predicate
from .cpu_model import CostBreakdown, CpuCostModel
from .lcpu import LcpuBaseline


class RcpuBaseline:
    """Remote-CPU query execution: LCPU semantics + result shipping."""

    def __init__(self, model: CpuCostModel | None = None,
                 nic: RnicConfig | None = None):
        self.model = model if model is not None else CpuCostModel()
        self.nic = nic if nic is not None else RnicConfig()
        self._local = LcpuBaseline(self.model)

    # -- network shipping ---------------------------------------------------------
    def _ship_ns(self, nbytes: int) -> float:
        """Result transfer over the commercial NIC (two-sided send)."""
        if nbytes == 0:
            return self.nic.one_way_latency_ns
        packets = max(1, -(-nbytes // self.nic.packet_size))
        wire = (nbytes + packets * self.nic.header_overhead) / self.nic.line_rate
        pcie = nbytes / self.nic.pcie_bandwidth
        return (max(wire, pcie, packets * cal.RNIC_PIPELINED_PER_PACKET_NS)
                + self.nic.one_way_latency_ns + self.nic.pcie_latency_ns)

    def _wrap(self, result, local_ns: float, cost: CostBreakdown,
              shipped_bytes: int):
        cost.add("two_sided_rpc", self.model.two_sided_ns())
        cost.add("ship_result", self._ship_ns(shipped_bytes))
        return result, cost.total_ns, cost

    # -- operators (same signatures as LCPU) --------------------------------------------
    def select(self, schema: Schema, rows: np.ndarray, predicate: Predicate):
        result, local_ns, cost = self._local.select(schema, rows, predicate)
        return self._wrap(result, local_ns, cost,
                          len(result) * schema.row_width)

    def distinct(self, schema: Schema, rows: np.ndarray,
                 key_columns: list[str]):
        result, local_ns, cost = self._local.distinct(schema, rows,
                                                      key_columns)
        return self._wrap(result, local_ns, cost,
                          len(result) * schema.row_width)

    def group_by(self, schema: Schema, rows: np.ndarray,
                 key_columns: list[str], aggregates: list[AggregateSpec]):
        result, local_ns, cost = self._local.group_by(schema, rows,
                                                      key_columns, aggregates)
        return self._wrap(result, local_ns, cost,
                          len(result) * result.dtype.itemsize)

    def regex(self, schema: Schema, rows: np.ndarray, column: str,
              pattern: str):
        result, local_ns, cost = self._local.regex(schema, rows, column,
                                                   pattern)
        return self._wrap(result, local_ns, cost,
                          len(result) * schema.row_width)

    def decrypt(self, schema: Schema, image: bytes, key: bytes,
                nonce: bytes):
        result, local_ns, cost = self._local.decrypt(schema, image, key,
                                                     nonce)
        return self._wrap(result, local_ns, cost, len(image))
