"""Figure 8: selection response times at 100% / 50% / 25% selectivity (§6.4).

Query: ``SELECT * FROM S WHERE S.a < X AND S.b < Y`` over the paper's
default 64-byte tuples, table sizes 64 kB .. 1 MB, four systems:

* ``FV``   — Farview, standard execution model,
* ``FV-V`` — Farview, vectorized execution model,
* ``LCPU`` — local buffer cache + local CPU,
* ``RCPU`` — remote buffer cache + remote CPU + commercial NIC.

Expected shape: FV <= LCPU <= RCPU everywhere; FV-V ~ FV at 100%
(network-bound), slightly ahead at 50%, and ~2x ahead at 25%
(pipeline-bound vs memory-parallel).
"""

from __future__ import annotations

from ..baselines.lcpu import LcpuBaseline
from ..baselines.rcpu import RcpuBaseline
from ..core.query import select_star
from ..sim.stats import Series
from ..workloads.generator import selection_workload
from .common import ExperimentResult, make_bench, run_query_warm, upload_table, us

KB = 1024
TABLE_SIZES = (64 * KB, 128 * KB, 256 * KB, 512 * KB, 1024 * KB)
SELECTIVITIES = (1.0, 0.5, 0.25)
ROW_WIDTH = 64


def _fv_time(workload, vectorized: bool) -> float:
    bench = make_bench()
    table = upload_table(bench, "S", workload.schema, workload.rows)
    query = select_star(workload.predicate, vectorized=vectorized)
    result, elapsed = run_query_warm(bench, table, query)
    expected = int(workload.predicate.evaluate(workload.rows).sum())
    assert len(result.rows()) == expected
    return elapsed


def run_panel(selectivity: float,
              table_sizes=TABLE_SIZES) -> ExperimentResult:
    fv = Series("FV")
    fvv = Series("FV-V")
    lcpu_s = Series("LCPU")
    rcpu_s = Series("RCPU")
    lcpu = LcpuBaseline()
    rcpu = RcpuBaseline()
    for size in table_sizes:
        workload = selection_workload(size // ROW_WIDTH, selectivity)
        fv.add(size, us(_fv_time(workload, vectorized=False)))
        fvv.add(size, us(_fv_time(workload, vectorized=True)))
        _, t_l, _ = lcpu.select(workload.schema, workload.rows,
                                workload.predicate)
        lcpu_s.add(size, us(t_l))
        _, t_r, _ = rcpu.select(workload.schema, workload.rows,
                                workload.predicate)
        rcpu_s.add(size, us(t_r))
    pct = int(selectivity * 100)
    return ExperimentResult(
        experiment_id=f"fig8_{pct}pct",
        title=f"Selection response time, {pct}% selectivity",
        x_label="table [B]", y_label="us",
        series=[fv, fvv, lcpu_s, rcpu_s],
        notes=["FV <= LCPU <= RCPU; FV-V pulls ahead as selectivity drops"])


def run(table_sizes=TABLE_SIZES,
        selectivities=SELECTIVITIES) -> list[ExperimentResult]:
    return [run_panel(sel, table_sizes) for sel in selectivities]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
