"""SQL front end for the Farview client (§4.2's "query compiler").

This module is the stable import surface; the implementation lives in
the compiler layers underneath:

* :mod:`repro.core.ir` — the typed relational-algebra DAG (Scan, Join,
  Filter, Aggregate/Having, Project-with-expressions, Distinct, Sort,
  Limit) plus scalar expression nodes and SQL rendering.
* :mod:`repro.core.compile` — tokenizer, recursive-descent parser
  producing the IR, the lowering pass onto the engine's operator
  chains, and :func:`bind_select`, the name-resolution / type-check
  pass for statements beyond the single-chain grammar.

Grammar (see ``docs/SQL.md`` for the full reference)::

    statement := query | insert | update | delete
    query     := [hint] SELECT [DISTINCT] select_list FROM ident
                 join_clause* [WHERE disjunction]
                 [GROUP BY column_list] [HAVING having_disjunction]
                 [ORDER BY order_list] [LIMIT integer] [';']
    hint      := '/*+' 'placement' '(' ('auto'|'offload'|'ship') ')' '*/'
    select_list := '*' | select_item (',' select_item)*
    select_item := aggregate | expression [AS ident]
    aggregate := (COUNT '(' '*' ')' | func '(' expression ')') [AS ident]
              where func := COUNT | SUM | MIN | MAX | AVG
    join_clause := [INNER] JOIN ident ON column '=' column
    expression := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := ['-'] number | string | column | '(' expression ')'
    disjunction := conjunction (OR conjunction)*
    conjunction := cond_factor (AND cond_factor)*
    cond_factor := [NOT] ( '(' disjunction ')' | comparison )
    comparison := column op literal
               | column LIKE string | column REGEXP string
    order_list := column [ASC|DESC] (',' column [ASC|DESC])*
    op        := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    insert    := INSERT INTO ident VALUES tuple (',' tuple)* [';']
    update    := UPDATE ident SET ident '=' literal
                 (',' ident '=' literal)* [where] [';']
    delete    := DELETE FROM ident [where] [';']

Statements expressible in the original single-chain grammar (at most
one join, no ORDER BY / LIMIT / HAVING, no expressions or aliases on
plain columns) parse to the exact same :class:`ParsedQuery` the
original parser produced and execute on the unchanged legacy path.
Everything else is marked ``extended`` and routed through the IR
binder (multi-way joins become chained build/probe stages; ORDER BY /
LIMIT / expression projections become deterministic client-side
kernels).
"""

from .compile import (ParsedJoin, ParsedQuery, ParsedWrite, SqlSyntaxError,
                      bind_select, like_to_regex, parse_sql,
                      resolve_join_query)

__all__ = [
    "ParsedJoin",
    "ParsedQuery",
    "ParsedWrite",
    "SqlSyntaxError",
    "bind_select",
    "like_to_regex",
    "parse_sql",
    "resolve_join_query",
]
