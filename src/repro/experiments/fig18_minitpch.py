"""Figure 18 (extension): mini TPC-H through the SQL compiler.

The compiler PR's headline experiment: Q1/Q3/Q6-class statements from
:mod:`repro.workloads.tpch` run **end-to-end as SQL text** — tokenizer,
IR, binder, lowered DAG — on a 4-node disaggregated pool, under all
three placements, and every result's sha256 is pinned against
:mod:`repro.baselines.sql_model`, a serial numpy/python re-execution
that shares none of the engine's operator, simulator, or cluster code.

* **Q1-class** — grouped aggregation (SUM/AVG/COUNT) with HAVING and
  ORDER BY variants.  Aggregates the integer-valued ``quantity`` so the
  cluster's associative partial merges stay byte-exact (float columns
  may wobble in the last ulp — the documented cluster contract).
* **Q3-class** — a three-table join (lineitem x orders x customer) with
  per-table WHERE pushdown, an expression aggregate
  ``SUM(extendedprice * (1 - discount))``, and a top-10 ORDER BY.
* **Q6-class** — the 2%-selectivity band scan with a client-side
  expression revenue sum.

Every (query, placement) cell must be sha256-identical to the model
(asserted); reported times are warm runs (deploy excluded, like every
other figure).
"""

from __future__ import annotations

import hashlib

from ..baselines.sql_model import model_sha256
from ..core.api import ClusterClient, canonical_result_bytes
from ..core.cluster import FarviewCluster
from ..sim.engine import Simulator
from ..sim.stats import Series
from ..workloads import tpch
from .common import EXPERIMENT_CONFIG, ExperimentResult, us

#: Placements swept per query, in reporting order.
STRATEGIES = ("offload", "ship", "auto")

NUM_NODES = 4

#: Mini-scale row counts: large enough that every operator (join build,
#: group hash, sort) does real work, small enough that the serial
#: python model stays fast.
NUM_LINEITEM = 4096
NUM_ORDERS = 768
NUM_CUSTOMERS = 256

#: The conformance workload, in reporting order.
QUERIES: tuple[tuple[str, str], ...] = (
    ("Q1", tpch.q1_sql()),
    ("Q1-having", tpch.q1_having_sql()),
    ("Q3", tpch.q3_sql()),
    ("Q6", tpch.q6_sql()),
)


def make_tables(num_lineitem: int = NUM_LINEITEM,
                num_orders: int = NUM_ORDERS,
                num_customers: int = NUM_CUSTOMERS) -> dict:
    """The FK-consistent mini star: ``{name: (schema, rows)}``."""
    return {
        "lineitem": (tpch.LINEITEM_SCHEMA,
                     tpch.lineitem_for_orders(num_lineitem, num_orders)),
        "orders": (tpch.ORDERS_SCHEMA,
                   tpch.orders(num_orders, num_customers)),
        "customer": (tpch.CUSTOMER_SCHEMA,
                     tpch.customer(num_customers)),
    }


def _make_cluster(tables: dict, num_nodes: int) -> ClusterClient:
    client = ClusterClient(FarviewCluster(Simulator(), num_nodes,
                                          EXPERIMENT_CONFIG))
    client.open_connection()
    for name, (schema, rows) in tables.items():
        client.create_table(name, schema, rows)
    return client


def run_conformance(num_nodes: int = NUM_NODES) -> ExperimentResult:
    """fig18: every query x placement, sha-pinned against the model."""
    tables = make_tables()
    expected = {label: model_sha256(stmt, tables)
                for label, stmt in QUERIES}
    series = {s: Series(f"FV-{s[:4]}") for s in STRATEGIES}
    clients = {s: _make_cluster(tables, num_nodes) for s in STRATEGIES}
    for qx, (label, stmt) in enumerate(QUERIES, start=1):
        for strategy in STRATEGIES:
            client = clients[strategy]
            client.sql(stmt, placement=strategy)       # deploy (cold)
            result, elapsed = client.sql(stmt, placement=strategy)
            digest = hashlib.sha256(
                canonical_result_bytes(result)).hexdigest()
            assert digest == expected[label], (
                f"{label} under {strategy} on {num_nodes} nodes diverged "
                f"from the serial model: {digest} != {expected[label]}")
            series[strategy].add(qx, us(elapsed), query=label)
    return ExperimentResult(
        experiment_id="fig18",
        title=(f"Mini TPC-H through the SQL compiler, "
               f"{num_nodes}-node pool ({NUM_LINEITEM} lineitem rows)"),
        x_label="query (1=Q1, 2=Q1-having, 3=Q3, 4=Q6)", y_label="us",
        series=list(series.values()),
        notes=[
            "each statement is compiled from SQL text (IR, binder, "
            "lowered DAG) and scatter-gathered over the pool",
            "every query x placement cell is sha256-identical to the "
            "serial numpy re-execution model (asserted)",
            "warm runs; the cold deploy pass is excluded, like every "
            "other figure",
        ])


def run() -> list[ExperimentResult]:
    return [run_conformance()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
