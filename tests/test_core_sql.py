"""SQL front end: tokenizer, parser, LIKE translation, end-to-end."""

import numpy as np
import pytest

from repro.common.records import default_schema, string_schema
from repro.core.sql import (ParsedWrite, SqlSyntaxError, like_to_regex,
                            parse_sql)
from repro.operators.regex_engine import compile_pattern
from repro.operators.selection import And, Compare, Not, Or


# --- basic statements ---------------------------------------------------------

def test_select_star():
    parsed = parse_sql("SELECT * FROM S")
    assert parsed.table == "S"
    assert parsed.query.projection is None
    assert parsed.query.predicate is None


def test_select_columns():
    parsed = parse_sql("SELECT a, b FROM t;")
    assert parsed.query.projection == ("a", "b")


def test_table_qualified_columns_resolve():
    parsed = parse_sql("SELECT S.a FROM S WHERE S.c > 3.14;")
    assert parsed.table == "S"
    assert parsed.query.projection == ("a",)
    assert parsed.query.predicate == Compare("c", ">", 3.14)


def test_keywords_case_insensitive():
    parsed = parse_sql("select A From T wHeRe A < 5")
    assert parsed.query.predicate == Compare("A", "<", 5)


def test_paper_selection_query():
    """§6.4: SELECT * FROM S WHERE S.a < X AND S.b < Y."""
    parsed = parse_sql("SELECT * FROM S WHERE S.a < 17 AND S.b < 0.5")
    assert parsed.query.predicate == And(Compare("a", "<", 17),
                                         Compare("b", "<", 0.5))


def test_distinct():
    parsed = parse_sql("SELECT DISTINCT a FROM S")
    assert parsed.query.distinct
    assert parsed.query.projection == ("a",)


def test_group_by_sum():
    """§6.5: SELECT S.a, SUM(S.b) FROM S GROUP BY S.a."""
    parsed = parse_sql("SELECT a, SUM(b) FROM S GROUP BY a")
    q = parsed.query
    assert q.group_by == ("a",)
    assert len(q.aggregates) == 1
    assert q.aggregates[0].func == "sum"
    assert q.aggregates[0].column == "b"


def test_aggregates_with_aliases():
    parsed = parse_sql(
        "SELECT a, COUNT(*) AS n, AVG(b) AS mean FROM t GROUP BY a")
    specs = parsed.query.aggregates
    assert [s.alias for s in specs] == ["n", "mean"]
    assert specs[0].column == "*"


def test_standalone_aggregate():
    parsed = parse_sql("SELECT COUNT(*), MAX(a) FROM t")
    assert parsed.query.group_by is None
    assert len(parsed.query.aggregates) == 2


# --- WHERE expressions ------------------------------------------------------------

def test_boolean_nesting():
    parsed = parse_sql(
        "SELECT * FROM t WHERE (a < 1 OR b > 2.0) AND NOT c = 3")
    expected = And(Or(Compare("a", "<", 1), Compare("b", ">", 2.0)),
                   Not(Compare("c", "==", 3)))
    assert parsed.query.predicate == expected


def test_operator_spellings():
    parsed = parse_sql("SELECT * FROM t WHERE a <> 1 AND b != 2 AND c = 3")
    expected = And(And(Compare("a", "!=", 1), Compare("b", "!=", 2)),
                   Compare("c", "==", 3))
    assert parsed.query.predicate == expected


def test_string_literal_with_escaped_quote():
    parsed = parse_sql("SELECT * FROM t WHERE s = 'it''s'")
    assert parsed.query.predicate == Compare("s", "==", "it's")


def test_regexp_term():
    parsed = parse_sql("SELECT * FROM t WHERE s REGEXP 'far(view|sight)'")
    assert parsed.query.regex is not None
    assert parsed.query.regex.pattern == "far(view|sight)"
    assert parsed.query.predicate is None


def test_like_combined_with_predicate():
    parsed = parse_sql(
        "SELECT * FROM t WHERE id < 100 AND s LIKE '%farview%'")
    assert parsed.query.predicate == Compare("id", "<", 100)
    assert parsed.query.regex is not None


# --- LIKE translation ----------------------------------------------------------------

def test_like_percent_and_underscore():
    regex = like_to_regex("a%b_c")
    assert regex == "^a.*b.c$"
    compiled = compile_pattern(regex)
    assert compiled.search(b"aXXXbYc")
    assert not compiled.search(b"aXXXbYYc")


def test_like_escapes_metacharacters():
    regex = like_to_regex("50.5%")
    compiled = compile_pattern(regex)
    assert compiled.search(b"50.5 percent")
    assert not compiled.search(b"50x5 percent")


def test_like_is_full_match():
    compiled = compile_pattern(like_to_regex("abc"))
    assert compiled.search(b"abc")
    assert not compiled.search(b"xabcx")  # SQL LIKE matches whole value


# --- syntax errors -------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    "",
    "SELECT FROM t",
    "SELECT * t",
    "SELECT *, a FROM t",
    "SELECT a FROM",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t WHERE a <",
    "SELECT a FROM t WHERE a < 1 extra",
    "SELECT a FROM t GROUP BY",
    "SELECT a, SUM(b) FROM t",                    # aggregates need GROUP BY
    "SELECT b, SUM(b) FROM t GROUP BY a",         # b not in GROUP BY
    "SELECT a FROM t GROUP BY a",                 # GROUP BY needs aggregates
    "SELECT DISTINCT SUM(a) FROM t",
    "SELECT a FROM t WHERE s LIKE 5",
    "SELECT a FROM t WHERE s LIKE 'x' AND s LIKE 'y'",
    "SELECT a FROM t WHERE a < 1 OR s LIKE 'x'",  # regex under OR
    "SELECT a FROM t WHERE NOT s LIKE 'x'",
    "SELECT a FROM t WHERE a ~ 1",
])
def test_syntax_errors(bad):
    with pytest.raises(SqlSyntaxError):
        parse_sql(bad)


# --- end-to-end through the node ----------------------------------------------------------

@pytest.fixture
def bench():
    from repro.experiments.common import make_bench, upload_table
    from repro.workloads.generator import make_rows

    b = make_bench()
    schema = default_schema()
    rows = make_rows(schema, 512)
    rows["c"] = np.arange(512) % 7
    table = upload_table(b, "S", schema, rows)
    return b, rows, table


def test_sql_selection_end_to_end(bench):
    b, rows, table = bench
    result, _ = b.client.sql("SELECT * FROM S WHERE c < 3")
    expected = rows[rows["c"] < 3]
    np.testing.assert_array_equal(result.rows()["a"], expected["a"])


def test_sql_groupby_end_to_end(bench):
    b, rows, table = bench
    result, _ = b.client.sql(
        "SELECT c, COUNT(*) AS n FROM S GROUP BY c")
    got = {int(r["c"]): int(r["n"]) for r in result.rows()}
    expected = {}
    for v in rows["c"]:
        expected[int(v)] = expected.get(int(v), 0) + 1
    assert got == expected


def test_sql_distinct_end_to_end(bench):
    b, rows, table = bench
    result, _ = b.client.sql("SELECT DISTINCT c FROM S")
    assert sorted(result.rows()["c"].tolist()) == sorted(set(rows["c"].tolist()))


def test_sql_like_end_to_end():
    from repro.experiments.common import make_bench, upload_table
    from repro.workloads.generator import string_workload

    b = make_bench()
    schema, rows = string_workload(64, 64, match_fraction=0.5)
    table = upload_table(b, "docs", schema, rows)
    result, _ = b.client.sql("SELECT * FROM docs WHERE s LIKE '%farview%'")
    expected = {int(r["id"]) for r in rows if b"farview" in bytes(r["s"])}
    assert set(result.rows()["id"].tolist()) == expected


def test_sql_unknown_table_raises(bench):
    b, _, _ = bench
    from repro.common.errors import CatalogError
    with pytest.raises(CatalogError):
        b.client.sql("SELECT * FROM missing")


# --- write statements (versioned write path) ----------------------------------

def test_insert_values():
    parsed = parse_sql(
        "INSERT INTO t VALUES (1, 2.5, 'x'), (-3, 4, 'y');")
    assert isinstance(parsed, ParsedWrite)
    assert parsed.kind == "insert"
    assert parsed.table == "t"
    assert parsed.values == ((1, 2.5, "x"), (-3, 4, "y"))


def test_update_set_where():
    parsed = parse_sql("UPDATE t SET a = 5, b = -2.5 WHERE c >= 10 AND d < 3")
    assert isinstance(parsed, ParsedWrite)
    assert parsed.kind == "update"
    assert parsed.assignments == (("a", 5), ("b", -2.5))
    assert parsed.predicate == And(Compare("c", ">=", 10),
                                   Compare("d", "<", 3))


def test_update_without_where_hits_every_row():
    parsed = parse_sql("UPDATE t SET a = 'z'")
    assert parsed.predicate is None
    assert parsed.assignments == (("a", "z"),)


def test_delete_from_where():
    parsed = parse_sql("DELETE FROM t WHERE a = 7;")
    assert isinstance(parsed, ParsedWrite)
    assert parsed.kind == "delete"
    assert parsed.predicate == Compare("a", "==", 7)


def test_delete_without_where():
    parsed = parse_sql("DELETE FROM t")
    assert parsed.kind == "delete" and parsed.predicate is None


def test_negative_literal_in_select_predicate():
    parsed = parse_sql("SELECT * FROM t WHERE a > -5")
    assert parsed.query.predicate == Compare("a", ">", -5)


@pytest.mark.parametrize("bad", [
    "INSERT INTO t",                          # missing VALUES
    "INSERT INTO t VALUES ()",                # empty tuple
    "INSERT INTO t VALUES (1,)",              # dangling comma
    "UPDATE t SET",                           # missing assignment
    "UPDATE t SET a = 1, a = 2",              # duplicate column
    "UPDATE t SET a = 1 WHERE s LIKE 'x%'",   # regex stage in a write
    "DELETE FROM t WHERE s REGEXP 'a+'",      # regex stage in a write
    "UPDATE t SET a = -",                     # dangling minus
    "INSERT INTO t VALUES (1) trailing",      # trailing junk
    "/*+ placement(ship) */ DELETE FROM t",   # hints apply to reads only
])
def test_write_syntax_errors(bad):
    with pytest.raises(SqlSyntaxError):
        parse_sql(bad)


# --- JOIN clause (the §7 small-table join) -------------------------------------

def _schemas():
    from repro.common.records import Column, Schema
    probe = Schema([Column("k", "int64"), Column("v", "float64"),
                    Column("rate", "int64")])
    build = Schema([Column("id", "int64"), Column("rate", "float64"),
                    Column("zone", "int64")])
    return probe, build


class _BuildHandle:
    """A catalog-handle stand-in: resolve_join_query only needs .schema."""

    def __init__(self, schema):
        self.schema = schema
        self.name = "dim"


def test_join_clause_parses_qualified_on():
    parsed = parse_sql(
        "SELECT fact.k, dim.rate FROM fact JOIN dim ON fact.k = dim.id")
    assert parsed.table == "fact"
    assert parsed.join is not None
    assert parsed.join.table == "dim"
    assert parsed.join.left == ("fact", "k")
    assert parsed.join.right == ("dim", "id")
    assert parsed.join.select == (("fact", "k"), ("dim", "rate"))
    assert not parsed.join.star
    # The projection is left to resolution (build columns are unknown).
    assert parsed.query.projection is None


def test_inner_join_keyword_and_star():
    parsed = parse_sql("SELECT * FROM f INNER JOIN d ON f.a = d.b;")
    assert parsed.join is not None and parsed.join.star


def test_join_resolution_splits_select_list():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    parsed = parse_sql(
        "SELECT fact.k, dim.rate, fact.v FROM fact JOIN dim "
        "ON fact.k = dim.id WHERE fact.v < 2.5")
    query = resolve_join_query(parsed, probe, _BuildHandle(build))
    assert query.join.build_key == "id"
    assert query.join.probe_key == "k"
    assert query.join.payload == ("rate",)
    # Payload "rate" collides with a probe column -> renamed in the
    # projection, probe columns keep their order.
    assert query.projection == ("k", "build_rate", "v")
    assert query.predicate == Compare("v", "<", 2.5)


def test_join_resolution_unqualified_and_swapped_on_sides():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    parsed = parse_sql("SELECT k, zone FROM fact JOIN dim ON id = k")
    query = resolve_join_query(parsed, probe, _BuildHandle(build))
    assert (query.join.build_key, query.join.probe_key) == ("id", "k")
    assert query.join.payload == ("zone",)
    assert query.projection == ("k", "zone")


def test_join_resolution_build_key_select_maps_to_probe_key():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    parsed = parse_sql(
        "SELECT dim.id, dim.zone FROM fact JOIN dim ON fact.k = dim.id")
    query = resolve_join_query(parsed, probe, _BuildHandle(build))
    assert query.projection == ("k", "zone")
    assert query.join.payload == ("zone",)


def test_join_resolution_star_appends_non_key_build_columns():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    parsed = parse_sql("SELECT * FROM fact JOIN dim ON fact.k = dim.id")
    query = resolve_join_query(parsed, probe, _BuildHandle(build))
    assert query.projection is None
    assert query.join.payload == ("rate", "zone")


def test_join_resolution_semi_join_borrows_payload():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    parsed = parse_sql("SELECT k, v FROM fact JOIN dim ON fact.k = dim.id")
    query = resolve_join_query(parsed, probe, _BuildHandle(build))
    assert query.projection == ("k", "v")     # payload projected away
    assert len(query.join.payload) == 1


def test_join_resolution_errors():
    from repro.core.sql import resolve_join_query
    probe, build = _schemas()
    for statement, message in [
        ("SELECT k FROM fact JOIN dim ON other.k = dim.id",
         "unknown table qualifier"),
        ("SELECT k FROM fact JOIN dim ON fact.k = fact.v",
         "must relate"),
        ("SELECT k FROM fact JOIN dim ON fact.k = dim.nope",
         "unknown column"),
        ("SELECT fact.nope, dim.rate FROM fact JOIN dim "
         "ON fact.k = dim.id", "unknown column"),
    ]:
        parsed = parse_sql(statement)
        with pytest.raises(SqlSyntaxError, match=message):
            resolve_join_query(parsed, probe, _BuildHandle(build))


@pytest.mark.parametrize("bad", [
    "SELECT a FROM f JOIN",                       # missing build table
    "SELECT a FROM f JOIN d",                     # missing ON
    "SELECT a FROM f JOIN d ON a < b",            # non-equality
    "SELECT a FROM f INNER d ON a = b",           # INNER without JOIN
])
def test_join_syntax_errors(bad):
    with pytest.raises(SqlSyntaxError):
        parse_sql(bad)


def test_multi_join_parses_to_chained_stages():
    """Multi-way joins are no longer a syntax error: they parse to an
    extended statement whose IR chains one Join node per stage."""
    from repro.core.ir import Join, Scan

    parsed = parse_sql(
        "SELECT a FROM f JOIN d ON a = b JOIN e ON c = k")
    assert parsed.extended
    join2 = parsed.ir.child          # Project -> Join(e) -> Join(d) -> Scan
    join1 = join2.child
    assert isinstance(join2, Join) and join2.table == "e"
    assert isinstance(join1, Join) and join1.table == "d"
    assert isinstance(join1.child, Scan) and join1.child.table == "f"


# ---------------------------------------------------------------------------
# Error quality: positions, fragments, golden messages
# ---------------------------------------------------------------------------

def _error_for(statement: str) -> SqlSyntaxError:
    with pytest.raises(SqlSyntaxError) as excinfo:
        parse_sql(statement)
    return excinfo.value


def test_error_carries_position_and_fragment():
    err = _error_for("SELECT a FROM t WHERE a ** 3")
    assert err.position == len("SELECT a FROM t WHERE a ")
    assert err.fragment == "*"
    assert f"offset {err.position}" in str(err)


def test_error_position_survives_placement_hint():
    """Positions are measured in the *original* statement, so stripping
    the ``/*+ placement(...) */`` hint must not shift them."""
    plain = "SELECT a FROM t WHERE a ** 3"
    hinted = "/*+ placement(ship) */ " + plain
    assert _error_for(hinted).position == (_error_for(plain).position
                                           + len("/*+ placement(ship) */ "))


@pytest.mark.parametrize("statement,message", [
    ("SELECT *, a FROM t", "'\\*' cannot be mixed with other select items"),
    ("SELECT *, * FROM t", "'\\*' cannot be mixed with other select items"),
    ("SELECT a, * FROM t", "'\\*' cannot be mixed with other select items"),
    ("SELECT a FROM t ORDER BY", "expected a column"),
    ("SELECT a FROM t LIMIT x", "LIMIT expects"),
    ("SELECT a FROM t LIMIT -1", "LIMIT expects"),
    ("SELECT a FROM t HAVING COUNT(*) > 1", "HAVING requires GROUP BY"),
    ("SELECT a, COUNT(*) FROM t",
     "plain columns next to aggregates need a GROUP BY"),
])
def test_golden_error_messages(statement, message):
    with pytest.raises(SqlSyntaxError, match=message):
        parse_sql(statement)


def test_expression_item_without_alias_rejected_at_bind_time():
    """``SELECT (a + 1) FROM t`` parses (the IR is valid) but binding
    demands a deterministic output name."""
    from repro.core.compile import bind_select
    from repro.common.records import Column, Schema

    class _Handle:
        def __init__(self, name, schema):
            self.name, self.schema = name, schema

    class _Catalog:
        def lookup(self, name):
            return _Handle(name, Schema([Column("a", "int64")]))

    parsed = parse_sql("SELECT (a + 1) FROM t ORDER BY a")
    with pytest.raises(SqlSyntaxError,
                       match="expression select items need an AS alias"):
        bind_select(parsed, _Catalog())


def test_star_mixing_rejected_under_distinct_too():
    with pytest.raises(SqlSyntaxError,
                       match="cannot be mixed with other select items"):
        parse_sql("SELECT DISTINCT *, a FROM t")
