"""FPGA fabric: clocks, dynamic regions, resource model (Table 1)."""

import pytest

from repro.common.config import OperatorStackConfig
from repro.common.errors import ConfigurationError, OperatorError, RegionUnavailableError
from repro.fpga.clock import MEMORY_CLOCK, OPERATOR_CLOCK, ClockDomain
from repro.fpga.region import DynamicRegion, RegionManager, RegionState
from repro.fpga.resource_model import (
    OPERATOR_COSTS,
    PER_REGION,
    SHELL,
    SYSTEM_6_REGIONS,
    ResourceModel,
    ResourceVector,
    operator_cost,
    render_table1,
    system_cost,
)
from repro.sim.engine import Simulator


# --- clocks --------------------------------------------------------------------

def test_paper_clock_frequencies():
    assert OPERATOR_CLOCK.freq_mhz == 250.0
    assert MEMORY_CLOCK.freq_mhz == 300.0


def test_cycle_conversions():
    clk = ClockDomain("t", 250.0)
    assert clk.cycle_ns == pytest.approx(4.0)
    assert clk.cycles_to_ns(100) == pytest.approx(400.0)
    assert clk.ns_to_cycles(400.0) == pytest.approx(100.0)


def test_datapath_throughput():
    # 64 B at 250 MHz = 16 bytes/ns = 16 GB/s (paper §4.5 datapath)
    assert OPERATOR_CLOCK.throughput(64) == pytest.approx(16.0)


def test_clock_validation():
    with pytest.raises(ConfigurationError):
        ClockDomain("bad", 0.0)
    clk = ClockDomain("t", 100.0)
    with pytest.raises(ConfigurationError):
        clk.cycles_to_ns(-1)
    with pytest.raises(ConfigurationError):
        clk.throughput(0)


# --- dynamic regions ----------------------------------------------------------

@pytest.fixture
def manager(sim):
    return RegionManager(sim, OperatorStackConfig(regions=3))


def test_acquire_assigns_free_regions(sim, manager):
    r1 = manager.acquire(qp_id=10)
    r2 = manager.acquire(qp_id=11)
    assert r1.index != r2.index
    assert manager.free_count == 1
    assert manager.region_of(10) is r1


def test_exhaustion_raises(sim, manager):
    for i in range(3):
        manager.acquire(qp_id=i)
    with pytest.raises(RegionUnavailableError):
        manager.acquire(qp_id=99)


def test_release_recycles(sim, manager):
    region = manager.acquire(qp_id=1)
    manager.release(region)
    assert manager.free_count == 3
    again = manager.acquire(qp_id=2)
    assert again.owner_qp == 2


def test_reconfiguration_takes_milliseconds(sim, manager):
    region = manager.acquire(qp_id=1)

    def proc():
        yield sim.process(region.load_pipeline("selection"))
        return sim.now

    elapsed = sim.run_process(proc())
    assert elapsed == pytest.approx(OperatorStackConfig().reconfiguration_ns)
    assert region.state is RegionState.READY
    assert region.loaded_pipeline == "selection"
    assert region.reconfigurations == 1


def test_reloading_same_pipeline_is_free(sim, manager):
    region = manager.acquire(qp_id=1)

    def proc():
        yield sim.process(region.load_pipeline("selection"))
        t0 = sim.now
        yield sim.process(region.load_pipeline("selection"))
        return sim.now - t0

    assert sim.run_process(proc()) == 0.0
    assert region.reconfigurations == 1


def test_swap_pipeline_reconfigures_again(sim, manager):
    region = manager.acquire(qp_id=1)

    def proc():
        yield sim.process(region.load_pipeline("selection"))
        yield sim.process(region.load_pipeline("groupby"))

    sim.run_process(proc())
    assert region.reconfigurations == 2
    assert region.loaded_pipeline == "groupby"


def test_load_without_owner_rejected(sim):
    region = DynamicRegion(sim, OperatorStackConfig(), 0)
    with pytest.raises(OperatorError):
        next(region.load_pipeline("x"))


def test_region_of_unknown_qp(manager):
    with pytest.raises(OperatorError):
        manager.region_of(12345)


# --- resource model (Table 1) ----------------------------------------------------

def test_shell_plus_regions_reproduces_table1_row():
    total = system_cost(6)
    assert total.luts == pytest.approx(SYSTEM_6_REGIONS.luts)
    assert total.regs == pytest.approx(SYSTEM_6_REGIONS.regs)
    assert total.bram == pytest.approx(SYSTEM_6_REGIONS.bram)
    assert total.dsps == 0.0


def test_no_operator_uses_dsps():
    assert all(v.dsps == 0.0 for v in OPERATOR_COSTS.values())


def test_operator_rows_match_paper():
    assert operator_cost("regex").luts == pytest.approx(0.023)
    assert operator_cost("distinct").bram == pytest.approx(0.08)
    assert operator_cost("distinct").regs == pytest.approx(0.013)
    assert operator_cost("encryption").luts == pytest.approx(0.036)
    assert operator_cost("selection").luts < 0.01


def test_unknown_operator_rejected():
    with pytest.raises(OperatorError):
        operator_cost("teleport")


def test_full_deployment_stays_under_30_percent():
    """§6.1: 'Farview does not utilize more than 30% of the total
    on-chip resources' — with the evaluation's six selection pipelines."""
    model = ResourceModel(regions=6)
    for i in range(6):
        # One combined proj/sel/agg stage plus the packing/sending stage —
        # the granularity of Table 1's operator rows.
        model.deploy(i, ["selection", "packing"])
    total = model.total()
    assert total.luts <= 0.30
    assert total.regs <= 0.30
    assert model.fits(0.35)


def test_heavy_deployment_exceeds_budget():
    model = ResourceModel(regions=6)
    for i in range(6):
        model.deploy(i, ["decryption", "regex", "distinct", "groupby",
                         "encryption", "packing", "sending"])
    assert not model.fits(0.30)  # BRAM-hungry pipelines blow the budget


def test_undeploy_restores(sim):
    model = ResourceModel(regions=2)
    base = model.total()
    model.deploy(0, ["distinct"])
    assert model.total().bram > base.bram
    model.undeploy(0)
    assert model.total().bram == pytest.approx(base.bram)


def test_deploy_validates_region_and_ops():
    model = ResourceModel(regions=2)
    with pytest.raises(OperatorError):
        model.deploy(5, ["selection"])
    with pytest.raises(OperatorError):
        model.deploy(0, ["bogus"])


def test_resource_vector_validation():
    with pytest.raises(ConfigurationError):
        ResourceVector(luts=1.5)
    with pytest.raises(ConfigurationError):
        ResourceVector(regs=-0.1)


def test_vector_addition_saturates():
    v = ResourceVector(luts=0.8) + ResourceVector(luts=0.8)
    assert v.luts == 1.0


def test_render_table1_contains_paper_values():
    text = render_table1()
    assert "6 regions" in text
    assert "24%" in text
    assert "29%" in text
    assert "2.3%" in text   # regex LUTs
    assert "3.6%" in text   # encryption LUTs
    assert "<1%" in text
    assert "8%" in text     # distinct BRAM
