"""Discrete-event simulation kernel.

A compact, dependency-free engine in the style of SimPy: *processes* are
Python generators that ``yield`` events (timeouts, queue operations, other
processes) and are resumed by the event loop when those events fire.  Time is
a float in **nanoseconds** (see :mod:`repro.common.units`).

The kernel is deliberately small — just enough to model pipelined hardware:
packet streams, bandwidth-limited channels, credit-based backpressure — while
staying fast enough to push megabytes of simulated traffic per experiment.

Example::

    sim = Simulator()

    def producer(env, store):
        for i in range(3):
            yield env.timeout(10.0)
            yield store.put(i)

    # (see repro.sim.resources for Store)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..common.errors import FarviewError


class SimulationError(FarviewError):
    """The event loop detected an inconsistency (e.g. deadlock)."""


class Event:
    """A one-shot occurrence with an optional value.

    Callbacks registered via :meth:`add_callback` run when the event is
    triggered.  Events may be triggered immediately (:meth:`succeed`) or
    scheduled through :meth:`Simulator.schedule_event`.
    """

    __slots__ = ("sim", "_value", "_ok", "triggered", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._ok = True
        self.triggered = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Late subscribers run at the current time, preserving ordering.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.triggered = True
        for fn in self._callbacks:
            self.sim.schedule(0.0, lambda fn=fn: fn(self))
        self._callbacks.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event now with an exception to raise in the waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = exc
        self._ok = False
        self.triggered = True
        for fn in self._callbacks:
            self.sim.schedule(0.0, lambda fn=fn: fn(self))
        self._callbacks.clear()
        return self


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any = None) -> None:
        self._value = value
        self.triggered = True
        for fn in self._callbacks:
            fn(self)
        self._callbacks.clear()


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process returns.

    The process generator yields :class:`Event` instances; the returned value
    of the generator becomes the value of this event.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        sim.schedule(0.0, self._resume, None, True)

    def _resume(self, event_value: Any = None, ok: bool = True) -> None:
        try:
            if ok:
                target = self._gen.send(event_value)
            else:
                target = self._gen.throw(event_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances")
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._resume(event.value, event.ok)

    def _finish(self, value: Any) -> None:
        self._value = value
        self.triggered = True
        for fn in self._callbacks:
            self.sim.schedule(0.0, lambda fn=fn: fn(self))
        self._callbacks.clear()


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            sim.schedule(0.0, lambda: self.succeed([]))
        else:
            for ev in self._events:
                ev.add_callback(self._child_done)

    def _child_done(self, _: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])


class Simulator:
    """The event loop: a time-ordered heap of scheduled callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), fn, args))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- running --------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap (optionally stopping at time ``until``).

        Returns the simulation time when the loop stopped.  ``max_events``
        guards against runaway loops in buggy models.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            steps = 0
            while self._heap:
                time, _seq, fn, args = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = time
                fn(*args)
                steps += 1
                if steps > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a runaway model")
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, gen: ProcessGenerator, name: str = "") -> Any:
        """Convenience: register ``gen``, drain the loop, return its value.

        Raises if the process did not complete (deadlock in the model).
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} never completed (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc.value
