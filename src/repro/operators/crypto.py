"""AES-128 in counter mode, from scratch (paper §5.5).

Farview stores data encrypted (Cypherbase-style) and runs a fully
parallelized, pipelined 128-bit AES-CTR core at line rate.  This module is
a faithful functional implementation:

* the S-box is *derived* (GF(2^8) inversion + affine transform) rather than
  hardcoded, and validated against FIPS-197 test vectors in the tests;
* key expansion and block encryption follow FIPS-197;
* bulk CTR processing is vectorized with numpy over many counter blocks at
  once — mirroring the hardware's block-parallel datapath and keeping
  megabyte-scale experiments fast;
* CTR is symmetric: :meth:`AesCtr.process` both encrypts and decrypts, and
  is seekable by block offset (needed to decrypt bursts mid-stream).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import OperatorError

# --------------------------------------------------------------------------
# GF(2^8) arithmetic and S-box derivation
# --------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[np.ndarray, np.ndarray]:
    """Derive the AES S-box: multiplicative inverse then affine transform."""
    # Build log/antilog tables over generator 3.
    exp = [0] * 255
    value = 1
    for i in range(255):
        exp[i] = value
        value = _gf_mul(value, 3)
    log = [0] * 256
    for i, v in enumerate(exp):
        log[v] = i
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        inv = 0 if x == 0 else exp[(255 - log[x]) % 255]
        # Affine transform: b_i' = b_i ^ b_(i+4) ^ b_(i+5) ^ b_(i+6) ^ b_(i+7) ^ c_i
        y = 0
        for bit in range(8):
            b = ((inv >> bit) ^ (inv >> ((bit + 4) % 8))
                 ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                 ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
            y |= b << bit
        sbox[x] = y
    inv_sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        inv_sbox[sbox[x]] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

#: xtime table: multiplication by 2 in GF(2^8), vectorized for MixColumns.
_XTIME = np.array([_gf_mul(x, 2) for x in range(256)], dtype=np.uint8)

#: Round constants for AES-128 key expansion.
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

#: ShiftRows permutation over the 16-byte state in *row-major* flat layout
#: (byte i holds row i%4... AES state is column-major: byte index = 4*col+row).
#: state[4c + r] <- state[4*((c + r) % 4) + r]
_SHIFT_ROWS = np.array([4 * ((c + r) % 4) + r for c in range(4) for r in range(4)],
                       dtype=np.intp)


def expand_key(key: bytes) -> np.ndarray:
    """AES-128 key schedule: 11 round keys as a (11, 16) uint8 array."""
    if len(key) != 16:
        raise OperatorError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]                     # RotWord
            temp = [int(SBOX[b]) for b in temp]            # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    flat = [b for w in words for b in w]
    return np.array(flat, dtype=np.uint8).reshape(11, 16)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns over (n, 16) states (column-major byte layout)."""
    s = state.reshape(-1, 4, 4)  # (n, column, row)
    a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
    x0, x1, x2, x3 = _XTIME[a0], _XTIME[a1], _XTIME[a2], _XTIME[a3]
    out = np.empty_like(s)
    out[:, :, 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
    out[:, :, 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
    out[:, :, 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
    out[:, :, 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
    return out.reshape(-1, 16)


def encrypt_blocks(blocks: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """Encrypt (n, 16) plaintext blocks with precomputed round keys."""
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise OperatorError(f"blocks must be (n, 16), got {blocks.shape}")
    state = blocks.astype(np.uint8) ^ round_keys[0]
    for rnd in range(1, 10):
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state = _mix_columns(state)
        state ^= round_keys[rnd]
    state = SBOX[state]
    state = state[:, _SHIFT_ROWS]
    state ^= round_keys[10]
    return state


def encrypt_block(block: bytes, key: bytes) -> bytes:
    """Encrypt a single 16-byte block (FIPS-197 reference path)."""
    if len(block) != 16:
        raise OperatorError(f"block must be 16 bytes, got {len(block)}")
    arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
    return encrypt_blocks(arr, expand_key(key)).tobytes()


class AesCtr:
    """AES-128 counter mode: seekable, symmetric stream cipher."""

    BLOCK = 16

    def __init__(self, key: bytes, nonce: bytes):
        if len(nonce) != 12:
            raise OperatorError(f"CTR nonce must be 12 bytes, got {len(nonce)}")
        self._round_keys = expand_key(key)
        self._nonce = nonce

    def _counter_blocks(self, first_block: int, count: int) -> np.ndarray:
        counters = np.arange(first_block, first_block + count, dtype=np.uint64)
        blocks = np.zeros((count, 16), dtype=np.uint8)
        nonce = np.frombuffer(self._nonce, dtype=np.uint8)
        blocks[:, :12] = nonce
        # 32-bit big-endian block counter in bytes 12..15 (NIST SP 800-38A).
        blocks[:, 12] = (counters >> np.uint64(24)).astype(np.uint8)
        blocks[:, 13] = (counters >> np.uint64(16)).astype(np.uint8)
        blocks[:, 14] = (counters >> np.uint64(8)).astype(np.uint8)
        blocks[:, 15] = counters.astype(np.uint8)
        return blocks

    def keystream(self, first_block: int, nbytes: int) -> np.ndarray:
        """Keystream bytes covering ``nbytes`` starting at a block boundary."""
        if nbytes < 0:
            raise OperatorError(f"negative keystream length: {nbytes}")
        nblocks = (nbytes + self.BLOCK - 1) // self.BLOCK
        if nblocks == 0:
            return np.zeros(0, dtype=np.uint8)
        stream = encrypt_blocks(self._counter_blocks(first_block, nblocks),
                                self._round_keys)
        return stream.reshape(-1)[:nbytes]

    def process(self, data: bytes, byte_offset: int = 0) -> bytes:
        """Encrypt/decrypt ``data`` located at ``byte_offset`` in the stream.

        ``byte_offset`` must be block-aligned (the streaming operators feed
        whole bursts, which are 16-byte multiples).
        """
        if byte_offset % self.BLOCK:
            raise OperatorError(
                f"byte offset {byte_offset} not a multiple of {self.BLOCK}")
        if not data:
            return b""
        ks = self.keystream(byte_offset // self.BLOCK, len(data))
        arr = np.frombuffer(data, dtype=np.uint8)
        return (arr ^ ks).tobytes()
