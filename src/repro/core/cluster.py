"""Sharded Farview pool: N memory nodes behind one scatter-gather plan.

The paper's deployment model is a *pool* of disaggregated-memory nodes
shared by many compute-side query threads (§1, §4.1); the experiments
exercise one node.  This module adds the pool:

* :class:`FarviewCluster` — owns N independent :class:`FarviewNode`\\ s on
  one simulator.  Each node keeps its own MMU, 100 Gbps link, dynamic
  regions and resource model, so shards execute with true spatial
  parallelism (no shared bottleneck below the client).
* :class:`TableShard` / :class:`ShardedTable` — one table split into
  per-node :class:`~repro.core.table.FTable` fragments under a
  :class:`~repro.core.partition.PartitionSpec`.  A ``ShardedTable``
  quacks like an ``FTable`` for catalog purposes (``name`` /
  ``size_bytes``), so the ordinary client :class:`~repro.core.catalog.
  Catalog` can register it unchanged.
* :func:`plan_scatter` — rewrites a :class:`~repro.core.query.Query` into
  the fragment each shard executes plus the client-side merge mode.
  Non-decomposable aggregates (``avg``) are rewritten into exact partials
  (sum + count) via :func:`~repro.operators.aggregate.decompose_partials`.
* the merge kernels — :func:`merge_distinct_rows`,
  :func:`merge_group_rows`, :func:`merge_aggregate_rows` — which combine
  per-shard results into the final answer.  Grouped merges bucket keys
  with the same vectorized splitmix64 pass the on-chip cuckoo tables use
  (:func:`~repro.operators.hashing.hash_key_batch`) and compare key bytes
  exactly inside each bucket, so hash collisions can never corrupt a
  merge.

Order contract
--------------
With the order-preserving ``chunk`` partitioning, every merge emits rows
in *global first-occurrence order* — exactly the order a single node
produces — so DISTINCT and (overflow-free) GROUP BY results are
byte-identical to single-node execution; the cluster tests pin this with
sha256 digests.  ``hash``/``range`` partitioning keeps results exact as
*sets* but interleaves shard order.  Floating-point ``sum``/``avg``
partials merge associatively, which matches single-node bytes for integer
columns (exact in float64) but may differ in the final ulp for float
columns.

The scatter-gather *router* that drives this module from the client side
is :class:`~repro.core.api.ClusterClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..common.config import FarviewConfig
from ..common.errors import CatalogError, QueryError
from ..common.records import Schema
from ..operators.aggregate import (AggregateSpec, PARTIAL_MERGE, PartialPlan,
                                   decompose_partials)
from ..operators.hashing import hash_key_batch
from ..operators.selection import And, Compare, Not, Or
from ..sim.engine import Simulator
from .node import FarviewNode
from .partition import PartitionSpec
from .query import Query
from .table import FTable

#: Scatter-level strategies for executing a distributed join's build
#: side.  ``ship`` (client-side software join) is the fourth strategy of
#: the costed decision but lives at the placement-planner level
#: (:func:`~repro.core.planner.plan_placement` prices it as the split
#: below the join), not at the scatter level.
JOIN_STRATEGIES = ("broadcast", "colocated", "shuffle")


class FarviewCluster:
    """A pool of independent Farview nodes sharing one simulation clock.

    Nodes are homogeneous (same :class:`FarviewConfig`) and completely
    independent below the client: separate DRAM channels, links and
    dynamic-region pools.  Scale-out therefore comes from sharding tables
    across nodes and scattering queries — the client-side router
    (:class:`~repro.core.api.ClusterClient`) does both.
    """

    def __init__(self, sim: Simulator, num_nodes: int,
                 config: FarviewConfig | None = None):
        if num_nodes <= 0:
            raise QueryError(f"cluster needs at least one node: {num_nodes}")
        self.sim = sim
        self.config = config if config is not None else FarviewConfig()
        self.nodes: list[FarviewNode] = [
            FarviewNode(sim, self.config) for _ in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> FarviewNode:
        return self.nodes[index]

    @property
    def free_regions(self) -> int:
        """Dynamic regions currently free across the whole pool."""
        return sum(node.free_regions for node in self.nodes)

    @property
    def queries_served(self) -> int:
        return sum(node.queries_served for node in self.nodes)

    def __repr__(self) -> str:
        return (f"FarviewCluster({self.num_nodes} nodes, "
                f"{self.free_regions} free regions)")


@dataclass
class ShardReplica:
    """One extra copy of a shard: a byte-identical :class:`FTable` on
    another node, stamped with that node's incarnation at write time (a
    mismatch means the node crashed since — the copy is gone)."""

    node_index: int
    table: FTable
    incarnation: int = 0


@dataclass
class TableShard:
    """One node's fragment of a sharded table.

    The global-row → shard mapping is recomputable from the table's
    :class:`~repro.core.partition.PartitionSpec` (placement is
    deterministic), so only the shard handle itself is kept here.
    ``incarnation`` records the primary node's incarnation when the shard
    was written; ``replicas`` hold the k-1 failover copies in fixed ring
    order (:func:`~repro.core.partition.replica_nodes`) — the scatter
    router tries candidates in that order, so which copy serves a request
    is deterministic.
    """

    node_index: int
    table: FTable
    incarnation: int = 0
    replicas: tuple[ShardReplica, ...] = ()

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def candidates(self) -> tuple[ShardReplica, ...]:
        """Primary-first candidate list for executing against this shard."""
        primary = ShardReplica(self.node_index, self.table, self.incarnation)
        return (primary,) + self.replicas


class ShardedTable:
    """A table split across cluster nodes under one partition spec.

    Holds per-shard :class:`FTable` handles plus the global row indices
    each shard owns (ascending, so shard-local order mirrors the original
    relative order).  Registered in the client catalog under the logical
    table name; shard tables are named ``{name}@{node}``.
    """

    def __init__(self, name: str, schema: Schema, num_rows: int,
                 partition: PartitionSpec, shards: Sequence[TableShard],
                 num_partitions: int | None = None,
                 shard_ranges: dict[int, tuple[float, float]] | None = None):
        if not shards:
            raise CatalogError(
                f"sharded table {name!r} needs at least one non-empty shard")
        self.name = name
        self.schema = schema
        self.num_rows = num_rows
        self.partition = partition
        self.shards = list(shards)
        #: The modulus of the partition function (the cluster node count
        #: at create time) — two hash-partitioned tables co-locate equal
        #: keys iff their moduli match.  Empty shards are skipped in
        #: ``shards``, so this cannot be derived from ``len(shards)``.
        self.num_partitions = (num_partitions if num_partitions is not None
                               else max(s.node_index for s in self.shards) + 1)
        #: Per-shard observed ``[min, max]`` of the partition key (range
        #: scheme only) — the plan-time shard-pruning metadata.
        self.shard_ranges = dict(shard_ranges) if shard_ranges else {}

    @property
    def size_bytes(self) -> int:
        return sum(s.table.size_bytes for s in self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (f"ShardedTable({self.name!r}, {self.num_rows} rows over "
                f"{self.num_shards} shards, {self.partition.describe()})")


# -- partition-aware join strategy feasibility --------------------------------

def hash_partitioned_on(table, key: str) -> bool:
    """Is ``table`` a sharded table hash-partitioned on exactly ``key``?"""
    part = getattr(table, "partition", None)
    return (part is not None and part.scheme == "hash" and part.key == key
            and isinstance(table, ShardedTable))


def colocated_compatible(fact, build, probe_key: str, build_key: str) -> bool:
    """Can ``fact JOIN build`` run shard-local with zero data movement?

    Requires both sides hash-partitioned on their join key with the same
    partition modulus *and* byte-compatible key columns (the splitmix64
    placement hash runs over the key's byte image, so equal values only
    co-locate when their serialized widths match).  Versioned tables are
    excluded — their visible rows are a merge over the delta chain, not
    the shard's raw byte image.
    """
    if getattr(fact, "epoch", None) is not None \
            or getattr(build, "epoch", None) is not None:
        return False
    if not (hash_partitioned_on(fact, probe_key)
            and hash_partitioned_on(build, build_key)):
        return False
    if fact.num_partitions != build.num_partitions:
        return False
    fcol = fact.schema.column(probe_key)
    bcol = build.schema.column(build_key)
    return fcol.width == bcol.width and fcol.kind == bcol.kind


def join_strategies(sharded, query: Query) -> tuple[str, ...]:
    """Feasible scatter strategies for this query's join.

    ``broadcast`` is always feasible (the PR-5 path).  When the fact
    side is hash-partitioned on the probe key, the build side can be
    repartitioned node→node on the same splitmix64 hash (``shuffle``);
    when the build side is *also* hash-partitioned on the join key with
    a compatible shard map, the join runs shard-local with zero replica
    bytes (``colocated``).
    """
    if query.join is None:
        return ()
    feasible = ["broadcast"]
    build = query.join.build_table
    if (hash_partitioned_on(sharded, query.join.probe_key)
            and getattr(sharded, "epoch", None) is None
            and isinstance(build, ShardedTable)
            and getattr(build, "epoch", None) is None):
        feasible.append("shuffle")
        if colocated_compatible(sharded, build, query.join.probe_key,
                                query.join.build_key):
            feasible.append("colocated")
    return tuple(feasible)


# -- plan-time range pruning ---------------------------------------------------

def _interval_may_match(pred, key: str, lo: float, hi: float) -> bool:
    """May any value in the closed interval ``[lo, hi]`` satisfy ``pred``?

    Conservative: anything not provably empty (``Not``, predicates on
    other columns, unknown node types) keeps the shard.
    """
    if isinstance(pred, Compare) and pred.column == key:
        try:
            v = float(pred.value)
        except (TypeError, ValueError):
            return True
        if pred.op == "<":
            return lo < v
        if pred.op == "<=":
            return lo <= v
        if pred.op == ">":
            return hi > v
        if pred.op == ">=":
            return hi >= v
        if pred.op == "==":
            return lo <= v <= hi
        if pred.op == "!=":
            return not (lo == hi == v)
        return True
    if isinstance(pred, And):
        return (_interval_may_match(pred.left, key, lo, hi)
                and _interval_may_match(pred.right, key, lo, hi))
    if isinstance(pred, Or):
        return (_interval_may_match(pred.left, key, lo, hi)
                or _interval_may_match(pred.right, key, lo, hi))
    return True


def prune_scatter_shards(sharded, query: Query) -> tuple[int, ...]:
    """Node indices of shards statically excluded by the predicate.

    Range-partitioned tables record each shard's observed ``[min, max]``
    key span at create time; a shard whose span cannot satisfy a range
    predicate on the partition key contributes no rows and is skipped at
    plan time.  At least one shard is always kept so the scatter has a
    result stream to gather (an all-pruned query returns zero rows
    through the ordinary merge).
    """
    part = getattr(sharded, "partition", None)
    spans = getattr(sharded, "shard_ranges", None)
    if (part is None or part.scheme != "range" or not spans
            or query.predicate is None):
        return ()
    pruned = []
    for shard in sharded.shards:
        span = spans.get(shard.node_index)
        if span is None:
            continue
        if not _interval_may_match(query.predicate, part.key,
                                   span[0], span[1]):
            pruned.append(shard.node_index)
    if len(pruned) == len(sharded.shards):
        pruned = pruned[1:]  # keep one stream for the gather
    return tuple(pruned)


# -- scatter planning ----------------------------------------------------------

@dataclass(frozen=True)
class ScatterPlan:
    """How one query fans out to shards and folds back together.

    ``mode`` selects the gather kernel: ``concat`` (stateless operators —
    selection, projection, regex — just concatenate), ``distinct``
    (first-wins dedup on the key columns), ``group`` (re-merge partial
    groups), ``aggregate`` (merge one partial row per shard).

    ``join_strategy`` records the resolved scatter strategy for a join
    query (one of :data:`JOIN_STRATEGIES`, or ``None`` for join-less
    queries); ``pruned_nodes`` are shards statically excluded by a range
    predicate on the partition key (:func:`prune_scatter_shards`).
    """

    shard_query: Query
    mode: str
    shard_specs: tuple[AggregateSpec, ...] = ()
    partial_plans: tuple[PartialPlan, ...] = ()
    join_strategy: Optional[str] = None
    pruned_nodes: tuple[int, ...] = ()


def plan_scatter(query: Query, sharded=None,
                 join_strategy: Optional[str] = None) -> ScatterPlan:
    """Rewrite ``query`` into its shard fragment + merge mode.

    ``broadcast`` joins scatter unchanged: the router broadcasts the
    build side to every node first
    (:meth:`~repro.core.api.ClusterClient._ensure_join_replicas_proc`)
    and swaps the node-local replica into each shard's fragment, so
    every shard probes its fact rows against the full dimension table.
    ``colocated`` / ``shuffle`` joins instead swap in the node-local
    build *partition* (a pre-placed shard, or a repartitioned fragment),
    so each shard probes only the keys that can match its rows.  The
    merge mode is decided by the operators *after* the join —
    probe-order concatenation under chunk partitioning is exactly the
    single-node probe order, which keeps joined results byte-identical.

    ``sharded`` (optional — the fact-side :class:`ShardedTable`) enables
    plan-time range pruning; ``join_strategy`` is recorded verbatim (the
    router resolves it via
    :meth:`~repro.core.api.ClusterClient._resolve_join_strategy`).
    """
    pruned = (prune_scatter_shards(sharded, query)
              if sharded is not None else ())
    if query.group_by:
        shard_specs, plans = decompose_partials(query.aggregates)
        shard_query = replace(query, aggregates=tuple(shard_specs))
        return ScatterPlan(shard_query, "group", tuple(shard_specs),
                           tuple(plans), join_strategy, pruned)
    if query.aggregates:
        shard_specs, plans = decompose_partials(query.aggregates)
        shard_query = replace(query, aggregates=tuple(shard_specs))
        return ScatterPlan(shard_query, "aggregate", tuple(shard_specs),
                           tuple(plans), join_strategy, pruned)
    if query.distinct:
        return ScatterPlan(query, "distinct",
                           join_strategy=join_strategy, pruned_nodes=pruned)
    return ScatterPlan(query, "concat",
                       join_strategy=join_strategy, pruned_nodes=pruned)


# -- merge kernels -------------------------------------------------------------

def iter_key_groups(raw: bytes, width: int) -> list[tuple[bytes, list[int]]]:
    """Group fixed-width keys by value, in first-occurrence order.

    One vectorized :func:`hash_key_batch` pass buckets the keys; byte
    comparison inside each bucket keeps the grouping exact under hash
    collisions.  Returns ``(key_bytes, row_indices)`` pairs ordered by the
    first occurrence of each key — the order both the DISTINCT and GROUP
    BY operators emit, which the byte-identity contract depends on.
    """
    n = len(raw) // width
    groups: list[tuple[bytes, list[int]]] = []
    if n == 0:
        return groups
    hashes = hash_key_batch(raw, width).tolist()
    buckets: dict[int, list[int]] = {}  # hash -> positions into groups
    for i in range(n):
        key = raw[i * width:(i + 1) * width]
        positions = buckets.setdefault(hashes[i], [])
        for pos in positions:
            if groups[pos][0] == key:
                groups[pos][1].append(i)
                break
        else:
            positions.append(len(groups))
            groups.append((key, [i]))
    return groups


def _key_image(rows: np.ndarray, schema: Schema,
               key_columns: Sequence[str]) -> tuple[bytes, int]:
    """Serialized key columns of ``rows`` (one fixed-width key per row)."""
    key_schema = schema.project(key_columns)
    keys = key_schema.empty(len(rows))
    for name in key_columns:
        keys[name] = rows[name]
    return key_schema.to_bytes(keys), key_schema.row_width


def merge_distinct_rows(rows: np.ndarray, schema: Schema,
                        key_columns: Optional[Sequence[str]]) -> np.ndarray:
    """First-wins dedup of concatenated shard DISTINCT results."""
    if len(rows) == 0:
        return rows
    names = list(key_columns) if key_columns else list(schema.names)
    raw, width = _key_image(rows, schema, names)
    keep = [indices[0] for _, indices in iter_key_groups(raw, width)]
    return rows[np.asarray(keep, dtype=np.int64)]


def _merge_partial_columns(rows: np.ndarray, indices: list[int],
                           shard_specs: Sequence[AggregateSpec]) -> dict:
    """Fold one key's partial rows into exact merged partials per alias."""
    merged: dict[str, object] = {}
    for spec in shard_specs:
        fold = PARTIAL_MERGE[spec.func]
        value = rows[spec.alias][indices[0]].item()
        for i in indices[1:]:
            value = fold(value, rows[spec.alias][i].item())
        merged[spec.alias] = value
    return merged


def merge_group_rows(rows: np.ndarray, shard_schema: Schema,
                     table_schema: Schema, key_columns: Sequence[str],
                     shard_specs: Sequence[AggregateSpec],
                     partial_plans: Sequence[PartialPlan]) -> np.ndarray:
    """Re-merge concatenated per-shard partial groups into final groups.

    ``rows`` carry ``shard_schema`` (keys + partial columns); the result
    carries the single-node output schema (keys + original aggregate
    columns), with groups in first-occurrence order.
    """
    out_schema = group_output_schema(table_schema, key_columns,
                                     [p.spec for p in partial_plans])
    raw, width = _key_image(rows, shard_schema, key_columns)
    groups = iter_key_groups(raw, width)
    out = out_schema.empty(len(groups))
    key_schema = shard_schema.project(key_columns)
    for g, (key_bytes, indices) in enumerate(groups):
        key_row = key_schema.from_bytes(key_bytes)
        for name in key_columns:
            out[name][g] = key_row[name][0]
        merged = _merge_partial_columns(rows, indices, shard_specs)
        for plan in partial_plans:
            out[plan.spec.alias][g] = plan.finalize(merged)
    return out


def merge_aggregate_rows(rows: np.ndarray, table_schema: Schema,
                         shard_specs: Sequence[AggregateSpec],
                         partial_plans: Sequence[PartialPlan]) -> np.ndarray:
    """Merge the one-partial-row-per-shard results of a standalone
    aggregation into the single final row."""
    out_schema = aggregate_output_schema(table_schema,
                                         [p.spec for p in partial_plans])
    if len(rows) == 0:
        return out_schema.empty(0)
    merged = _merge_partial_columns(rows, list(range(len(rows))), shard_specs)
    out = out_schema.empty(1)
    for plan in partial_plans:
        out[plan.spec.alias][0] = plan.finalize(merged)
    return out


def group_output_schema(table_schema: Schema, key_columns: Sequence[str],
                        specs: Sequence[AggregateSpec]) -> Schema:
    """The single-node GROUP BY output schema (keys + aggregate columns),
    mirroring :meth:`GroupByOperator._bind`."""
    return Schema([table_schema.column(k) for k in key_columns]
                  + [s.output_column(table_schema) for s in specs])


def aggregate_output_schema(table_schema: Schema,
                            specs: Sequence[AggregateSpec]) -> Schema:
    """The single-node standalone-aggregation output schema."""
    return Schema([s.output_column(table_schema) for s in specs])
