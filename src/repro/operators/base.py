"""Operator framework: streaming operators and pipelines (paper §5.1).

"Operator pipelines are constructed from individual blocks that implement a
given operator and provide standard interfaces to combine them into
pipelines."  We mirror that structure:

* a :class:`RowOperator` consumes and produces batches of tuples
  (numpy structured arrays) in a streaming fashion,
* a :class:`ByteOperator` transforms the raw byte stream (encryption /
  decryption, which run before parsing or after packing),
* an :class:`OperatorPipeline` chains them: raw bytes from the memory
  stack -> byte stage(s) -> parser -> row operators -> packer -> byte
  stage(s) -> bytes for the network stack.

Operators report their pipeline-fill contribution in operator-clock cycles
and an optional *flush* phase (used by group-by, which must consume the
whole table before emitting results, §5.4).  Data transformation is real:
the output bytes are exactly what the paper's hardware would emit.
"""

from __future__ import annotations

import abc

import numpy as np

from ..common.errors import OperatorError, PipelineCompilationError
from ..common.records import Schema


class RowOperator(abc.ABC):
    """A streaming operator over tuple batches."""

    #: Pipeline registers this block adds (contributes to fill latency).
    fill_latency_cycles: int = 4

    def __init__(self, name: str):
        self.name = name
        self.rows_in = 0
        self.rows_out = 0
        self._bound = False

    # -- lifecycle -------------------------------------------------------------
    def bind(self, schema: Schema) -> Schema:
        """Validate against the input schema; return the output schema."""
        out = self._bind(schema)
        self._bound = True
        return out

    @abc.abstractmethod
    def _bind(self, schema: Schema) -> Schema:
        ...

    def process(self, batch: np.ndarray) -> np.ndarray:
        """Transform one batch (may return fewer/more rows, or none)."""
        if not self._bound:
            raise OperatorError(f"operator {self.name!r} used before bind()")
        self.rows_in += len(batch)
        out = self._process(batch)
        self.rows_out += len(out)
        return out

    @abc.abstractmethod
    def _process(self, batch: np.ndarray) -> np.ndarray:
        ...

    def flush(self) -> np.ndarray | None:
        """End-of-stream output (None for fully streaming operators)."""
        return None

    def flush_cycles(self) -> int:
        """Operator-clock cycles consumed by the flush phase."""
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ByteOperator(abc.ABC):
    """A streaming transformation over the raw byte stream.

    Chunks may be ``bytes`` or read-only ``memoryview`` bursts straight off
    the memory stack; implementations must not assume they own the buffer.
    """

    fill_latency_cycles: int = 4

    def __init__(self, name: str):
        self.name = name
        self.bytes_in = 0

    def process(self, chunk: bytes | memoryview) -> bytes:
        self.bytes_in += len(chunk)
        return self._process(chunk)

    @abc.abstractmethod
    def _process(self, chunk: bytes | memoryview) -> bytes:
        ...

    def finish(self) -> bytes:
        """Drain any internal remainder at end of stream."""
        return b""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class _RowParser:
    """Splits the incoming byte stream into whole tuples of a schema.

    Bursts from the memory stack do not respect row boundaries; the parser
    buffers the residual bytes of a split row until the next burst.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._residue = b""

    def feed(self, chunk: bytes | memoryview) -> np.ndarray:
        """Parse one burst into whole rows — zero-copy on the aligned path.

        Bursts from the memory stack are row-aligned in the common case
        (burst size is a multiple of the row width), so the chunk is viewed
        in place; only a split row's tail is ever copied into the residue.
        """
        width = self.schema.row_width
        if self._residue:
            chunk = self._residue + bytes(chunk)
            self._residue = b""
        extra = len(chunk) % width
        if extra:
            split = len(chunk) - extra
            # Compact copy of the tail so the burst buffer is not pinned.
            self._residue = bytes(chunk[split:])
            chunk = chunk[:split]
        if not len(chunk):
            return self.schema.empty(0)
        return self.schema.from_bytes(chunk)

    def finish(self) -> None:
        if self._residue:
            raise OperatorError(
                f"stream ended mid-tuple: {len(self._residue)} residual bytes "
                f"(row width {self.schema.row_width})")


class OperatorPipeline:
    """A complete pipeline as deployed into one dynamic region (§5.1).

    ``pre_ops`` run on raw bytes before parsing (e.g. decryption of data at
    rest); ``row_ops`` run on tuples; the packer serializes surviving
    tuples; ``post_ops`` run on packed output bytes (e.g. encryption for
    transmission).
    """

    def __init__(self, name: str, input_schema: Schema,
                 row_ops: list[RowOperator],
                 pre_ops: list[ByteOperator] | None = None,
                 post_ops: list[ByteOperator] | None = None):
        self.name = name
        self.input_schema = input_schema
        self.pre_ops = list(pre_ops or [])
        self.row_ops = list(row_ops)
        self.post_ops = list(post_ops or [])
        self._parser = _RowParser(input_schema)
        schema = input_schema
        try:
            for op in self.row_ops:
                schema = op.bind(schema)
        except OperatorError as exc:
            raise PipelineCompilationError(
                f"pipeline {name!r}: {exc}") from exc
        self.output_schema = schema
        self.bytes_in = 0
        self.bytes_out = 0
        self._flushed = False

    # -- streaming -------------------------------------------------------------
    def process_chunk(self, chunk: bytes | memoryview) -> bytes:
        """Push one burst of base-table bytes; returns output-ready bytes."""
        if self._flushed:
            raise OperatorError(f"pipeline {self.name!r} already flushed")
        self.bytes_in += len(chunk)
        for op in self.pre_ops:
            chunk = op.process(chunk)
        batch = self._parser.feed(chunk)
        out = self._run_rows(batch)
        return self._emit(out)

    def flush(self) -> bytes:
        """End of stream: drain flush phases (group-by results, CTR tails)."""
        if self._flushed:
            raise OperatorError(f"pipeline {self.name!r} already flushed")
        self._flushed = True
        for op in self.pre_ops:
            tail = op.finish()
            if tail:
                raise OperatorError(
                    f"pre-stage {op.name!r} held back {len(tail)} bytes")
        self._parser.finish()
        # Cascade flushes: operator i's flush output passes through i+1..n.
        collected = self.output_schema.empty(0)
        for i, op in enumerate(self.row_ops):
            tail = op.flush()
            if tail is None or len(tail) == 0:
                continue
            for downstream in self.row_ops[i + 1:]:
                tail = downstream.process(tail)
                if len(tail) == 0:
                    break
            if len(tail):
                collected = np.concatenate([collected, tail])
        out = self._emit_rows(collected)
        for op in self.post_ops:
            out += op.finish()
        self.bytes_out += len(out)
        return out

    def _run_rows(self, batch: np.ndarray) -> np.ndarray:
        for op in self.row_ops:
            if len(batch) == 0:
                return self.output_schema.empty(0)
            batch = op.process(batch)
        return batch

    def _emit(self, rows: np.ndarray) -> bytes:
        out = self._emit_rows(rows)
        self.bytes_out += len(out)
        return out

    def _emit_rows(self, rows: np.ndarray) -> bytes:
        data = self.output_schema.to_bytes(rows) if len(rows) else b""
        for op in self.post_ops:
            data = op.process(data)
        return data

    # -- timing hooks -------------------------------------------------------------
    @property
    def fill_latency_cycles(self) -> int:
        return (sum(op.fill_latency_cycles for op in self.pre_ops)
                + sum(op.fill_latency_cycles for op in self.row_ops)
                + sum(op.fill_latency_cycles for op in self.post_ops))

    def flush_cycles(self) -> int:
        return sum(op.flush_cycles() for op in self.row_ops)

    @property
    def operator_names(self) -> list[str]:
        return ([op.name for op in self.pre_ops]
                + [op.name for op in self.row_ops]
                + [op.name for op in self.post_ops])

    def __repr__(self) -> str:
        return f"OperatorPipeline({self.name!r}, ops={self.operator_names})"
