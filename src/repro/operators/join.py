"""Small-table join operator — the paper's §7 extension sketch.

"We also want to explore, as part of a query optimizer, options such as
performing joins against small tables in the memory by reading the small
table into the FPGA and matching the tuples read from memory against it."

The *build* side (a small dimension table) is read from disaggregated
memory into the region's on-chip hash tables at query start; the *probe*
side (the large fact table) then streams through and each tuple is matched
against the build hash.  The build side must fit in BRAM — the operator
enforces the cuckoo capacity and reports build-overflow keys so the
compiler can refuse plans that would not fit the fabric.

Semantics: inner equi-join, emitting the probe tuple extended with the
selected build payload columns.  Build keys are unique (dimension-table
primary keys); a duplicate build key is a compile-time error.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import JoinBuildOverflowError, OperatorError
from ..common.records import Column, Schema
from .base import RowOperator
from .cuckoo import CuckooHashTable


def join_output_schema(probe_schema: Schema, build_schema: Schema,
                       payload_columns: list[str]) -> Schema:
    """The post-join schema: probe columns + appended payload columns.

    Payload names colliding with a probe column are prefixed ``build_``
    (the same rule :meth:`SmallTableJoinOperator._bind` applies), so the
    software kernel, the cost model and the merge layer all agree on the
    joined layout byte for byte.
    """
    out_columns = list(probe_schema.columns)
    existing = set(probe_schema.names)
    for name in payload_columns:
        col = build_schema.column(name)
        out_name = name if name not in existing else f"build_{name}"
        if out_name in existing:
            raise OperatorError(
                f"cannot disambiguate joined column {name!r}")
        out_columns.append(Column(out_name, col.kind, col.width))
        existing.add(out_name)
    return Schema(out_columns)


class SmallTableJoinOperator(RowOperator):
    """Inner hash join: streaming probe side vs BRAM-resident build side."""

    fill_latency_cycles = 12

    def __init__(self, build_schema: Schema, build_key: str, probe_key: str,
                 payload_columns: list[str],
                 ways: int = 4, slots_per_way: int = 16_384,
                 max_kicks: int = 32):
        super().__init__("join_small_table")
        if not payload_columns:
            raise OperatorError("join needs at least one payload column")
        if build_key in payload_columns:
            raise OperatorError(
                f"build key {build_key!r} need not be in the payload; it "
                f"equals the probe key after the join")
        self.build_schema = build_schema
        self.build_key = build_key
        self.probe_key = probe_key
        self.payload_columns = list(payload_columns)
        for name in [build_key, *payload_columns]:
            build_schema.column(name)
        self.table = CuckooHashTable(ways, slots_per_way, max_kicks)
        self._key_schema = build_schema.project([build_key])
        self._payload_schema = build_schema.project(payload_columns)
        self._built = False
        self.build_rows_loaded = 0
        self.probe_matches = 0
        self._out_schema: Schema | None = None
        self._probe_schema: Schema | None = None

    # -- build phase -------------------------------------------------------------
    def load_build(self, rows: np.ndarray) -> None:
        """Load the small table into the on-chip hash (one-off, at deploy)."""
        if self._built:
            raise OperatorError("build side already loaded")
        keys = self._key_schema.empty(len(rows))
        keys[self.build_key] = rows[self.build_key]
        raw = self._key_schema.to_bytes(keys)
        width = self._key_schema.row_width
        payload = self._payload_schema.empty(len(rows))
        for name in self.payload_columns:
            payload[name] = rows[name]
        for i in range(len(rows)):
            key = raw[i * width:(i + 1) * width]
            if key in self.table:
                raise OperatorError(
                    f"duplicate build key at row {i}: the small table must "
                    f"have unique join keys")
            ok = self.table.put(key, payload[i:i + 1].copy())
            if not ok:
                raise JoinBuildOverflowError(
                    f"build side of {len(rows)} rows does not fit the "
                    f"on-chip hash ({self.table.capacity} slots); offload "
                    f"refused — execute the join on the client")
        self.build_rows_loaded = len(rows)
        self._built = True

    # -- binding (probe side) ---------------------------------------------------------
    def _bind(self, schema: Schema) -> Schema:
        probe_col = schema.column(self.probe_key)
        build_col = self.build_schema.column(self.build_key)
        if probe_col.kind != build_col.kind or probe_col.width != build_col.width:
            raise OperatorError(
                f"join key type mismatch: probe {self.probe_key!r} is "
                f"{probe_col.kind}({probe_col.width}), build "
                f"{self.build_key!r} is {build_col.kind}({build_col.width})")
        self._probe_schema = schema
        self._out_schema = join_output_schema(schema, self.build_schema,
                                              self.payload_columns)
        return self._out_schema

    @property
    def output_names_for_payload(self) -> list[str]:
        assert self._out_schema is not None and self._probe_schema is not None
        return list(self._out_schema.names[len(self._probe_schema.names):])

    # -- probe phase ----------------------------------------------------------------------
    def _process(self, batch: np.ndarray) -> np.ndarray:
        if not self._built:
            raise OperatorError("probe started before the build side loaded")
        assert self._out_schema is not None and self._probe_schema is not None
        keys = self._key_schema.empty(len(batch))
        keys[self.build_key] = batch[self.probe_key]
        raw = self._key_schema.to_bytes(keys)
        width = self._key_schema.row_width
        matches: list[tuple[int, np.ndarray]] = []
        for i in range(len(batch)):
            payload = self.table.get(raw[i * width:(i + 1) * width])
            if payload is not None:
                matches.append((i, payload))
        out = self._out_schema.empty(len(matches))
        payload_names = self.output_names_for_payload
        for j, (i, payload) in enumerate(matches):
            for name in self._probe_schema.names:
                out[name][j] = batch[name][i]
            for out_name, src_name in zip(payload_names, self.payload_columns):
                out[out_name][j] = payload[src_name][0]
        self.probe_matches += len(matches)
        return out
