"""Unit-conversion helpers."""

import pytest

from repro.common import units


def test_time_constants_relative_magnitudes():
    assert units.US == 1_000 * units.NS
    assert units.MS == 1_000 * units.US
    assert units.S == 1_000 * units.MS


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 ** 2
    assert units.GB == 1024 ** 3


def test_one_gbps_is_one_byte_per_ns():
    assert units.GBPS == 1.0


def test_gbit_conversion_100g():
    # 100 Gbit/s == 12.5 GB/s == 12.5 bytes/ns
    assert units.gbit(100.0) == pytest.approx(12.5)


def test_to_us_and_ms():
    assert units.to_us(2_500.0) == pytest.approx(2.5)
    assert units.to_ms(3_000_000.0) == pytest.approx(3.0)


def test_to_gbps():
    # 1 MiB in 100 us -> ~10.49 GB/s
    assert units.to_gbps(units.MB, 100 * units.US) == pytest.approx(10.48576)


def test_to_gbps_rejects_nonpositive_time():
    with pytest.raises(ValueError):
        units.to_gbps(100, 0.0)


def test_mhz_cycle_ns():
    assert units.mhz_cycle_ns(250.0) == pytest.approx(4.0)
    assert units.mhz_cycle_ns(300.0) == pytest.approx(10.0 / 3.0)


def test_mhz_cycle_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.mhz_cycle_ns(0.0)
