"""Functional software operators used by the CPU baselines.

These mirror what the paper's C++ baseline code does: tight scans with all
compiler optimizations (numpy vector kernels here), hashing through a fast
resizable map (:class:`SoftwareHashMap`), RE2-style regex matching (our
linear-time engine), and Cryptopp-style AES (our AES-CTR).  They return
both the result and the instrumentation the cost model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.records import Schema
from ..operators.aggregate import Accumulator, AggregateSpec, batch_accumulate
from ..operators.crypto import AesCtr
from ..operators.regex_engine import CompiledRegex
from ..operators.selection import Predicate
from .hashmap import SoftwareHashMap


def software_select(rows: np.ndarray, predicate: Predicate) -> np.ndarray:
    """Scan + filter, as the LCPU query thread would."""
    if len(rows) == 0:
        return rows
    return rows[predicate.evaluate(rows)]


def software_project(rows: np.ndarray, schema: Schema,
                     columns: list[str]) -> np.ndarray:
    out_schema = schema.project(columns)
    out = out_schema.empty(len(rows))
    for name in columns:
        out[name] = rows[name]
    return out


@dataclass
class DistinctOutput:
    rows: np.ndarray
    map_resizes: int
    rehashed_entries: int


def software_distinct(rows: np.ndarray, schema: Schema,
                      key_columns: list[str]) -> DistinctOutput:
    """Hash-based DISTINCT through the resizable software map."""
    key_schema = schema.project(key_columns)
    keys = key_schema.empty(len(rows))
    for name in key_columns:
        keys[name] = rows[name]
    raw = key_schema.to_bytes(keys)
    width = key_schema.row_width
    table = SoftwareHashMap()
    keep = np.zeros(len(rows), dtype=bool)
    for i in range(len(rows)):
        key = raw[i * width:(i + 1) * width]
        if table.put(key, True):
            keep[i] = True
    return DistinctOutput(rows=rows[keep], map_resizes=table.resizes,
                          rehashed_entries=table.rehashed_entries)


@dataclass
class GroupByOutput:
    rows: np.ndarray
    num_groups: int
    map_resizes: int


def software_groupby(rows: np.ndarray, schema: Schema,
                     key_columns: list[str],
                     aggregates: list[AggregateSpec]) -> GroupByOutput:
    """Hash aggregation through the resizable software map."""
    key_schema = schema.project(key_columns)
    keys = key_schema.empty(len(rows))
    for name in key_columns:
        keys[name] = rows[name]
    raw = key_schema.to_bytes(keys)
    width = key_schema.row_width
    value_columns = sorted({s.column for s in aggregates
                            if not (s.func == "count" and s.column == "*")})
    columns = [rows[name] for name in value_columns]
    table = SoftwareHashMap()
    order: list[bytes] = []
    for i in range(len(rows)):
        key = raw[i * width:(i + 1) * width]
        acc = table.get(key)
        if acc is None:
            acc = Accumulator(len(value_columns))
            table.put(key, acc)
            order.append(key)
        acc.update(tuple(float(col[i]) for col in columns))
    out_columns = ([schema.column(k) for k in key_columns]
                   + [s.output_column(schema) for s in aggregates])
    out_schema = Schema(out_columns)
    out = out_schema.empty(len(order))
    for i, key in enumerate(order):
        acc = table.get(key)
        key_row = key_schema.from_bytes(key)
        for name in key_columns:
            out[name][i] = key_row[name][0]
        for spec in aggregates:
            idx = (value_columns.index(spec.column)
                   if spec.column in value_columns else 0)
            out[spec.alias][i] = acc.result(spec, idx)
    return GroupByOutput(rows=out, num_groups=len(order),
                         map_resizes=table.resizes)


def software_aggregate(rows: np.ndarray, schema: Schema,
                       aggregates: list[AggregateSpec]) -> np.ndarray:
    """Whole-table aggregation without grouping: one output row.

    Byte-compatible with the offloaded
    :class:`~repro.operators.aggregate.StandaloneAggregateOperator`
    (same output schema, same accumulator arithmetic), so the hybrid
    planner can run the final aggregation on the client.
    """
    value_columns = sorted({s.column for s in aggregates
                            if not (s.func == "count" and s.column == "*")})
    acc = Accumulator(len(value_columns))
    # Same accumulation kernel as the offloaded operator (min/max stay in
    # the column dtype, no per-value float round-trip), so large-integer
    # extremes survive bit-exactly.
    batch_accumulate(acc, rows, value_columns)
    out_schema = Schema([s.output_column(schema) for s in aggregates])
    if acc.count == 0:
        return out_schema.empty(0)
    out = out_schema.empty(1)
    for spec in aggregates:
        idx = (value_columns.index(spec.column)
               if spec.column in value_columns else 0)
        out[spec.alias][0] = acc.result(spec, idx)
    return out


def software_regex(rows: np.ndarray, column: str,
                   pattern: str) -> np.ndarray:
    """RE2-equivalent filter over a char column."""
    regex = CompiledRegex(pattern)
    keep = np.zeros(len(rows), dtype=bool)
    values = rows[column]
    for i in range(len(rows)):
        keep[i] = regex.search(bytes(values[i]))
    return rows[keep]


def software_decrypt(image: bytes, key: bytes, nonce: bytes) -> bytes:
    """Cryptopp-equivalent AES-128-CTR decryption of a table image."""
    return AesCtr(key, nonce).process(image)
