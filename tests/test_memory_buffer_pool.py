"""Buffer pool: residency, replacement policies, read-through semantics."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import CatalogError, MemoryError_
from repro.memory.buffer_pool import (
    BufferPool,
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    StorageBackend,
)
from repro.memory.mmu import Mmu
from repro.sim.engine import Simulator

KB = 1024
MB = 1024 * 1024
PAGE = 64 * KB


@pytest.fixture
def setup(sim):
    config = MemoryConfig(channels=2, channel_capacity=2 * MB, page_size=PAGE)
    mmu = Mmu(sim, config)
    mmu.create_domain(0)
    storage = StorageBackend(sim)
    return sim, mmu, storage


def make_pool(setup, capacity_pages=4, policy=None):
    sim, mmu, storage = setup
    pool = BufferPool(sim, mmu, storage, domain=0,
                      capacity_pages=capacity_pages, policy=policy)
    return sim, storage, pool


def table_image(npages, fill=None):
    out = bytearray()
    for i in range(npages):
        byte = (fill if fill is not None else i + 1) % 256
        out += bytes([byte]) * PAGE
    return bytes(out)


def test_read_through_returns_storage_bytes(setup):
    sim, storage, pool = make_pool(setup)
    storage.store_table("t", table_image(2))

    def proc():
        data = yield pool.read("t", 10, 100)
        return data

    assert sim.run_process(proc()) == b"\x01" * 100
    assert pool.misses == 1
    assert pool.resident_pages == 1


def test_second_read_hits_cache(setup):
    sim, storage, pool = make_pool(setup)
    storage.store_table("t", table_image(1))

    def proc():
        yield pool.read("t", 0, 64)
        t0 = sim.now
        yield pool.read("t", 64, 64)
        return sim.now - t0

    hit_time = sim.run_process(proc())
    assert pool.hits == 1
    assert pool.misses == 1
    # A cache hit is served from DRAM: far faster than the 80 us storage trip.
    assert hit_time < 10_000.0


def test_read_crossing_pages(setup):
    sim, storage, pool = make_pool(setup)
    storage.store_table("t", table_image(3))

    def proc():
        data = yield pool.read("t", PAGE - 8, 16)
        return data

    assert sim.run_process(proc()) == b"\x01" * 8 + b"\x02" * 8
    assert pool.resident_pages == 2


def test_lru_evicts_least_recent(setup):
    sim, storage, pool = make_pool(setup, capacity_pages=2, policy=LruPolicy())
    storage.store_table("t", table_image(3))

    def proc():
        yield pool.read("t", 0 * PAGE, 8)        # page 0
        yield pool.read("t", 1 * PAGE, 8)        # page 1
        yield pool.read("t", 0 * PAGE + 16, 8)   # touch page 0
        yield pool.read("t", 2 * PAGE, 8)        # page 2 -> evict page 1

    sim.run_process(proc())
    assert pool.is_resident("t", 0)
    assert not pool.is_resident("t", 1)
    assert pool.is_resident("t", 2)
    assert pool.evictions == 1


def test_fifo_ignores_recency(setup):
    sim, storage, pool = make_pool(setup, capacity_pages=2, policy=FifoPolicy())
    storage.store_table("t", table_image(3))

    def proc():
        yield pool.read("t", 0 * PAGE, 8)
        yield pool.read("t", 1 * PAGE, 8)
        yield pool.read("t", 0 * PAGE + 16, 8)   # hit, but FIFO doesn't care
        yield pool.read("t", 2 * PAGE, 8)        # evicts page 0 (oldest)

    sim.run_process(proc())
    assert not pool.is_resident("t", 0)
    assert pool.is_resident("t", 1)


def test_clock_gives_second_chance(setup):
    sim, storage, pool = make_pool(setup, capacity_pages=2, policy=ClockPolicy())
    storage.store_table("t", table_image(3))

    def proc():
        yield pool.read("t", 0 * PAGE, 8)
        yield pool.read("t", 1 * PAGE, 8)
        yield pool.read("t", 0 * PAGE + 16, 8)   # sets ref bit on page 0
        yield pool.read("t", 2 * PAGE, 8)

    sim.run_process(proc())
    # Page 0 was referenced -> second chance; page 1 is the victim.
    assert pool.is_resident("t", 0)
    assert not pool.is_resident("t", 1)


def test_eviction_frees_mmu_pages(setup):
    sim, mmu, storage = setup
    pool = BufferPool(sim, mmu, storage, domain=0, capacity_pages=1)
    storage.store_table("t", table_image(3))

    def proc():
        for i in range(3):
            yield pool.read("t", i * PAGE, 8)

    sim.run_process(proc())
    assert pool.resident_pages == 1
    assert mmu.domain_pages(0) == 1  # evicted pages were freed


def test_out_of_range_read_fails(setup):
    sim, storage, pool = make_pool(setup)
    storage.store_table("t", table_image(1))

    def proc():
        try:
            yield pool.read("t", PAGE - 4, 16)
        except MemoryError_ as exc:
            return str(exc)

    assert "beyond table" in sim.run_process(proc())


def test_unknown_table_raises(setup):
    sim, storage, pool = make_pool(setup)
    with pytest.raises(CatalogError):
        storage.table_size("missing")


def test_duplicate_table_rejected(setup):
    _, storage, _pool = make_pool(setup)
    storage.store_table("t", b"x")
    with pytest.raises(CatalogError):
        storage.store_table("t", b"y")


def test_hit_rate(setup):
    sim, storage, pool = make_pool(setup)
    storage.store_table("t", table_image(1))

    def proc():
        for _ in range(4):
            yield pool.read("t", 0, 32)

    sim.run_process(proc())
    assert pool.hit_rate == pytest.approx(0.75)


def test_pool_requires_positive_capacity(setup):
    sim, mmu, storage = setup
    with pytest.raises(MemoryError_):
        BufferPool(sim, mmu, storage, domain=0, capacity_pages=0)
