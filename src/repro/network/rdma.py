"""RDMA verb transport: request delivery and packetized response streams.

Implements the data movement shared by all one-sided verbs (paper §4.2-4.3):

* :func:`deliver_request` — a small control packet travels client->server
  (wire + propagation + NIC processing).
* :class:`ResponseStreamer` — the server streams a response payload to the
  client's buffer as a sequence of packets through the fair-share downlink
  arbiter, consuming a flow-control credit per packet in flight and
  releasing it when the packet lands (credit-based flow control, §4.3).
  Packets may land out of order; each carries its own buffer offset, as
  one-sided RDMA writes do, so reassembly is positional.
* :func:`deliver_write` — packetized client->server payload for RDMA WRITE.

The streamer is deliberately *incremental*: producers feed it chunk by
chunk, so memory reads, operator processing, and network sends overlap the
way the paper's deeply pipelined design intends (§4.1).
"""

from __future__ import annotations

from ..common.config import NetworkConfig
from ..common.errors import NetworkError
from ..sim.engine import Event, Simulator
from .link import Link
from .packet import CONTROL_PACKET_BYTES, split_lengths
from .qp import QueuePair


def deliver_request(sim: Simulator, link: Link, qp: QueuePair,
                    request_bytes: int = CONTROL_PACKET_BYTES):
    """Process: one control packet client->server.  Yields until delivered."""
    qp.requests_sent += 1
    yield link.send_up(request_bytes)


def deliver_write(sim: Simulator, link: Link, qp: QueuePair, payload: bytes,
                  per_packet_overhead_ns: float = 0.0):
    """Process: packetized client->server payload (RDMA WRITE data).

    Returns the payload so callers can hand it to the memory stack.
    """
    lengths = split_lengths(len(payload), link.config.packet_size)
    if not lengths:
        yield link.send_up(CONTROL_PACKET_BYTES)
        return payload
    events = [link.send_up(n, per_packet_overhead_ns) for n in lengths]
    # Completion when the last packet arrives (uplink preserves order).
    yield events[-1]
    return payload


class ResponseStreamer:
    """Streams a response to one client as credit-controlled packets.

    Usage (inside server processes)::

        streamer = ResponseStreamer(sim, link, qp, config)
        yield from streamer.send(chunk_bytes)     # repeatedly, any chunk sizes
        ...
        yield from streamer.finish()              # flush + wait for delivery

    Chunks are coalesced into wire packets of ``config.packet_size``; the
    final partial packet is flushed by :meth:`finish`.  The client-buffer
    offset advances monotonically — exactly how Farview's sender issues
    one-sided writes into the client's posted buffer (§5.5 "Sending").
    """

    def __init__(self, sim: Simulator, link: Link, qp: QueuePair,
                 config: NetworkConfig,
                 per_packet_overhead_ns: float | None = None):
        self.sim = sim
        self.link = link
        self.qp = qp
        self.config = config
        self.per_packet_overhead_ns = (
            config.per_packet_overhead_ns if per_packet_overhead_ns is None
            else per_packet_overhead_ns)
        self._pending = bytearray()
        self._buffer_offset = 0
        self._inflight: list[Event] = []
        self._finished = False
        self.packets_sent = 0
        self.payload_bytes_sent = 0

    # -- producer interface ----------------------------------------------------
    def send(self, chunk: bytes | memoryview):
        """Process: enqueue ``chunk``; emits any full packets (may block on
        flow-control credits).

        Zero-copy: whole packets are sliced straight out of ``chunk``
        (callers hand over stable buffers); only the partial-packet tail is
        ever copied into the coalescing buffer.
        """
        if self._finished:
            raise NetworkError("stream already finished")
        size = self.config.packet_size
        if type(chunk) is bytes:
            chunk = memoryview(chunk)  # free; makes packet slices zero-copy
        if self._pending:
            need = size - len(self._pending)
            if len(chunk) < need:
                self._pending.extend(chunk)
                return
            self._pending.extend(chunk[:need])
            packet = bytes(self._pending)
            self._pending.clear()
            chunk = chunk[need:]
            yield from self._emit(packet)
        cursor = 0
        end = len(chunk)
        while end - cursor >= size:
            yield from self._emit(chunk[cursor:cursor + size])
            cursor += size
        if cursor < end:
            self._pending.extend(chunk[cursor:] if cursor else chunk)

    def finish(self):
        """Process: flush the final partial packet and wait for delivery.

        Returns the total payload bytes streamed.
        """
        if self._finished:
            raise NetworkError("stream already finished")
        if self._pending:
            packet = bytes(self._pending)
            self._pending.clear()
            yield from self._emit(packet)
        self._finished = True
        if self._inflight:
            yield self.sim.all_of(self._inflight)
            self._inflight.clear()
        return self.payload_bytes_sent

    # -- internals ---------------------------------------------------------------
    def _emit(self, payload: bytes | memoryview):
        yield self.qp.credits.acquire()
        offset = self._buffer_offset
        self._buffer_offset += len(payload)
        delivered = self.link.send_down(self.qp.qp_id, len(payload),
                                        self.per_packet_overhead_ns)
        delivered.add_callback(
            lambda _ev, off=offset, data=payload: self._on_delivered(off, data))
        self._inflight.append(delivered)
        self.packets_sent += 1
        self.payload_bytes_sent += len(payload)

    def _on_delivered(self, offset: int, payload: bytes | memoryview) -> None:
        self.qp.buffer.deposit(offset, payload)
        self.qp.credits.release()
        self.qp.responses_received += 1
