"""Query-processing elasticity: admission control and region leasing.

The paper defers "query processing elasticity" to future work (§1).  This
module provides the mechanism: instead of failing when all dynamic regions
are busy, tenants can *wait* for a region lease, and short-lived query
threads can attach/detach without holding a region idle.

:class:`RegionLeaseManager` wraps one node — or a whole
:class:`~repro.core.cluster.FarviewCluster` — with an admission queue:

* :meth:`acquire` — a process that resolves to an open connection as soon
  as a region frees up.  With multiple nodes it *balances*: each lease
  lands on the node with the most free dynamic regions (ties broken
  toward the node that has granted fewest leases, so a freshly added node
  drains the backlog first).
* :meth:`release` — closes the connection and wakes the next waiter;
* :meth:`with_lease` — convenience process: acquire, run a client
  function, release — the borrow pattern compute-side query threads use.

Two admission policies share the queue mechanics:

* ``policy="fifo"`` (default) — strict arrival order, no starvation.
  This is the exact pre-serving-layer behaviour, so existing
  simulations stay pinned.
* ``policy="fair"`` — start-time fair queueing over the ``tenant`` /
  ``weight`` pair passed to :meth:`acquire`: each ticket gets a virtual
  finish tag ``start + 1/weight`` where ``start`` chains per tenant, and
  the earliest finish tag is granted first.  A tenant with weight *w*
  gets *w* grants per one grant of a weight-1 tenant under contention,
  and every tag is finite, so no tenant starves.

Liveness and fairness guarantees (the PR-10 bugfixes):

* a waiter is woken by node *recovery* as well as by releases — a queue
  parked while every node is down drains as soon as one comes back
  (:meth:`FarviewNode.add_recover_listener` hook);
* an ``open_connection`` failure on the picked node immediately retries
  the *other* candidate nodes before parking;
* a woken waiter whose grant attempt fails transiently re-parks at its
  original queue position (FIFO) / with its original finish tag (fair) —
  it never loses its turn to a newcomer.

Placement is greedy load balancing, not partition-aware routing: a leased
:class:`~repro.core.api.FarviewClient` talks to exactly one node.  Query
threads that need scatter-gather over a sharded table use
:class:`~repro.core.api.ClusterClient` instead, which holds one region on
*every* node for the duration of the connection.

Accounting surfaces for the tests and experiments: ``leases_granted``
(total), ``leases_per_node`` (live leases per node, the balance the tests
assert on), ``live_leases``, ``max_queue_depth`` and ``queued``.  The
invariant ``sum(leases_per_node) == live_leases`` holds at every quiesced
point (the chaos machine asserts it).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Sequence

from ..common.errors import FaultError, QueryError, RegionUnavailableError
from ..sim.engine import Event, Simulator
from .api import FarviewClient
from .node import FarviewNode

POLICIES = ("fifo", "fair")


class _Ticket:
    """One parked acquire: the wake event plus its scheduling identity.

    The event is one-shot, so a requeue mints a fresh one — but ``seq``
    (FIFO position) and ``start``/``finish`` (fair-queueing tags) are
    minted once and survive requeues: a transient grant failure must not
    cost the waiter its turn.
    """

    __slots__ = ("event", "tenant", "weight", "seq", "start", "finish")

    def __init__(self, event: Event, tenant, weight: float, seq: int,
                 start: float, finish: float):
        self.event = event
        self.tenant = tenant
        self.weight = weight
        self.seq = seq
        self.start = start
        self.finish = finish


class RegionLeaseManager:
    """Admission control over the dynamic regions of a node pool.

    ``target`` may be a single :class:`FarviewNode`, a
    :class:`~repro.core.cluster.FarviewCluster`, or any sequence of nodes
    sharing one simulator.  The single-node behaviour (and the ``node``
    attribute) is unchanged from the pre-cluster version.
    """

    def __init__(self, target,
                 buffer_capacity: int = 8 * 1024 * 1024,
                 policy: str = "fifo"):
        if policy not in POLICIES:
            raise QueryError(
                f"unknown admission policy {policy!r}; choose from {POLICIES}")
        self.nodes: list[FarviewNode] = _resolve_nodes(target)
        self.node = self.nodes[0]  # single-node compatibility alias
        self.sim: Simulator = self.node.sim
        self.buffer_capacity = buffer_capacity
        self.policy = policy
        self._waiters: deque[_Ticket] = deque()
        #: Waiters woken by a release but not yet resumed; newcomers must
        #: not barge into this handoff window.
        self._handoffs = 0
        #: Live leases: client -> node index (only clients this manager
        #: granted may be released through it).
        self._live: dict[int, tuple[FarviewClient, int]] = {}
        self.leases_granted = 0
        #: Live (currently held) leases per node — the balance metric.
        self.leases_per_node: list[int] = [0] * len(self.nodes)
        self.max_queue_depth = 0
        self._seq = itertools.count()
        # Fair-queueing state: global virtual time plus each tenant's
        # last finish tag (a tenant's tickets chain, so a heavy tenant
        # cannot monopolize the queue by submitting in bulk).
        self._vtime = 0.0
        self._tenant_finish: dict = {}
        # Liveness: recovery of any pooled node must wake parked waiters
        # that no release would ever wake.  The listener list is empty
        # by default, so unused managers add zero cost to the node.
        for node in self.nodes:
            node.add_recover_listener(self._on_node_recover)

    # -- placement ---------------------------------------------------------
    def _pick_node(self, exclude: set[int] | None = None) -> int | None:
        """Index of the best node with a free region, or None if all busy.

        Most free regions wins; ties go to the node holding the fewest
        live leases, then the lowest index (deterministic placement).
        ``exclude`` skips nodes whose open already failed this attempt.
        """
        best: int | None = None
        for i, node in enumerate(self.nodes):
            if node.failed or node.free_regions <= 0:
                continue
            if exclude is not None and i in exclude:
                continue
            if best is None:
                best = i
                continue
            key = (-node.free_regions, self.leases_per_node[i], i)
            best_key = (-self.nodes[best].free_regions,
                        self.leases_per_node[best], best)
            if key < best_key:
                best = i
        return best

    def _try_grant(self) -> FarviewClient | None:
        """Open a lease on the best node, falling through the candidate
        list when an open fails transiently (retry the *other* nodes
        immediately rather than parking while capacity exists)."""
        tried: set[int] = set()
        while True:
            index = self._pick_node(tried if tried else None)
            if index is None:
                return None
            try:
                client = FarviewClient(self.nodes[index],
                                       self.buffer_capacity)
                client.open_connection()
            except (RegionUnavailableError, FaultError):
                # A region counted free but could not be acquired (e.g.
                # a draining state), or the node died between the pick
                # and the open: strike this node and try the rest of the
                # pool before giving up.
                tried.add(index)
                continue
            self.leases_granted += 1
            self.leases_per_node[index] += 1
            self._live[id(client)] = (client, index)
            return client

    # -- queue mechanics ---------------------------------------------------
    def _make_ticket(self, tenant, weight: float) -> _Ticket:
        start = max(self._vtime, self._tenant_finish.get(tenant, 0.0))
        finish = start + 1.0 / weight
        self._tenant_finish[tenant] = finish
        return _Ticket(self.sim.event(), tenant, weight,
                       next(self._seq), start, finish)

    def _park(self, ticket: _Ticket, *, requeue: bool) -> None:
        """Queue a ticket.  ``requeue`` re-parks a woken waiter whose
        grant failed transiently: it is inserted back in ``seq`` order —
        ahead of every newcomer, and in arrival order relative to other
        re-parked waiters (two waiters woken by the same burst of
        releases may both fail and re-park in the same instant; blind
        append-left would swap them).  Under fair queueing position is
        irrelevant — the finish tag (unchanged across requeues) decides.
        """
        if requeue:
            spot = 0
            while (spot < len(self._waiters)
                   and self._waiters[spot].seq < ticket.seq):
                spot += 1
            self._waiters.insert(spot, ticket)
        else:
            self._waiters.append(ticket)
        self.max_queue_depth = max(self.max_queue_depth, len(self._waiters))

    def _pop_next(self) -> _Ticket:
        """The next waiter to wake under the active policy."""
        if self.policy == "fifo" or len(self._waiters) == 1:
            return self._waiters.popleft()
        best = min(range(len(self._waiters)),
                   key=lambda i: (self._waiters[i].finish,
                                  self._waiters[i].seq))
        ticket = self._waiters[best]
        del self._waiters[best]
        self._vtime = max(self._vtime, ticket.start)
        return ticket

    def _wake_next(self) -> None:
        self._handoffs += 1
        self._pop_next().event.succeed()

    def _on_node_recover(self, _node: FarviewNode) -> None:
        """Liveness hook: a recovered node's free regions can serve parked
        waiters that no release would ever wake (e.g. the whole pool was
        down while they queued, with zero leases outstanding)."""
        if not self._waiters:
            return
        free = sum(node.free_regions for node in self.nodes
                   if not node.failed)
        while self._waiters and self._handoffs < free:
            self._wake_next()

    # -- lease lifecycle ---------------------------------------------------
    def acquire(self, tenant=None, weight: float = 1.0):
        """Process: resolves to a connected :class:`FarviewClient` on the
        least-loaded node with a free region.

        A new arrival never barges past already-queued waiters — it only
        tries the fast path when the queue is empty; a waiter woken by a
        release (or a node recovery) keeps its turn even if its grant
        attempt fails transiently and it has to re-park.

        ``tenant``/``weight`` feed the ``"fair"`` policy (ignored under
        FIFO): grants are ordered by virtual finish tags, so a tenant
        with weight *w* receives *w* grants per weight-1 grant under
        contention.
        """
        if weight <= 0:
            raise QueryError(f"lease weight must be positive: {weight}")
        my_turn = not self._waiters and not self._handoffs
        ticket: _Ticket | None = None
        while True:
            if my_turn:
                client = self._try_grant()
                if client is not None:
                    return client
            if ticket is None:
                ticket = self._make_ticket(tenant, weight)
                self._park(ticket, requeue=False)
            else:
                # Woken, but the grant failed transiently: keep the
                # original scheduling identity (seq + finish tag), mint
                # only a fresh one-shot event, and re-park in seq order —
                # the waiter must not lose its turn to a newcomer.
                ticket.event = self.sim.event()
                self._park(ticket, requeue=True)
            yield ticket.event  # woken by a release or a node recovery
            self._handoffs -= 1
            my_turn = True

    def release(self, client: FarviewClient) -> None:
        """Return the lease; wakes the next waiter under the policy.

        Only clients granted by :meth:`acquire` may be released here —
        a foreign client would corrupt the per-node balance accounting.
        """
        entry = self._live.pop(id(client), None)
        if entry is None:
            raise QueryError("client was not leased from this manager's pool")
        _, index = entry
        try:
            try:
                client.close_connection()
            except FaultError:
                # The node died while leased: the close RPC cannot reach
                # it.  Drop the client-side handle so the books stay
                # exact (sum(leases_per_node) == live_leases) — the
                # node-side state died with the incarnation.
                client.abandon_connection()
        finally:
            self.leases_per_node[index] -= 1
            if self._waiters:
                self._wake_next()

    def with_lease(self, fn, tenant=None, weight: float = 1.0):
        """Process: borrow a client, run ``fn`` (a process function taking
        the client), release — even if ``fn`` raises."""
        client = yield from self.acquire(tenant, weight)
        try:
            result = yield from fn(client)
        finally:
            self.release(client)
        return result

    # -- introspection -----------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def live_leases(self) -> int:
        """Leases currently held — always ``sum(leases_per_node)``."""
        return len(self._live)

    @property
    def free_regions(self) -> int:
        return sum(node.free_regions for node in self.nodes)


def _resolve_nodes(target) -> list[FarviewNode]:
    """Normalize a node / cluster / sequence-of-nodes into a node list."""
    if isinstance(target, FarviewNode):
        return [target]
    nodes = list(getattr(target, "nodes", None)
                 or (target if isinstance(target, Sequence) else ()))
    if not nodes or not all(isinstance(n, FarviewNode) for n in nodes):
        raise QueryError(
            "RegionLeaseManager needs a FarviewNode, a FarviewCluster, or "
            f"a non-empty sequence of nodes; got {target!r}")
    sims = {id(n.sim) for n in nodes}
    if len(sims) != 1:
        raise QueryError("all pooled nodes must share one simulator")
    return nodes
