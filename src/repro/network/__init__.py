"""Network stack: packets, link, queue pairs, RDMA verb transport (§4.3)."""

from .link import Link
from .packet import (
    CONTROL_PACKET_BYTES,
    Packet,
    Verb,
    packetize,
    reassemble,
    split_lengths,
)
from .qp import ClientBuffer, QueuePair
from .rdma import ResponseStreamer, deliver_request, deliver_write

__all__ = [
    "Link",
    "CONTROL_PACKET_BYTES",
    "Packet",
    "Verb",
    "packetize",
    "reassemble",
    "split_lengths",
    "ClientBuffer",
    "QueuePair",
    "ResponseStreamer",
    "deliver_request",
    "deliver_write",
]
