"""SQL interface: the query-compiler front end over the offload path.

The paper's data API "is intended to be used by the query compiler in
Farview" (§4.2, future work).  This example drives the reproduction's SQL
front end: statements are parsed, validated against the catalog, compiled
into operator pipelines, and executed on the simulated node — including a
LIKE predicate that compiles onto the FPGA regex engine.

Run:  python examples/sql_interface.py
"""

import numpy as np

from repro.common.records import Column, Schema
from repro.common.units import to_us
from repro.core.api import FarviewClient
from repro.core.node import FarviewNode
from repro.core.sql import SqlSyntaxError, parse_sql
from repro.sim.engine import Simulator

SCHEMA = Schema([
    Column("id", "int64"),
    Column("price", "float64"),
    Column("qty", "int64"),
    Column("region", "int64"),
    Column("label", "char", 32),
])

STATEMENTS = [
    "SELECT * FROM orders WHERE price < 100.0 AND qty >= 5",
    "SELECT id, price FROM orders WHERE region = 2",
    "SELECT DISTINCT region FROM orders",
    "SELECT region, COUNT(*) AS n, SUM(price) AS revenue "
    "FROM orders GROUP BY region",
    "SELECT * FROM orders WHERE label LIKE '%gold%'",
]


def make_orders(n: int) -> np.ndarray:
    rng = np.random.default_rng(21)
    rows = SCHEMA.empty(n)
    rows["id"] = np.arange(n)
    rows["price"] = rng.random(n) * 500.0
    rows["qty"] = rng.integers(1, 20, n)
    rows["region"] = rng.integers(0, 5, n)
    tiers = [b"bronze tier", b"silver tier", b"gold member", b"basic"]
    rows["label"] = [tiers[i] for i in rng.integers(0, len(tiers), n)]
    return rows


def main() -> None:
    sim = Simulator()
    node = FarviewNode(sim)
    client = FarviewClient(node)
    client.open_connection()

    from repro.core.table import FTable
    rows = make_orders(8_192)
    table = FTable("orders", SCHEMA, len(rows))
    client.alloc_table_mem(table)
    client.table_write(table, rows)
    print(f"orders: {len(rows)} rows x {SCHEMA.row_width} B\n")

    for statement in STATEMENTS:
        parsed = parse_sql(statement)
        result, elapsed = client.sql(statement)
        out = result.rows()
        print(f"sql> {statement}")
        print(f"     pipeline: {parsed.query.signature}")
        print(f"     {len(out)} rows, {result.report.bytes_shipped} bytes "
              f"shipped, {to_us(elapsed):.1f} us simulated")
        preview = out[:3].tolist()
        for row in preview:
            print(f"       {row}")
        if len(out) > 3:
            print(f"       ... ({len(out) - 3} more)")
        print()

    # The parser rejects what the offload engine cannot run.
    for bad in ("SELECT a FROM t WHERE s LIKE 'x' OR a < 1",
                "SELECT a, SUM(b) FROM t"):
        try:
            parse_sql(bad)
        except SqlSyntaxError as exc:
            print(f"rejected as expected: {bad!r}\n  -> {exc}")

    print("\ndone.")


if __name__ == "__main__":
    main()
