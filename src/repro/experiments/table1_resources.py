"""Table 1: resource overhead of Farview.

Regenerates the paper's resource-utilization table from the component
inventory in :mod:`repro.fpga.resource_model` and checks the §6.1 claim
that the full deployment stays under 30% of the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fpga.resource_model import (
    OPERATOR_COSTS,
    TABLE1_OPERATOR_ROWS,
    ResourceModel,
    operator_cost,
    render_table1,
    system_cost,
)


@dataclass
class Table1Result:
    text: str
    system_row: tuple[float, float, float, float]      # percentages
    operator_rows: dict[str, tuple[float, float, float, float]]
    full_deployment_max_utilization: float

    def render(self) -> str:
        return self.text


def run(regions: int = 6) -> Table1Result:
    system = system_cost(regions)
    operator_rows = {}
    for label, key in TABLE1_OPERATOR_ROWS:
        operator_rows[label] = operator_cost(key).as_percentages()

    # Deploy the evaluation's pipelines (selection-class) in every region
    # and record the worst-dimension utilization.
    model = ResourceModel(regions)
    for i in range(regions):
        model.deploy(i, ["selection", "packing"])
    total = model.total()
    worst = max(total.luts, total.regs, total.bram, total.dsps)

    text = render_table1(regions)
    text += ("\n\nFull deployment (selection pipelines in all regions): "
             f"worst-dimension utilization {worst * 100:.1f}% "
             "(paper: 'not more than 30%')")
    return Table1Result(
        text=text,
        system_row=system.as_percentages(),
        operator_rows=operator_rows,
        full_deployment_max_utilization=worst,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
