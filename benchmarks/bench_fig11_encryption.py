"""Figure 11 bench: decryption response time and throughput parity."""

from repro.experiments import fig11_encryption


def test_fig11a_decrypt_response(benchmark, shape):
    result = benchmark.pedantic(fig11_encryption.run_response,
                                rounds=1, iterations=1)
    shape.render(result)
    fv = result.series_named("FV")
    lcpu = result.series_named("LCPU")
    rcpu = result.series_named("RCPU")
    shape.dominates(fv, lcpu, "fig11a")
    shape.dominates(lcpu, rcpu, "fig11a")
    # The FPGA hides AES entirely; software pays per-byte AES + cold DRAM:
    # the gap is large (paper: "significantly outperforms").
    largest = fv.xs[-1]
    assert lcpu.y_at(largest) / fv.y_at(largest) >= 4.0
    for series in (fv, lcpu, rcpu):
        shape.monotonic(series, "fig11a")


def test_fig11b_decrypt_throughput_parity(benchmark, shape):
    result = benchmark.pedantic(fig11_encryption.run_throughput,
                                rounds=1, iterations=1)
    shape.render(result)
    rd = result.series_named("FV-RD")
    rd_dec = result.series_named("FV-RD+Dec")
    # "there is no noticeable performance penalty" (paper §6.7):
    # within 10% at every transfer size.
    for x in rd.xs:
        penalty = 1.0 - rd_dec.y_at(x) / rd.y_at(x)
        assert penalty <= 0.10, f"decryption penalty {penalty:.1%} at {x} B"
