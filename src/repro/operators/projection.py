"""Projection operators: standard and smart addressing (paper §5.2).

*Standard projection* parses whole tuples from the incoming stream and
keeps only the annotated columns.  *Smart addressing* instead issues
multiple, more specific memory requests that fetch only the projected
columns — a win when the tuple is wide and few columns are needed, a loss
when tuples are narrow (many small DRAM requests vs one sequential scan).
Figure 7 explores the crossover; :class:`SmartAddressingPlan` feeds the
node's memory-request generator for that experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import OperatorError
from ..common.records import Schema
from .base import RowOperator


class ProjectionOperator(RowOperator):
    """Keep only the annotated columns (annotation-driven, §5.2)."""

    def __init__(self, columns: list[str]):
        super().__init__("projection")
        if not columns:
            raise OperatorError("projection needs at least one column")
        if len(set(columns)) != len(columns):
            raise OperatorError(f"duplicate projected columns: {columns}")
        self.columns = list(columns)
        self._out_schema: Schema | None = None

    def _bind(self, schema: Schema) -> Schema:
        self._out_schema = schema.project(self.columns)
        return self._out_schema

    def _process(self, batch: np.ndarray) -> np.ndarray:
        assert self._out_schema is not None
        out = self._out_schema.empty(len(batch))
        for name in self.columns:
            out[name] = batch[name]
        return out


@dataclass(frozen=True)
class ColumnRun:
    """A contiguous byte range of projected columns within a row."""

    offset: int
    width: int


class SmartAddressingPlan:
    """Memory-request plan that fetches only the projected columns.

    Contiguous projected columns coalesce into one request per tuple
    (the Figure 7 experiment projects "three contiguous 8-byte columns",
    i.e. one 24-byte request per 512-byte tuple).
    """

    def __init__(self, schema: Schema, columns: list[str]):
        if not columns:
            raise OperatorError("smart addressing needs at least one column")
        self.schema = schema
        self.columns = list(columns)
        self.out_schema = schema.project(columns)
        self.runs = self._coalesce(schema, columns)

    @staticmethod
    def _coalesce(schema: Schema, columns: list[str]) -> list[ColumnRun]:
        ranges = sorted(schema.byte_range(c) for c in columns)
        runs: list[ColumnRun] = []
        for offset, width in ranges:
            if runs and runs[-1].offset + runs[-1].width == offset:
                last = runs[-1]
                runs[-1] = ColumnRun(last.offset, last.width + width)
            else:
                runs.append(ColumnRun(offset, width))
        return runs

    @property
    def requests_per_tuple(self) -> int:
        return len(self.runs)

    @property
    def bytes_per_tuple(self) -> int:
        return sum(run.width for run in self.runs)

    def requests(self, base_vaddr: int, num_tuples: int):
        """Yield (vaddr, length) memory requests, tuple-major order."""
        width = self.schema.row_width
        for i in range(num_tuples):
            row_base = base_vaddr + i * width
            for run in self.runs:
                yield row_base + run.offset, run.width

    def total_bytes(self, num_tuples: int) -> int:
        return self.bytes_per_tuple * num_tuples

    def gather(self, image: bytes | memoryview, num_tuples: int) -> np.ndarray:
        """Vectorized gather of the projected columns from a row image.

        Equivalent to issuing :meth:`requests` and :meth:`assemble`-ing the
        per-request chunks, but performed as one strided copy per column
        over a zero-copy view of ``image`` — the functional half of smart
        addressing at memory bandwidth instead of a per-tuple Python loop.
        """
        full = self.schema.from_bytes(image)
        if len(full) != num_tuples:
            raise OperatorError(
                f"smart addressing expected {num_tuples} tuples, image "
                f"holds {len(full)}")
        out = self.out_schema.empty(num_tuples)
        for name in self.columns:
            out[name] = full[name]
        return out

    def assemble(self, chunks: list[bytes], num_tuples: int) -> np.ndarray:
        """Rebuild projected tuples from the per-request result chunks.

        ``chunks`` must be in the order produced by :meth:`requests`.  The
        result is a structured array over the *projected* schema — note the
        projected schema's column order follows the original byte order of
        the coalesced runs.
        """
        expected = num_tuples * self.requests_per_tuple
        if len(chunks) != expected:
            raise OperatorError(
                f"smart addressing expected {expected} chunks, got {len(chunks)}")
        # Columns sorted by their source offset = concatenation order.
        ordered_cols = sorted(self.columns, key=self.schema.offset)
        packed_schema = self.schema.project(ordered_cols)
        rows = bytearray()
        it = iter(chunks)
        for _ in range(num_tuples):
            for run in self.runs:
                chunk = next(it)
                if len(chunk) != run.width:
                    raise OperatorError(
                        f"chunk of {len(chunk)} bytes does not match run "
                        f"width {run.width}")
                rows.extend(chunk)
        arr = packed_schema.from_bytes(bytes(rows))
        # Reorder into the requested projection order.
        out = self.out_schema.empty(num_tuples)
        for name in self.columns:
            out[name] = arr[name]
        return out
