"""Query descriptors, FTable, catalog, and the pipeline compiler."""

import pytest

from repro.common.config import FarviewConfig
from repro.common.errors import (
    CatalogError,
    PipelineCompilationError,
    QueryError,
)
from repro.common.records import default_schema, string_schema, wide_schema
from repro.core.catalog import Catalog
from repro.core.pipeline_compiler import choose_smart_addressing, compile_query
from repro.core.query import Query, RegexFilter, group_by_sum, select_distinct, select_star
from repro.core.table import FTable
from repro.operators.aggregate import AggregateSpec
from repro.operators.selection import Compare

CONFIG = FarviewConfig()


def make_table(schema=None, rows=100, **kw):
    return FTable("t", schema if schema is not None else default_schema(),
                  rows, **kw)


# --- FTable -------------------------------------------------------------------

def test_table_size():
    table = make_table(rows=10)
    assert table.size_bytes == 640


def test_table_requires_allocation():
    table = make_table()
    assert not table.allocated
    with pytest.raises(CatalogError):
        table.require_allocated()


def test_encrypted_table_needs_keys():
    with pytest.raises(CatalogError):
        FTable("e", default_schema(), 1, encrypted=True)


def test_table_validate_rows():
    table = make_table(rows=2)
    rows = default_schema().empty(2)
    table.validate_rows(rows)
    with pytest.raises(QueryError):
        table.validate_rows(default_schema().empty(3))
    with pytest.raises(QueryError):
        table.validate_rows(wide_schema(128).empty(2))


# --- catalog --------------------------------------------------------------------

def test_catalog_register_lookup():
    cat = Catalog()
    table = cat.register(make_table())
    assert cat.lookup("t") is table
    assert "t" in cat
    assert len(cat) == 1
    assert cat.names == ["t"]


def test_catalog_duplicate_rejected():
    cat = Catalog()
    cat.register(make_table())
    with pytest.raises(CatalogError):
        cat.register(make_table())


def test_catalog_missing_lookup():
    cat = Catalog()
    with pytest.raises(CatalogError):
        cat.lookup("missing")
    with pytest.raises(CatalogError):
        cat.deregister("missing")


def test_catalog_total_bytes():
    cat = Catalog()
    cat.register(make_table(rows=10))
    assert cat.total_bytes() == 640


# --- query validation ----------------------------------------------------------------

def test_query_builders():
    q = select_star(Compare("a", "<", 5))
    assert q.predicate is not None and q.projection is None
    q2 = select_distinct(["a"])
    assert q2.distinct and q2.projection == ("a",)
    q3 = group_by_sum("a", "b")
    assert q3.group_by == ("a",) and len(q3.aggregates) == 1


def test_query_invalid_combinations():
    with pytest.raises(QueryError):
        Query(group_by=("a",))  # no aggregates
    with pytest.raises(QueryError):
        Query(distinct=True, group_by=("a",),
              aggregates=(AggregateSpec("sum", "b"),))
    with pytest.raises(QueryError):
        Query(distinct_columns=("a",))  # without distinct
    with pytest.raises(QueryError):
        Query(projection=())
    with pytest.raises(QueryError):
        Query(smart_addressing=True, vectorized=True,
              projection=("a",))
    with pytest.raises(QueryError):
        Query(encrypt_output=(b"short", b"x" * 12))


def test_query_validates_against_schema():
    schema = default_schema()
    Query(projection=("a", "b")).validate(schema)
    with pytest.raises(QueryError):
        Query(projection=("zz",)).validate(schema)
    with pytest.raises(QueryError):
        Query(regex=RegexFilter("a", "x")).validate(schema)  # not char
    with pytest.raises(QueryError):
        Query(projection=("a",), group_by=("c",),
              aggregates=(AggregateSpec("sum", "a"),)).validate(schema)


def test_query_accessed_columns():
    schema = default_schema()
    q = Query(projection=("a",), predicate=Compare("c", "<", 5))
    assert q.accessed_columns(schema) == ("a", "c")
    q_all = Query(predicate=Compare("a", "<", 5))
    assert q_all.accessed_columns(schema) == schema.names


def test_query_signature_stable_and_distinct():
    q1 = select_star(Compare("a", "<", 5))
    q2 = select_star(Compare("a", "<", 5))
    q3 = select_star(Compare("a", "<", 6))
    assert q1.signature == q2.signature
    assert q1.signature != q3.signature
    assert Query().signature == "raw-read"


# --- smart addressing planning (Figure 7 rule) ------------------------------------------

def test_planner_prefers_standard_for_narrow_tuples():
    schema = wide_schema(256)
    q = Query(projection=("a", "b", "c"))
    assert not choose_smart_addressing(q, schema, CONFIG)


def test_planner_prefers_smart_for_wide_tuples():
    schema = wide_schema(512)
    q = Query(projection=("a", "b", "c"))
    assert choose_smart_addressing(q, schema, CONFIG)


def test_planner_honours_explicit_choice():
    schema = wide_schema(512)
    q = Query(projection=("a",), smart_addressing=False)
    assert not choose_smart_addressing(q, schema, CONFIG)
    q2 = Query(projection=("a",), smart_addressing=True)
    assert choose_smart_addressing(q2, schema, CONFIG)


def test_planner_rejects_sa_for_non_projection_queries():
    schema = wide_schema(512)
    q = Query(predicate=Compare("a", "<", 5))
    assert not choose_smart_addressing(q, schema, CONFIG)


# --- compiler ------------------------------------------------------------------------------

def test_compile_selection_query():
    table = make_table()
    compiled = compile_query(select_star(Compare("a", "<", 5)), table, CONFIG)
    assert compiled.ingest_mode == "standard"
    assert "selection" in compiled.resource_operators
    assert compiled.output_schema == table.schema


def test_compile_vectorized_sets_lanes_and_rate():
    table = make_table()
    compiled = compile_query(
        select_star(Compare("a", "<", 5), vectorized=True), table, CONFIG)
    assert compiled.ingest_mode == "vectorized"
    assert compiled.lanes >= 2
    assert compiled.ingest_rate > CONFIG.operator_stack.region_throughput


def test_compile_smart_addressing_query():
    table = FTable("w", wide_schema(512), 100)
    compiled = compile_query(Query(projection=("a", "b", "c")), table, CONFIG)
    assert compiled.ingest_mode == "smart"
    assert compiled.sa_plan is not None
    assert compiled.output_schema.names == ("a", "b", "c")


def test_compile_rejects_encrypted_table_without_decrypt():
    table = FTable("e", default_schema(), 10, encrypted=True,
                   key=b"k" * 16, nonce=b"n" * 12)
    with pytest.raises(PipelineCompilationError):
        compile_query(select_star(Compare("a", "<", 5)), table, CONFIG)


def test_compile_rejects_decrypt_of_plain_table():
    table = make_table()
    with pytest.raises(PipelineCompilationError):
        compile_query(Query(decrypt_input=True), table, CONFIG)


def test_compile_decrypting_query():
    table = FTable("e", default_schema(), 10, encrypted=True,
                   key=b"k" * 16, nonce=b"n" * 12)
    compiled = compile_query(
        Query(predicate=Compare("a", "<", 5), decrypt_input=True),
        table, CONFIG)
    assert "decryption" in compiled.resource_operators


def test_compile_groupby_and_distinct_and_agg():
    table = make_table()
    gb = compile_query(group_by_sum("a", "b"), table, CONFIG)
    assert "groupby" in gb.resource_operators
    assert gb.output_schema.names == ("a", "sum_b")
    d = compile_query(select_distinct(["a"]), table, CONFIG)
    assert "distinct" in d.resource_operators
    agg = compile_query(
        Query(aggregates=(AggregateSpec("count", "*"),)), table, CONFIG)
    assert "aggregation" in agg.resource_operators


def test_compile_regex_query():
    table = FTable("s", string_schema(64), 10)
    compiled = compile_query(
        Query(regex=RegexFilter("s", "abc|def")), table, CONFIG)
    assert "regex" in compiled.resource_operators


def test_compile_always_includes_pack_send():
    table = make_table()
    compiled = compile_query(Query(), table, CONFIG)
    assert compiled.resource_operators[-2:] == ["packing", "sending"]
