"""Node failure paths and out-of-order delivery robustness."""

import pytest

from repro.common.config import FarviewConfig, MemoryConfig, NetworkConfig
from repro.common.errors import CatalogError, ConnectionError_, NetworkError, OperatorError
from repro.core.api import FarviewClient
from repro.core.node import FarviewNode
from repro.core.query import select_star
from repro.core.table import FTable
from repro.network.link import Link
from repro.network.qp import QueuePair
from repro.network.rdma import ResponseStreamer
from repro.operators.selection import Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import selection_workload

KB = 1024
MB = 1024 * KB

CONFIG = FarviewConfig(
    memory=MemoryConfig(channels=2, channel_capacity=4 * MB,
                        page_size=64 * KB))


@pytest.fixture
def client():
    sim = Simulator()
    node = FarviewNode(sim, CONFIG)
    c = FarviewClient(node)
    c.open_connection()
    return c


def test_write_beyond_table_size_rejected(client):
    wl = selection_workload(16, 1.0)
    table = FTable("S", wl.schema, 16)
    client.alloc_table_mem(table)
    with pytest.raises(OperatorError, match="exceeds"):
        client.table_write(table, b"x" * (table.size_bytes + 1))


def test_read_outside_table_rejected(client):
    wl = selection_workload(16, 1.0)
    table = FTable("S", wl.schema, 16)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    with pytest.raises(OperatorError, match="outside"):
        client.table_read(table, offset=table.size_bytes - 8, length=64)


def test_query_on_unallocated_table_rejected(client):
    wl = selection_workload(16, 1.0)
    table = FTable("S", wl.schema, 16)  # never allocated
    with pytest.raises(CatalogError, match="no disaggregated memory"):
        client.far_view(table, select_star(Compare("a", "<", 1)))


def test_closed_connection_rejects_verbs():
    sim = Simulator()
    node = FarviewNode(sim, CONFIG)
    client = FarviewClient(node)
    client.open_connection()
    client.close_connection()
    wl = selection_workload(4, 1.0)
    with pytest.raises(ConnectionError_):
        client.alloc_table_mem(FTable("S", wl.schema, 4))
    with pytest.raises(ConnectionError_):
        client.close_connection()


def test_double_close_of_node_connection_rejected():
    sim = Simulator()
    node = FarviewNode(sim, CONFIG)
    conn = node.open_connection()
    node.close_connection(conn)
    with pytest.raises(ConnectionError_):
        node.close_connection(conn)


def test_client_buffer_overflow_detected():
    """A result larger than the posted client buffer must fail loudly."""
    sim = Simulator()
    node = FarviewNode(sim, CONFIG)
    client = FarviewClient(node, buffer_capacity=1 * KB)
    client.open_connection()
    wl = selection_workload(256, 1.0)  # 16 kB result into a 1 kB buffer
    table = FTable("S", wl.schema, len(wl.rows))
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    with pytest.raises(NetworkError, match="overflows"):
        client.table_read(table)


def test_resources_undeployed_on_close():
    sim = Simulator()
    node = FarviewNode(sim, CONFIG)
    client = FarviewClient(node)
    client.open_connection()
    wl = selection_workload(64, 1.0)
    table = FTable("S", wl.schema, len(wl.rows))
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    client.far_view(table, select_star(wl.predicate))
    region = client.connection.region.index
    busy = node.utilization()
    client.close_connection()
    freed = node.utilization()
    assert freed.luts < busy.luts  # operator share released
    assert region not in node.resources._deployed


def test_free_table_memory_is_reusable(client):
    wl = selection_workload(64, 1.0)
    for i in range(10):  # would exhaust a leaky allocator
        table = FTable(f"S{i}", wl.schema, len(wl.rows))
        client.alloc_table_mem(table)
        client.table_write(table, wl.rows)
        client.free_table_mem(table)
    assert client.node.mmu.allocator.pages_allocated == 0


# --- out-of-order delivery ---------------------------------------------------------

def test_streamer_deposits_are_position_based_not_order_based():
    """One-sided writes carry their own buffer offset: delivering packets
    out of order must still produce the correct client image (§4.3
    out-of-order execution at packet granularity)."""
    sim = Simulator()
    config = NetworkConfig()
    link = Link(sim, config)
    qp = QueuePair(sim, buffer_capacity=8 * KB, credits=8)
    link.register_flow(qp.qp_id)
    streamer = ResponseStreamer(sim, link, qp, config)
    payload = bytes(range(256)) * 12  # 3 packets

    # Bypass the link: invoke the delivery callbacks in reverse order.
    chunks = [payload[0:1024], payload[1024:2048], payload[2048:3072]]
    offsets = [0, 1024, 2048]
    for off, chunk in reversed(list(zip(offsets, chunks))):
        qp.credits.acquire()
        streamer._on_delivered(off, chunk)
    assert qp.buffer.read(0, len(payload)) == payload
