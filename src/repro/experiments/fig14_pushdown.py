"""Figure 14 (extension): cost-based placement — offload vs ship-to-compute.

The paper assumes the query compiler decides what to push into the memory
node (§4.2) but only evaluates full offload.  This experiment measures the
decision itself: ``SELECT * FROM S WHERE S.a < X`` executed three ways —

* ``FV-off``  — always offload (the paper's path),
* ``FV-ship`` — always ship: raw RDMA read + client-side software selection,
* ``FV-auto`` — the cost-based planner (:mod:`repro.core.planner`) picks
  per query,

swept over predicate selectivity x tuple width at a fixed 1 MB table.

Scenario: *ad-hoc* queries against **cold** regions.  With a warm region
Farview beats the CPU baselines everywhere (Figures 8-12), so the planner
trivially offloads; the contested regime is a one-shot query whose
pipeline is not resident and must be partially reconfigured first.  The
region here is a small selection-only slot — ``reconfiguration_ns`` is
scaled to :data:`SMALL_REGION_FRACTION` of the full-region swap via
:func:`repro.common.calibration.reconfiguration_latency_ns` ("on the
order of milliseconds, *depending on the size of the region*", §3.2) —
and, unlike the other figures, the measured response time *includes* that
setup.

Expected shape: shipping wins the selective/wide corner of the plane
(the fixed reconfiguration charge dominates while the client's per-tuple
work is small), offloading wins as selectivity rises (the client's
result materialization outgrows the node's overlapped egress) and as
tuples narrow (per-tuple software costs blow up) — so the ship->offload
crossover selectivity grows with tuple width.  ``FV-auto`` must track
``min(FV-off, FV-ship)`` within 10% at every point; the run asserts it.
"""

from __future__ import annotations

import numpy as np

from ..common import calibration as cal
from ..common.config import FarviewConfig, OperatorStackConfig
from ..common.units import MB
from ..core.api import FarviewClient, canonical_result_bytes
from ..core.cost_model import PlanStats
from ..core.node import FarviewNode
from ..core.query import Query
from ..core.table import FTable
from ..operators.selection import Compare
from ..sim.engine import Simulator
from ..sim.stats import Series
from ..workloads.generator import projection_workload
from .common import EXPERIMENT_MEMORY, ExperimentResult, us

#: The swept strategies, in reporting order.
STRATEGIES = ("offload", "ship", "auto")

#: Size of the ad-hoc selection region relative to a full dynamic region;
#: scales the partial-reconfiguration charge the cold offload pays.
SMALL_REGION_FRACTION = 0.06

#: The planner must stay within this factor of the best pure strategy.
TRACKING_BOUND = 1.10

TABLE_BYTES = 1 * MB
TUPLE_WIDTHS = (64, 256, 512)
SELECTIVITIES = (0.02, 0.1, 0.25, 0.5, 0.75, 1.0)

#: Upper bound of the generated uniform int64 column (see ``make_rows``).
_VALUE_RANGE = 2 ** 31


def scenario_config() -> FarviewConfig:
    """The ad-hoc-query test bench: small selection-only regions."""
    stack = OperatorStackConfig(
        reconfiguration_ns=cal.reconfiguration_latency_ns(
            SMALL_REGION_FRACTION))
    return FarviewConfig(memory=EXPERIMENT_MEMORY, operator_stack=stack)


def _cold_bench(config: FarviewConfig, buffer_capacity: int):
    sim = Simulator()
    node = FarviewNode(sim, config)
    client = FarviewClient(node, buffer_capacity=buffer_capacity)
    client.open_connection()
    return client


def _measure(width: int, selectivity: float, table_bytes: int,
             config: FarviewConfig) -> dict[str, float]:
    """One sweep point: the three strategies on identical cold benches."""
    num_tuples = table_bytes // width
    schema, rows = projection_workload(num_tuples, width, seed=14)
    cutoff = int(selectivity * _VALUE_RANGE)
    predicate = Compare("a", "<", cutoff)
    actual = float((rows["a"] < cutoff).mean()) if num_tuples else 0.0
    stats = PlanStats(selectivity=actual)
    query = Query(predicate=predicate, label="fig14")

    times: dict[str, float] = {}
    digests: dict[str, bytes] = {}
    for strategy in STRATEGIES:
        client = _cold_bench(config, table_bytes + 64 * 1024)
        table = FTable("S", schema, num_tuples)
        client.alloc_table_mem(table)
        client.table_write(table, rows)
        result, elapsed = client.far_view_planned(table, query,
                                                  placement=strategy,
                                                  stats=stats)
        times[strategy] = elapsed
        digests[strategy] = canonical_result_bytes(result)
    assert digests["ship"] == digests["offload"], "ship changed result bytes"
    assert digests["auto"] == digests["offload"], "auto changed result bytes"
    return times


def run(table_bytes: int = TABLE_BYTES,
        tuple_widths=TUPLE_WIDTHS,
        selectivities=SELECTIVITIES) -> list[ExperimentResult]:
    config = scenario_config()
    results = []
    for width in tuple_widths:
        off = Series("FV-off")
        ship = Series("FV-ship")
        auto = Series("FV-auto")
        worst_tracking = 0.0
        for selectivity in selectivities:
            times = _measure(width, selectivity, table_bytes, config)
            off.add(selectivity, us(times["offload"]))
            ship.add(selectivity, us(times["ship"]))
            auto.add(selectivity, us(times["auto"]))
            best = min(times["offload"], times["ship"])
            tracking = times["auto"] / best
            worst_tracking = max(worst_tracking, tracking)
            assert tracking <= TRACKING_BOUND, (
                f"auto planner off the min by {tracking:.2f}x at "
                f"width={width} selectivity={selectivity}")
        results.append(ExperimentResult(
            experiment_id=f"fig14_w{width}",
            title=(f"Cost-based placement, {width} B tuples, "
                   f"{table_bytes // 1024} kB table (cold region)"),
            x_label="selectivity", y_label="us",
            series=[off, ship, auto],
            notes=[
                "ship wins the selective corner (reconfiguration "
                "dominates); offload wins as selectivity rises and "
                "tuples narrow",
                f"FV-auto tracks min(FV-off, FV-ship) within "
                f"{(worst_tracking - 1) * 100:.1f}% "
                f"(bound {(TRACKING_BOUND - 1) * 100:.0f}%)",
            ]))
    return results


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
