"""Operator stack: the offloaded query operators (paper §5)."""

from .aggregate import AggregateSpec, StandaloneAggregateOperator
from .base import ByteOperator, OperatorPipeline, RowOperator
from .crypto import AesCtr, encrypt_block, expand_key
from .cuckoo import CuckooHashTable
from .distinct import DistinctOperator
from .encryption_op import (
    DecryptOperator,
    EncryptOperator,
    decrypt_table_image,
    encrypt_table_image,
)
from .groupby import GroupByOperator
from .hashing import HashFamily, hash_key, hash_u64_array, mix64
from .lru_cache import ShiftRegisterLru
from .packing import Packer, RoundRobinCombiner
from .projection import ProjectionOperator, SmartAddressingPlan
from .regex_engine import CompiledRegex, compile_pattern
from .regex_op import RegexMatchOperator
from .selection import (
    And,
    Compare,
    Not,
    Or,
    Predicate,
    SelectionOperator,
    VectorizedSelectionOperator,
)
from .sending import Sender

__all__ = [
    "AggregateSpec",
    "StandaloneAggregateOperator",
    "ByteOperator",
    "OperatorPipeline",
    "RowOperator",
    "AesCtr",
    "encrypt_block",
    "expand_key",
    "CuckooHashTable",
    "DistinctOperator",
    "DecryptOperator",
    "EncryptOperator",
    "decrypt_table_image",
    "encrypt_table_image",
    "GroupByOperator",
    "HashFamily",
    "hash_key",
    "hash_u64_array",
    "mix64",
    "ShiftRegisterLru",
    "Packer",
    "RoundRobinCombiner",
    "ProjectionOperator",
    "SmartAddressingPlan",
    "CompiledRegex",
    "compile_pattern",
    "RegexMatchOperator",
    "And",
    "Compare",
    "Not",
    "Or",
    "Predicate",
    "SelectionOperator",
    "VectorizedSelectionOperator",
    "Sender",
]
