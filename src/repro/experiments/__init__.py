"""Experiment harnesses: one module per paper table/figure.

================  =====================================================
Module            Reproduces
================  =====================================================
table1_resources  Table 1 — FPGA resource overhead
fig6_rdma         Figure 6 — RDMA throughput & response time (FV, RNIC)
fig7_projection   Figure 7 — standard projection vs smart addressing
fig8_selection    Figure 8 — selection at 100/50/25% selectivity
fig9_grouping     Figure 9 — DISTINCT and GROUP BY + SUM
fig10_regex       Figure 10 — regular-expression matching
fig11_encryption  Figure 11 — decryption response time & throughput
fig12_multiclient Figure 12 — six concurrent clients
fig13_scaleout    Figure 13 (extension) — pool scale-out, sharded DISTINCT
fig14_pushdown    Figure 14 (extension) — cost-based offload vs ship placement
================  =====================================================
"""

from . import (
    fig6_rdma,
    fig7_projection,
    fig8_selection,
    fig9_grouping,
    fig10_regex,
    fig11_encryption,
    fig12_multiclient,
    fig13_scaleout,
    fig14_pushdown,
    table1_resources,
)
from .common import Bench, ExperimentResult, make_bench, run_query_warm, upload_table

__all__ = [
    "fig6_rdma",
    "fig7_projection",
    "fig8_selection",
    "fig9_grouping",
    "fig10_regex",
    "fig11_encryption",
    "fig12_multiclient",
    "fig13_scaleout",
    "fig14_pushdown",
    "table1_resources",
    "Bench",
    "ExperimentResult",
    "make_bench",
    "run_query_warm",
    "upload_table",
]
