"""Operator edge cases: empty inputs, boundary widths, multi-key grouping,
CTR block boundaries, regex degenerate patterns."""

import numpy as np
import pytest

from repro.common.records import Column, Schema, default_schema, string_schema
from repro.operators.aggregate import AggregateSpec, StandaloneAggregateOperator
from repro.operators.base import OperatorPipeline
from repro.operators.crypto import AesCtr
from repro.operators.distinct import DistinctOperator
from repro.operators.encryption_op import DecryptOperator, EncryptOperator
from repro.operators.groupby import GroupByOperator
from repro.operators.packing import Packer
from repro.operators.projection import ProjectionOperator, SmartAddressingPlan
from repro.operators.regex_engine import compile_pattern
from repro.operators.regex_op import RegexMatchOperator
from repro.operators.selection import Compare, SelectionOperator

KEY = b"\x11" * 16
NONCE = b"\x22" * 12


# --- empty inputs everywhere -----------------------------------------------------

def test_operators_tolerate_empty_batches():
    schema = default_schema()
    empty = schema.empty(0)
    for op in (SelectionOperator(Compare("a", "<", 1)),
               ProjectionOperator(["a"]),
               DistinctOperator(["a"]),
               GroupByOperator(["a"], [AggregateSpec("sum", "b")]),
               StandaloneAggregateOperator([AggregateSpec("count", "*")])):
        op.bind(schema)
        out = op.process(empty)
        assert len(out) == 0


def test_empty_table_through_full_pipeline():
    schema = default_schema()
    pipeline = OperatorPipeline(
        "empty", schema,
        row_ops=[SelectionOperator(Compare("a", "<", 1)),
                 ProjectionOperator(["a"])])
    assert pipeline.process_chunk(b"") == b""
    assert pipeline.flush() == b""


def test_groupby_empty_table_flushes_nothing():
    schema = default_schema()
    op = GroupByOperator(["a"], [AggregateSpec("sum", "b")])
    op.bind(schema)
    out = op.flush()
    assert len(out) == 0
    assert op.flush_cycles() == 0


# --- selectivity boundaries ---------------------------------------------------------

def test_selection_zero_and_full():
    schema = default_schema()
    batch = schema.empty(10)
    batch["a"] = np.arange(10)
    none = SelectionOperator(Compare("a", "<", -1))
    none.bind(schema)
    assert len(none.process(batch)) == 0
    every = SelectionOperator(Compare("a", ">=", 0))
    every.bind(schema)
    assert len(every.process(batch)) == 10


# --- multi-key distinct ordering ----------------------------------------------------

def test_distinct_multi_key_first_occurrence_order():
    schema = default_schema()
    batch = schema.empty(6)
    batch["a"] = [1, 1, 2, 1, 2, 3]
    batch["c"] = [9, 9, 9, 8, 9, 9]
    op = DistinctOperator(["a", "c"])
    op.bind(schema)
    out = op.process(batch)
    assert [(int(r["a"]), int(r["c"])) for r in out] == [
        (1, 9), (2, 9), (1, 8), (3, 9)]


# --- group-by key that is a char column -----------------------------------------------

def test_groupby_char_key():
    schema = string_schema(16)
    rows = schema.empty(5)
    rows["id"] = [1, 2, 3, 4, 5]
    rows["s"] = [b"x", b"y", b"x", b"x", b"y"]
    op = GroupByOperator(["s"], [AggregateSpec("count", "*")])
    op.bind(schema)
    op.process(rows)
    out = op.flush()
    got = {bytes(r["s"]): int(r["count_star"]) for r in out}
    assert got == {b"x": 3, b"y": 2}


# --- aggregation over negative values ---------------------------------------------------

def test_aggregates_handle_negatives():
    schema = default_schema()
    batch = schema.empty(4)
    batch["a"] = [-5, -1, 3, 7]
    op = StandaloneAggregateOperator([
        AggregateSpec("min", "a"), AggregateSpec("max", "a"),
        AggregateSpec("sum", "a"), AggregateSpec("avg", "a")])
    op.bind(schema)
    op.process(batch)
    row = op.flush()
    assert row["min_a"][0] == -5
    assert row["max_a"][0] == 7
    assert row["sum_a"][0] == 4
    assert row["avg_a"][0] == pytest.approx(1.0)


# --- smart addressing single-column / full-row degenerate cases ---------------------------

def test_smart_addressing_all_columns_is_one_run():
    schema = default_schema()
    plan = SmartAddressingPlan(schema, list(schema.names))
    assert plan.requests_per_tuple == 1
    assert plan.bytes_per_tuple == schema.row_width


def test_smart_addressing_single_trailing_column():
    schema = default_schema()
    plan = SmartAddressingPlan(schema, ["h"])
    reqs = list(plan.requests(base_vaddr=0, num_tuples=2))
    assert reqs == [(56, 8), (120, 8)]


# --- CTR block boundaries --------------------------------------------------------------------

def test_ctr_non_multiple_of_block():
    ctr = AesCtr(KEY, NONCE)
    data = b"q" * 37  # 2 blocks + 5 bytes
    assert ctr.process(ctr.process(data)) == data


def test_ctr_stage_one_byte_chunks():
    plain = bytes(range(64))
    enc = EncryptOperator(KEY, NONCE)
    cipher = b"".join(enc.process(plain[i:i + 1]) for i in range(64))
    cipher += enc.finish()
    dec = DecryptOperator(KEY, NONCE)
    out = dec.process(cipher) + dec.finish()
    assert out == plain


def test_ctr_stage_counts_bytes():
    enc = EncryptOperator(KEY, NONCE)
    enc.process(b"z" * 40)
    enc.finish()
    assert enc.bytes_processed == 40


# --- regex degenerate patterns ------------------------------------------------------------------

def test_regex_empty_pattern_matches_everything():
    rx = compile_pattern("")
    assert rx.search(b"")
    assert rx.search(b"anything")
    assert rx.fullmatch(b"")
    assert not rx.fullmatch(b"x")


def test_regex_single_alternation_with_empty_branch():
    rx = compile_pattern("a|")
    assert rx.fullmatch(b"a")
    assert rx.fullmatch(b"")


def test_regex_operator_empty_strings_column():
    schema = string_schema(8)
    rows = schema.empty(2)
    rows["id"] = [1, 2]
    rows["s"] = [b"", b"abc"]
    op = RegexMatchOperator("s", "abc")
    op.bind(schema)
    out = op.process(rows)
    assert out["id"].tolist() == [2]


def test_regex_on_max_width_value():
    schema = string_schema(8)
    rows = schema.empty(1)
    rows["id"] = [1]
    rows["s"] = [b"12345678"]  # exactly the column width, no NUL padding
    op = RegexMatchOperator("s", r"\d{8}")
    op.bind(schema)
    assert len(op.process(rows)) == 1


# --- packer boundary sizes -------------------------------------------------------------------------

@pytest.mark.parametrize("size", [1, 63, 64, 65, 127, 128, 129])
def test_packer_boundaries(size):
    packer = Packer()
    out = packer.pack(b"v" * size) + packer.flush()
    assert out == b"v" * size


# --- projection of one column from a one-column schema ----------------------------------------------

def test_identity_projection():
    schema = Schema([Column("only", "int64")])
    batch = schema.empty(3)
    batch["only"] = [1, 2, 3]
    op = ProjectionOperator(["only"])
    assert op.bind(schema) == schema
    np.testing.assert_array_equal(op.process(batch)["only"], [1, 2, 3])
