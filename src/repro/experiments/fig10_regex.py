"""Figure 10: regular-expression matching vs string size (§6.6).

A table of fixed-width strings is filtered by a regex that matches 50% of
the rows; the string size sweeps 256 B .. 16 kB.  Farview's parallel
engines sustain line rate independent of pattern complexity; the CPU
baselines run an RE2-class matcher and pay DRAM streaming on top.

Expected shape: FV lowest, roughly linear in total string bytes; LCPU and
RCPU above it with a steeper slope; RCPU worst (result shipping).
"""

from __future__ import annotations

from ..baselines.lcpu import LcpuBaseline
from ..baselines.rcpu import RcpuBaseline
from ..core.query import Query, RegexFilter
from ..sim.stats import Series
from ..workloads.generator import REGEX_PATTERN, string_workload
from .common import ExperimentResult, make_bench, run_query_warm, upload_table, us

KB = 1024
STRING_SIZES = (256, 1 * KB, 4 * KB, 16 * KB)
NUM_ROWS = 8
MATCH_FRACTION = 0.5


def _fv_time(schema, rows) -> float:
    bench = make_bench()
    table = upload_table(bench, "R", schema, rows)
    query = Query(regex=RegexFilter("s", REGEX_PATTERN), label="regex")
    result, elapsed = run_query_warm(bench, table, query)
    assert len(result.rows()) <= len(rows)
    return elapsed


def run(string_sizes=STRING_SIZES, num_rows: int = NUM_ROWS
        ) -> ExperimentResult:
    fv = Series("FV")
    lcpu_s = Series("LCPU")
    rcpu_s = Series("RCPU")
    lcpu, rcpu = LcpuBaseline(), RcpuBaseline()
    for size in string_sizes:
        schema, rows = string_workload(num_rows, size, MATCH_FRACTION)
        fv.add(size, us(_fv_time(schema, rows)))
        _, t_l, _ = lcpu.regex(schema, rows, "s", REGEX_PATTERN)
        lcpu_s.add(size, us(t_l))
        _, t_r, _ = rcpu.regex(schema, rows, "s", REGEX_PATTERN)
        rcpu_s.add(size, us(t_r))
    return ExperimentResult(
        experiment_id="fig10",
        title="Regular expression matching response time",
        x_label="string [B]", y_label="us",
        series=[fv, lcpu_s, rcpu_s],
        notes=[f"{num_rows} rows per table, {int(MATCH_FRACTION * 100)}% "
               f"match rate, pattern {REGEX_PATTERN!r}"])


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
