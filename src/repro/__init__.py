"""Farview reproduction: disaggregated memory with operator off-loading.

A functional + timing simulation of the system described in

    Korolija et al., "Farview: Disaggregated Memory with Operator
    Off-loading for Database Engines", CIDR 2022 (arXiv:2106.07102).

Public entry points:

* :mod:`repro.core` — the Farview node and client API (§4.2 of the paper),
* :mod:`repro.operators` — the offloaded operator implementations (§5),
* :mod:`repro.baselines` — LCPU / RCPU / RNIC comparators (§6.1),
* :mod:`repro.workloads` — synthetic workload generators,
* :mod:`repro.experiments` — harnesses reproducing every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
