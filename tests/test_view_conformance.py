"""View conformance: incremental maintenance vs the serial SQL model.

The lock for the materialized-view PR: every cell of the conformance
matrix — view shape (filter / project / distinct / group-by / join) x
delta kind (insert / update / delete / mixed) x topology (single node,
2- and 4-node cluster), with a compaction committed mid-stream in every
cell — must leave the incrementally maintained view sha256-identical to
the serial :mod:`repro.baselines.sql_model` re-execution over the base
relation at the same epoch.  The subscriber's folded copy and its O(1)
splitmix64 digest ride along in every assertion.

A hypothesis property pushes random delta batches through a random
circuit, the join tests drive all three terms of the bilinear rule
(dR |x| S, R |x| dS, dR |x| dS), and a regression test pins the
compaction-notification contract: a subscriber across a compaction
neither double-counts nor misses rows.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sql_model import execute_model
from repro.common.config import FarviewConfig, MemoryConfig
from repro.common.errors import CatalogError, QueryError
from repro.common.records import Column, Schema
from repro.core.api import ClusterClient, FarviewClient
from repro.core.cluster import FarviewCluster
from repro.core.node import FarviewNode
from repro.core.table import FTable
from repro.operators.selection import Compare
from repro.sim.engine import Simulator

KB = 1024
MB = 1024 * KB

TEST_CONFIG = FarviewConfig(memory=MemoryConfig(
    channels=2, channel_capacity=8 * MB, page_size=64 * KB))

BASE_SCHEMA = Schema([
    Column("k", "int64"),       # unique row key (predicate target)
    Column("cat", "char", 4),   # group / join key, 6 categories
    Column("val", "float64"),   # dyadic values: aggregates stay exact
])
DIM_SCHEMA = Schema([
    Column("cat", "char", 4),
    Column("rate", "float64"),
])
CATS = [f"c{i}".encode() for i in range(6)]

#: shape name -> view SQL over the versioned base table ``t`` (the join
#: shape additionally references the static dimension ``dim``).
SHAPES = {
    "filter": "SELECT * FROM t WHERE val < 64.0",
    "project": "SELECT k, val FROM t",
    "distinct": "SELECT DISTINCT cat FROM t",
    "group_by": ("SELECT cat, SUM(val) AS s, COUNT(*) AS n "
                 "FROM t GROUP BY cat"),
    "join": "SELECT * FROM t JOIN dim ON t.cat = dim.cat",
}
DELTA_KINDS = ("insert", "update", "delete", "mixed")
BASE_ROWS = 96
ROUNDS = 3


def make_base(n: int, seed: int = 0, first_key: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    rows = BASE_SCHEMA.empty(n)
    rows["k"] = np.arange(first_key, first_key + n)
    for i in range(n):
        rows["cat"][i] = CATS[int(rng.integers(len(CATS)))]
    rows["val"] = rng.integers(0, 500, n) * 0.25
    return rows


def make_dim() -> np.ndarray:
    rows = DIM_SCHEMA.empty(len(CATS) - 1)   # one category unmatched
    for i in range(len(rows)):
        rows["cat"][i] = CATS[i]
        rows["rate"][i] = 0.5 + 0.25 * i
    return rows


def sorted_sha(schema: Schema, rows: np.ndarray) -> str:
    """sha256 of the sorted row byte-images — the canonical form
    :meth:`ZSet.sha256` hashes, so views compare against it directly."""
    data = schema.to_bytes(rows)
    width = schema.row_width
    images = sorted(data[i:i + width] for i in range(0, len(data), width))
    return hashlib.sha256(b"".join(images)).hexdigest()


def model_sha(sql: str, current: np.ndarray,
              dim: np.ndarray | None = None) -> str:
    tables = {"t": (BASE_SCHEMA, current)}
    if dim is not None:
        tables["dim"] = (DIM_SCHEMA, dim)
    out_schema, out_rows = execute_model(sql, tables)
    return sorted_sha(out_schema, out_rows)


def make_client(num_nodes: int):
    """num_nodes == 1 -> single-node client; else a cluster client."""
    if num_nodes == 1:
        client = FarviewClient(FarviewNode(Simulator(), TEST_CONFIG))
    else:
        client = ClusterClient(FarviewCluster(Simulator(), num_nodes,
                                              TEST_CONFIG))
    client.open_connection()
    return client


def upload_dim(client, num_nodes: int, rows: np.ndarray):
    if num_nodes == 1:
        table = FTable("dim", DIM_SCHEMA, len(rows))
        client.alloc_table_mem(table)
        client.table_write(table, rows)
        return table
    return client.create_table("dim", DIM_SCHEMA, rows)


def current_rows(client, vt, schema: Schema = BASE_SCHEMA) -> np.ndarray:
    image, _ = client.read_version(vt)
    return schema.from_bytes(image, copy=True)


def commit_round(client, vt, kind: str, round_index: int,
                 next_key: int) -> int:
    """One delta round of the given kind; returns the next fresh key."""
    if kind in ("insert", "mixed"):
        batch = make_base(16, seed=100 + round_index, first_key=next_key)
        next_key += 16
        client.insert(vt, batch)
    if kind in ("update", "mixed"):
        client.update_where(vt, Compare("k", "<", 24 * (round_index + 1)),
                            {"val": 63.75 + round_index})
    if kind in ("delete", "mixed"):
        lo = 8 * round_index
        client.delete_where(vt, Compare("k", "<", lo + 4))
    return next_key


# ---------------------------------------------------------------------------
# The matrix: shape x delta kind x topology, compaction mid-stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_nodes", (1, 2, 4))
@pytest.mark.parametrize("kind", DELTA_KINDS)
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_matrix_cell_matches_serial_rescan(shape, kind, num_nodes):
    sql = SHAPES[shape]
    client = make_client(num_nodes)
    dim = make_dim() if shape == "join" else None
    if dim is not None:
        upload_dim(client, num_nodes, dim)
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(BASE_ROWS, seed=1))
    view, _ = client.create_view(sql, name="v")
    sub = client.subscribe(view)          # auto: every commit pushes
    assert view.sha256() == model_sha(sql, current_rows(client, vt), dim), \
        "bootstrap diverged from the serial model"

    next_key = BASE_ROWS
    for round_index in range(ROUNDS):
        next_key = commit_round(client, vt, kind, round_index, next_key)
        if round_index == ROUNDS // 2:
            client.compact(vt)            # mid-stream: pins keep the tail
        expected = model_sha(sql, current_rows(client, vt), dim)
        cell = f"{shape} x {kind} x N={num_nodes}, round {round_index}"
        assert view.sha256() == expected, f"{cell}: view diverged"
        assert sub.sha256() == expected, f"{cell}: subscriber diverged"
        assert sub.digest() == view.digest(), f"{cell}: digest mismatch"


# ---------------------------------------------------------------------------
# Property: random delta batches through a random circuit
# ---------------------------------------------------------------------------

@st.composite
def delta_stream(draw):
    shape = draw(st.sampled_from(sorted(SHAPES)))
    kinds = draw(st.lists(st.sampled_from(DELTA_KINDS),
                          min_size=1, max_size=4))
    compact_at = draw(st.integers(min_value=0, max_value=len(kinds) - 1))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return shape, kinds, compact_at, seed


@given(delta_stream())
@settings(max_examples=10, deadline=None)
def test_random_stream_matches_serial_rescan(case):
    shape, kinds, compact_at, seed = case
    sql = SHAPES[shape]
    client = make_client(1)
    dim = make_dim() if shape == "join" else None
    if dim is not None:
        upload_dim(client, 1, dim)
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(BASE_ROWS, seed=seed))
    view, _ = client.create_view(sql, name="v")
    sub = client.subscribe(view)
    next_key = BASE_ROWS
    for round_index, kind in enumerate(kinds):
        next_key = commit_round(client, vt, kind, round_index, next_key)
        if round_index == compact_at:
            client.compact(vt)
        expected = model_sha(sql, current_rows(client, vt), dim)
        assert view.sha256() == expected
        assert sub.sha256() == expected
        assert sub.digest() == view.digest()


# ---------------------------------------------------------------------------
# The bilinear join rule: dR |x| S, R |x| dS, dR |x| dS
# ---------------------------------------------------------------------------

JOIN_SQL = "SELECT * FROM t JOIN dim ON t.cat = dim.cat"


def make_vdim(cats) -> np.ndarray:
    rows = DIM_SCHEMA.empty(len(cats))
    for i, cat in enumerate(cats):
        rows["cat"][i] = cat
        rows["rate"][i] = 0.25 * (i + 1)
    return rows


def test_join_bilinear_terms_with_versioned_build_side():
    """A versioned dimension makes both sides dynamic.  Probe-only
    commits drive dR |x| S, build-only commits drive R |x| dS, and a
    deferred refresh folding commits to *both* sides in one circuit
    step drives the dR |x| dS term — every state sha-checked against
    the serial model."""
    client = make_client(1)
    vdim = client.create_versioned_table("dim", DIM_SCHEMA,
                                         make_vdim(CATS[:4]))
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(48, seed=9))
    view, _ = client.create_view(JOIN_SQL, name="bilinear")
    sub = client.subscribe(view)

    def expected() -> str:
        return model_sha(JOIN_SQL, current_rows(client, vt),
                         current_rows(client, vdim, DIM_SCHEMA))

    assert view.sha256() == expected()
    # dR |x| S: probe-side churn only.
    client.insert(vt, make_base(16, seed=10, first_key=48))
    client.delete_where(vt, Compare("k", "<", 4))
    assert view.sha256() == expected()
    # R |x| dS: build-side churn only — rates rewritten in place (a
    # -old/+new pair per key) and one category retired outright.
    client.update_where(vdim, Compare("rate", "<", 0.6), {"rate": 8.25})
    client.delete_where(vdim, Compare("rate", ">", 8.0))
    assert view.sha256() == expected()
    # dR |x| dS: detach the auto subscriber, commit to BOTH sides, then
    # fold both deltas in a single engine-wide refresh step.
    client.unsubscribe(sub)
    manual = client.subscribe(view, auto=False)
    client.update_where(vt, Compare("k", ">=", 56), {"val": 500.0})
    client.insert(vdim, make_vdim(CATS[4:]))   # fresh build keys
    stale = view.sha256()
    stats, _ = client.refresh_views()
    assert stats.views_stepped == 1, \
        "both sides' deltas must fold in one circuit step"
    assert view.sha256() == expected() != stale
    assert manual.sha256() == view.sha256()
    assert manual.digest() == view.digest()


def test_join_duplicate_dynamic_build_keys_rejected_on_commit():
    """The circuit's build index enforces the same key-uniqueness
    contract as the offload join: a commit that makes build keys
    ambiguous surfaces a typed error at refresh, not wrong bytes."""
    client = make_client(1)
    vdim = client.create_versioned_table("dim", DIM_SCHEMA,
                                         make_vdim(CATS[:3]))
    client.create_versioned_table("t", BASE_SCHEMA, make_base(24, seed=12))
    view, _ = client.create_view(JOIN_SQL, name="dup")
    client.subscribe(view)                # auto: the commit refreshes
    dupe = DIM_SCHEMA.empty(1)
    dupe["cat"][0] = CATS[0]              # collides with an existing key
    dupe["rate"][0] = 9.0
    with pytest.raises(QueryError, match="unique"):
        client.insert(vdim, dupe)


# ---------------------------------------------------------------------------
# Compaction notification: the subscriber regression
# ---------------------------------------------------------------------------

def test_subscriber_across_compaction_counts_exactly_once():
    """The listener contract: a compaction folds the chain under a
    registered view, and the next refresh replays the retired tail the
    tracker pinned — each committed row counted exactly once (no
    double-count from re-reading the folded base, no miss from the
    retired segments)."""
    client = make_client(1)
    sql = SHAPES["group_by"]
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(64, seed=13))
    view, _ = client.create_view(sql, name="v")
    sub = client.subscribe(view, auto=False)   # deltas accumulate

    client.update_where(vt, Compare("k", "<", 32), {"val": 100.25})
    client.insert(vt, make_base(16, seed=14, first_key=64))
    client.compact(vt)                     # retires the unconsumed tail
    client.delete_where(vt, Compare("k", ">=", 72))

    stats, _ = client.refresh_views()
    # Exactly the committed delta rows: 32 updates (old-/new+ pairs are
    # one delta row each in the segment), 16 inserts, 8 deletes.
    assert stats.delta_rows == 32 + 16 + 8, \
        "compaction double-counted or dropped committed delta rows"
    expected = model_sha(sql, current_rows(client, vt))
    assert view.sha256() == expected
    assert sub.sha256() == expected
    # The compaction moved the trackers' pins forward once consumed: a
    # second refresh finds nothing pending.
    stats2, _ = client.refresh_views()
    assert stats2.segments == 0 and stats2.delta_rows == 0
    assert view.sha256() == expected


def test_listener_lifecycle_and_pin_release():
    """Dropping the last view over a table detaches its tracker
    listener and releases the pinned segments."""
    client = make_client(1)
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(32, seed=15))
    assert vt.num_listeners == 0
    view, _ = client.create_view(SHAPES["filter"], name="a")
    view2, _ = client.create_view(SHAPES["distinct"], name="b")
    assert vt.num_listeners == 1, "views over one table share a tracker"
    assert vt.active_pins >= 1
    client.drop_view(view)
    assert vt.num_listeners == 1, "tracker still needed by view b"
    client.drop_view(view2)
    assert vt.num_listeners == 0
    assert vt.active_pins == 0, "dropping the last view must unpin"


# ---------------------------------------------------------------------------
# Epoch consistency and the registration path
# ---------------------------------------------------------------------------

def test_create_view_bootstrap_pins_a_consistent_epoch():
    """A view created while unconsumed deltas are pending must first
    fold them into the existing views, then bootstrap at the same
    epoch — two views over one table always agree."""
    client = make_client(1)
    sql = SHAPES["group_by"]
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(48, seed=16))
    first, _ = client.create_view(sql, name="first")
    client.subscribe(first, auto=False)    # commits accumulate
    client.update_where(vt, Compare("k", "<", 16), {"val": 9.5})
    second, _ = client.create_view(sql, name="second")
    assert first.epochs == second.epochs, \
        "pending deltas must be folded before a new view bootstraps"
    assert first.sha256() == second.sha256() == model_sha(
        sql, current_rows(client, vt))


def test_subscription_pushes_only_deltas_and_unsubscribe_stops_them():
    client = make_client(1)
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(64, seed=17))
    view, _ = client.create_view(SHAPES["group_by"], name="v")
    sub = client.subscribe(view)
    client.update_where(vt, Compare("k", "<", 8), {"val": 1.25})
    assert sub.updates_received == 1
    # Touched groups retract-and-emit: far fewer rows than the table.
    assert 0 < sub.rows_pushed <= 2 * len(CATS)
    pushed_before = sub.rows_pushed
    client.unsubscribe(sub)
    client.update_where(vt, Compare("k", "<", 8), {"val": 2.5})
    client.refresh_views()
    assert sub.rows_pushed == pushed_before, \
        "unsubscribed receiver still got pushes"


def test_view_registration_rejections_are_typed():
    client = make_client(1)
    client.create_versioned_table("t", BASE_SCHEMA, make_base(16, seed=18))
    plain_rows = make_base(16, seed=19)
    plain = FTable("p", BASE_SCHEMA, len(plain_rows))
    client.alloc_table_mem(plain)
    client.table_write(plain, plain_rows)

    with pytest.raises(QueryError, match="SELECT"):
        client.create_view("INSERT INTO t VALUES (1, 'c0', 2.0)")
    with pytest.raises(CatalogError, match="not in catalog"):
        client.create_view("SELECT * FROM nosuch")
    with pytest.raises(QueryError, match="versioned"):
        client.create_view("SELECT * FROM p")
    client.create_view(SHAPES["filter"], name="taken")
    with pytest.raises(QueryError, match="already exists"):
        client.create_view(SHAPES["distinct"], name="taken")
    with pytest.raises(QueryError, match="unknown view"):
        client.drop_view("never_registered")


def test_rebootstrap_converges_to_the_maintained_image():
    """Tearing a view down and re-bootstrapping from the chain at the
    current epoch reproduces the incrementally maintained bytes, and
    existing subscriptions carry over."""
    client = make_client(2)
    sql = SHAPES["group_by"]
    vt = client.create_versioned_table("t", BASE_SCHEMA,
                                       make_base(96, seed=20))
    view, _ = client.create_view(sql, name="v")
    sub = client.subscribe(view)
    for round_index in range(2):
        client.update_where(vt, Compare("k", "<", 40), {"val": 7.75})
        client.insert(vt, make_base(8, seed=21 + round_index,
                                    first_key=96 + 8 * round_index))
    maintained = view.sha256()
    fresh, _ = client.rebootstrap_view(view)
    assert fresh is client.views.views["v"] and fresh is not view
    assert fresh.sha256() == maintained
    assert sub.view is fresh, "subscription must rebind to the new view"
    client.insert(vt, make_base(8, seed=30, first_key=200))
    expected = model_sha(sql, current_rows(client, vt))
    assert fresh.sha256() == expected
    assert sub.sha256() == expected, \
        "rebound subscription stopped receiving pushes"
