"""Z-sets: weighted relations, the delta algebra behind incremental views.

A **Z-set** maps row byte-images to signed integer weights.  An ordinary
relation is a Z-set whose weights are all ``+1``; a *delta* is a Z-set
whose positive entries are insertions and negative entries are
retractions.  The versioned write path (PR 4) already produces exactly
this encoding: an ``insert`` delta segment is a batch of ``+1`` rows, a
``delete`` segment a batch of ``-1`` rows, and an ``update`` segment a
``-1``/``+1`` pair per touched row id.  :mod:`repro.core.views` feeds
those segments through operator circuits; this module supplies the
algebra they compute over.

Design points:

* **Keys are row byte-images.**  A row is identified by the exact bytes
  of its packed record (:meth:`Schema.to_bytes` of one row), so equality
  is byte equality — the same identity the repo's sha256 conformance
  checks use.  Two float rows that differ in the last ulp are different
  rows, by construction.
* **Always consolidated.**  :meth:`ZSet.add` drops entries the moment
  their weight reaches zero, so ``is_empty`` / ``entry_count`` are exact
  and iteration never visits phantom rows.
* **Canonical materialization.**  :meth:`ZSet.materialize` decodes the
  distinct rows in sorted-byte order, repeating each row ``weight``
  times.  Sorting on the byte image makes the canonical form independent
  of insertion order, so an incrementally maintained view and a full
  rescan hash identically (:meth:`ZSet.sha256`) whenever they contain
  the same multiset of rows.
* **Cheap integrity digests.**  :meth:`ZSet.digest` folds the per-row
  splitmix64 hashes of :func:`~repro.operators.hashing.hash_key_batch`
  into one 64-bit commutative checksum (``sum(weight * h(row))`` mod
  2^64).  Subscribers use it to verify convergence against the view
  without shipping or sorting the full image.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

import numpy as np

from ..common.errors import QueryError
from ..common.records import Schema
from ..operators.hashing import hash_key_batch

_U64 = 1 << 64


def row_images(schema: Schema, rows: np.ndarray) -> list[bytes]:
    """The packed byte-image of each row, in row order."""
    data = schema.to_bytes(rows)
    width = schema.row_width
    return [bytes(data[i:i + width]) for i in range(0, len(data), width)]


class ZSet:
    """A consolidated mapping from row byte-images to signed weights."""

    __slots__ = ("schema", "weights")

    def __init__(self, schema: Schema,
                 weights: dict[bytes, int] | None = None):
        self.schema = schema
        self.weights: dict[bytes, int] = weights or {}

    # -- construction --------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: np.ndarray,
                  weight: int = 1) -> "ZSet":
        """A Z-set with every row of ``rows`` at ``weight``."""
        zset = cls(schema)
        if weight:
            for image in row_images(schema, rows):
                zset.add(image, weight)
        return zset

    def copy(self) -> "ZSet":
        return ZSet(self.schema, dict(self.weights))

    # -- algebra -------------------------------------------------------------
    def add(self, image: bytes, weight: int) -> None:
        """Accumulate ``weight`` for one row, consolidating on zero."""
        if not weight:
            return
        total = self.weights.get(image, 0) + weight
        if total:
            self.weights[image] = total
        else:
            del self.weights[image]

    def add_rows(self, rows: np.ndarray, weight: int = 1) -> None:
        for image in row_images(self.schema, rows):
            self.add(image, weight)

    def update(self, other: "ZSet") -> None:
        """In-place Z-set addition (``self += other``)."""
        if other.schema.names != self.schema.names:
            raise QueryError("cannot add Z-sets over different schemas")
        for image, weight in other.weights.items():
            self.add(image, weight)

    def negated(self) -> "ZSet":
        return ZSet(self.schema, {image: -weight
                                  for image, weight in self.weights.items()})

    # -- inspection ----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.weights

    @property
    def entry_count(self) -> int:
        """Number of distinct rows carrying non-zero weight."""
        return len(self.weights)

    @property
    def total_weight(self) -> int:
        return sum(self.weights.values())

    def __len__(self) -> int:
        return len(self.weights)

    def __iter__(self) -> Iterator[tuple[bytes, int]]:
        return iter(self.weights.items())

    def decode(self) -> tuple[np.ndarray, np.ndarray]:
        """The distinct rows and their weights, in insertion order."""
        images = list(self.weights)
        rows = self.schema.from_bytes(b"".join(images), copy=True)
        weights = np.fromiter((self.weights[i] for i in images),
                              dtype=np.int64, count=len(images))
        return rows, weights

    # -- canonical image -----------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """Sorted-byte-image concatenation, each row repeated ``weight``
        times.  Raises on negative weights: only a relation (a view's
        cumulative state), never a delta, has a canonical image."""
        parts: list[bytes] = []
        for image in sorted(self.weights):
            weight = self.weights[image]
            if weight < 0:
                raise QueryError(
                    f"negative weight {weight} in canonical image: this "
                    f"Z-set is a delta, not a relation")
            parts.append(image * weight)
        return b"".join(parts)

    def materialize(self) -> np.ndarray:
        """The multiset of rows in canonical (sorted byte-image) order."""
        return self.schema.from_bytes(self.canonical_bytes(), copy=True)

    def sha256(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def digest(self) -> int:
        """Order-independent 64-bit checksum: ``sum(w * h(row)) mod 2^64``
        over the per-row splitmix64 hashes of :func:`hash_key_batch`.
        Commutative in the deltas, so a subscriber can fold each pushed
        update into its running digest and compare against the view's."""
        if not self.weights:
            return 0
        images = list(self.weights)
        hashes = hash_key_batch(b"".join(images), self.schema.row_width)
        total = 0
        for image, h in zip(images, hashes.tolist()):
            total = (total + self.weights[image] * h) % _U64
        return total


def zset_sum(schema: Schema, zsets: Iterable[ZSet]) -> ZSet:
    """Fold several Z-sets over ``schema`` into one consolidated sum."""
    total = ZSet(schema)
    for zset in zsets:
        total.update(zset)
    return total
