"""Client-side catalog (paper §4.1: "We assume that the clients have local
catalog information that is used to determine the addresses of the tables
to be accessed")."""

from __future__ import annotations

from ..common.errors import CatalogError
from .table import FTable


class Catalog:
    """Name -> FTable registry shared by the query threads of one client."""

    def __init__(self) -> None:
        self._tables: dict[str, FTable] = {}

    def register(self, table: FTable) -> FTable:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        return table

    def deregister(self, name: str) -> FTable:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} not in catalog")
        return self._tables.pop(name)

    def lookup(self, name: str) -> FTable:
        if name not in self._tables:
            raise CatalogError(
                f"table {name!r} not in catalog; known: {sorted(self._tables)}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def names(self) -> list[str]:
        return sorted(self._tables)

    def total_bytes(self) -> int:
        return sum(t.size_bytes for t in self._tables.values())
