"""Shared fixtures: a fresh simulator and small memory configs for tests."""

import pytest

from repro.common.config import MemoryConfig
from repro.memory.mmu import Mmu
from repro.sim.engine import Simulator

KB = 1024
MB = 1024 * 1024


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_memconfig():
    """Two channels, 64 KB pages, 2 MB per channel — fast to construct."""
    return MemoryConfig(channels=2, channel_capacity=2 * MB, page_size=64 * KB)


@pytest.fixture
def mmu(sim, small_memconfig):
    m = Mmu(sim, small_memconfig)
    m.create_domain(1)
    return m
