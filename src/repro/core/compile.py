"""SQL compiler: tokenizer, parser -> relational-algebra IR, lowering.

The front half of "the query compiler in Farview" (§4.2).  SQL text is
tokenized and parsed into the typed IR of :mod:`repro.core.ir`, then
*lowered* onto the engine:

* Statements expressible in the legacy single-chain grammar (one optional
  join, no ORDER BY / LIMIT / HAVING, no expressions) lower to exactly
  the :class:`ParsedQuery` the original parser produced — same
  :class:`~repro.core.query.Query`, same unresolved
  :class:`ParsedJoin` — and take the unchanged execution path, keeping
  every pinned baseline byte- and timing-identical.
* Anything beyond that (multi-way joins, expression projections,
  expression aggregates, ORDER BY, LIMIT, HAVING, aliases) marks the
  :class:`ParsedQuery` ``extended`` and carries the IR DAG; the clients
  route such statements through :func:`bind_select`, the name-resolution
  / type-check pass that compiles the DAG down to one offloadable head
  :class:`~repro.core.query.Query`, a chain of client-side build/probe
  join stages (:class:`BoundArm` — each arm's build read is itself an
  offloadable Query, independently placeable), and a suffix of
  deterministic client kernels (:class:`BoundEval` /
  :class:`BoundAggregate` / :class:`BoundFilter` / :class:`BoundSort` /
  :class:`BoundLimit` / :class:`BoundDistinct`).

WHERE comparisons are restricted to ``column op literal`` so every
conjunct references exactly one table: the bind pass partitions the
predicate per table and pushes each piece into the scan of its table
(the head query or a join arm) — REMOP-style placement over the DAG
falls out of composing :func:`~repro.core.planner.plan_placement` per
stage.

Grammar extensions over the legacy module docstring
(:mod:`repro.core.sql` keeps the full grammar block)::

    query     := [hint] SELECT [DISTINCT] select_list FROM ident
                 join_clause* [WHERE disjunction]
                 [GROUP BY column_list] [HAVING having_disjunction]
                 [ORDER BY order_list] [LIMIT integer] [';']
    select_item := aggregate | expression [AS ident]
    aggregate := (COUNT '(' '*' ')' | func '(' expression ')') [AS ident]
    expression := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := ['-'] number | string | column | '(' expression ')'
    order_list := column [ASC|DESC] (',' column [ASC|DESC])*

Syntax and resolution errors are :class:`SqlSyntaxError` carrying the
token ``position`` and offending ``fragment`` (offsets are relative to
the *original* statement text, placement hint included).
"""

from __future__ import annotations

import enum
import re as _stdlib_re
from dataclasses import dataclass, field, replace
from typing import Optional

from ..common.errors import QueryError
from ..common.records import Column, Schema
from ..operators.aggregate import SUPPORTED_FUNCS, AggregateSpec
from ..operators.selection import And, Compare, Not, Or, Predicate
from .cluster import (aggregate_output_schema, colocated_compatible,
                      group_output_schema)
from .ir import (AggCall, Aggregate, Arith, BoolAnd, BoolNot, BoolOr, Cmp,
                 Col, Distinct, Expr, Filter, Join, Limit, Lit, Project, Rel,
                 Scan, Sort, TextMatch, conjoin, conjuncts, expr_columns,
                 expr_dtype)
from ..operators.join import join_output_schema
from .query import JoinSpec, Query, RegexFilter


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed or resolved.

    ``position`` is the character offset into the original statement
    (``None`` when the error is not anchored to a token); ``fragment``
    is the offending token text.
    """

    def __init__(self, message: str, position: int | None = None,
                 fragment: str | None = None):
        super().__init__(message)
        self.position = position
        self.fragment = fragment


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

class _Kind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    END = "end"


_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "and", "or",
    "not", "as", "like", "regexp", "count", "sum", "min", "max", "avg",
    "insert", "into", "values", "update", "set", "delete",
    "join", "inner", "on",
    "order", "limit", "having", "asc", "desc",
}

_TOKEN_RE = _stdlib_re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|==|<|>|=)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<punct>[(),;*+/-])
""", _stdlib_re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: _Kind
    text: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is _Kind.KEYWORD and self.text == word


def _tokenize(sql: str, base: int = 0) -> list[_Token]:
    """Tokenize ``sql``; ``base`` shifts positions back onto the original
    statement when a placement hint was stripped off the front."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[pos]!r} at offset {base + pos}",
                position=base + pos, fragment=sql[pos])
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        start = base + match.start()
        if match.lastgroup == "ident":
            lowered = text.lower()
            if lowered in _KEYWORDS and "." not in text:
                tokens.append(_Token(_Kind.KEYWORD, lowered, start))
            else:
                tokens.append(_Token(_Kind.IDENT, text, start))
        elif match.lastgroup == "number":
            tokens.append(_Token(_Kind.NUMBER, text, start))
        elif match.lastgroup == "string":
            tokens.append(_Token(_Kind.STRING, text, start))
        elif match.lastgroup == "op":
            tokens.append(_Token(_Kind.OP, text, start))
        else:
            tokens.append(_Token(_Kind.PUNCT, text, start))
    tokens.append(_Token(_Kind.END, "", base + len(sql)))
    return tokens


# --------------------------------------------------------------------------
# LIKE -> regex translation
# --------------------------------------------------------------------------

_REGEX_META = set(".^$*+?()[]{}|\\")


def like_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into our regex syntax (full match)."""
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        elif ch in _REGEX_META:
            out.append("\\" + ch)
        else:
            out.append(ch)
    out.append("$")
    return "".join(out)


# --------------------------------------------------------------------------
# Parse results
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ParsedJoin:
    """The unresolved join clause of a SELECT.

    The parser has no catalog, so the ON sides and the select list are
    kept as ``(qualifier, column)`` pairs; :func:`resolve_join_query`
    turns them into a :class:`~repro.core.query.JoinSpec` once both
    schemas are known.
    """

    table: str                              # build (dimension) table name
    left: tuple[str | None, str]            # ON left side
    right: tuple[str | None, str]           # ON right side
    select: tuple[tuple[str | None, str], ...] = ()
    star: bool = False


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed statement: the table name plus the offloadable Query.

    ``placement`` carries the optional ``/*+ placement(...) */`` hint
    (``None`` when the statement leaves the decision to the caller).
    ``join`` is the unresolved JOIN clause; statements carrying one must
    go through :func:`resolve_join_query` before execution.

    ``ir`` is the relational-algebra DAG the statement parsed to (every
    SELECT carries one).  ``extended`` marks statements beyond the
    legacy single-chain grammar: ``query``/``join`` are then
    placeholders and execution must go through :func:`bind_select`.
    """

    table: str
    query: Query
    placement: str | None = None
    join: ParsedJoin | None = None
    ir: Optional[Rel] = field(default=None, compare=False, repr=False)
    extended: bool = False


@dataclass(frozen=True)
class ParsedWrite:
    """A parsed write statement for the versioned write path.

    ``kind`` is ``"insert"`` (``values`` holds the literal tuples),
    ``"update"`` (``assignments`` holds ``column -> literal``), or
    ``"delete"``.  ``predicate`` is the parsed WHERE clause (``None``
    means every visible row).
    """

    kind: str
    table: str
    values: tuple[tuple[object, ...], ...] = ()
    assignments: tuple[tuple[str, object], ...] = ()
    predicate: Predicate | None = None


#: Optimizer-style placement hint, accepted before the SELECT keyword.
_HINT_RE = _stdlib_re.compile(
    r"^\s*/\*\+\s*placement\s*\(\s*(auto|offload|ship)\s*\)\s*\*/",
    _stdlib_re.IGNORECASE)


def _strip_placement_hint(sql: str) -> tuple[str, str | None, int]:
    match = _HINT_RE.match(sql)
    if match is None:
        return sql, None, 0
    return sql[match.end():], match.group(1).lower(), match.end()


# --------------------------------------------------------------------------
# IR condition helpers (regex extraction, predicate conversion)
# --------------------------------------------------------------------------

def _has_textmatch(expr: Expr) -> bool:
    if isinstance(expr, TextMatch):
        return True
    if isinstance(expr, (BoolAnd, BoolOr)):
        return _has_textmatch(expr.left) or _has_textmatch(expr.right)
    if isinstance(expr, BoolNot):
        return _has_textmatch(expr.operand)
    return False


def _check_no_nested_textmatch(expr: Expr) -> None:
    """Enforce the pipeline's regex composition rule below the top level."""
    if isinstance(expr, BoolNot):
        if _has_textmatch(expr.operand):
            raise SqlSyntaxError("NOT cannot apply to LIKE/REGEXP")
        _check_no_nested_textmatch(expr.operand)
    elif isinstance(expr, BoolOr):
        if _has_textmatch(expr):
            raise SqlSyntaxError(
                "LIKE/REGEXP cannot appear under OR; the regex stage "
                "is AND-combined with the predicate")
    elif isinstance(expr, BoolAnd):
        _check_no_nested_textmatch(expr.left)
        _check_no_nested_textmatch(expr.right)


def split_regex(condition: Optional[Expr]
                ) -> tuple[Optional[Expr], Optional[TextMatch]]:
    """Split a WHERE condition into (comparison tree, LIKE/REGEXP term).

    Farview's regex operator is a separate pipeline stage: at most one
    text-match term is supported and it must be a top-level AND term
    (parentheses are transparent), mirroring the legacy parser's rules.
    """
    matches: list[TextMatch] = []
    rest: list[Expr] = []
    for term in conjuncts(condition):
        if isinstance(term, TextMatch):
            matches.append(term)
            continue
        _check_no_nested_textmatch(term)
        rest.append(term)
    if len(matches) > 1:
        raise SqlSyntaxError(
            "only one LIKE/REGEXP term is supported per query")
    return conjoin(rest), (matches[0] if matches else None)


def _textmatch_regex(tm: TextMatch) -> RegexFilter:
    pattern = tm.pattern if tm.regexp else like_to_regex(tm.pattern)
    return RegexFilter(tm.column.name, pattern)


def predicate_from_ir(expr: Expr) -> Predicate:
    """Convert a bound comparison tree into operator predicates.

    Column qualifiers are stripped (the predicate runs against one
    table's schema, exactly as the legacy parser behaved).
    """
    if isinstance(expr, Cmp):
        if not isinstance(expr.left, Col) or not isinstance(expr.right, Lit):
            raise SqlSyntaxError(
                "comparisons must be 'column op literal'")
        return Compare(expr.left.name, expr.op, expr.right.value)
    if isinstance(expr, BoolAnd):
        return And(predicate_from_ir(expr.left), predicate_from_ir(expr.right))
    if isinstance(expr, BoolOr):
        return Or(predicate_from_ir(expr.left), predicate_from_ir(expr.right))
    if isinstance(expr, BoolNot):
        return Not(predicate_from_ir(expr.operand))
    raise SqlSyntaxError(
        f"cannot convert {type(expr).__name__} to a predicate")


def _fold_predicates(terms: list[Predicate]) -> Predicate | None:
    if not terms:
        return None
    out = terms[0]
    for term in terms[1:]:
        out = And(out, term)
    return out


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, sql: str):
        sql, self.placement, hint_end = _strip_placement_hint(sql)
        self.sql = sql
        self.tokens = _tokenize(sql, base=hint_end)
        self.index = 0

    # -- token helpers ---------------------------------------------------------
    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _fail(self, message: str, token: _Token) -> SqlSyntaxError:
        return SqlSyntaxError(message, position=token.pos,
                              fragment=token.text)

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if not token.is_keyword(word):
            raise self._fail(
                f"expected {word.upper()} at offset {token.pos}, got "
                f"{token.text!r}", token)

    def _expect_punct(self, text: str) -> None:
        token = self._advance()
        if token.kind is not _Kind.PUNCT or token.text != text:
            raise self._fail(
                f"expected {text!r} at offset {token.pos}, got "
                f"{token.text!r}", token)

    def _column_name(self) -> str:
        token = self._advance()
        if token.kind is not _Kind.IDENT:
            raise self._fail(
                f"expected a column name at offset {token.pos}, got "
                f"{token.text!r}", token)
        # Strip the table qualifier (single-table queries).
        return token.text.split(".")[-1]

    def _col_ref(self) -> Col:
        """A column reference keeping its table qualifier."""
        token = self._advance()
        if token.kind is not _Kind.IDENT:
            raise self._fail(
                f"expected a column name at offset {token.pos}, got "
                f"{token.text!r}", token)
        if "." in token.text:
            qualifier, name = token.text.split(".", 1)
            return Col(name, qualifier)
        return Col(token.text)

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> ParsedQuery | ParsedWrite:
        token = self._peek()
        if (token.is_keyword("insert") or token.is_keyword("update")
                or token.is_keyword("delete")):
            if self.placement is not None:
                raise SqlSyntaxError(
                    "a /*+ placement(...) */ hint applies to reads only; "
                    "write statements always execute at the node")
            if token.is_keyword("insert"):
                return self._insert()
            if token.is_keyword("update"):
                return self._update()
            return self._delete()
        return self._select()

    def _table_name(self) -> str:
        token = self._advance()
        if token.kind is not _Kind.IDENT:
            raise self._fail(
                f"expected a table name at offset {token.pos}, got "
                f"{token.text!r}", token)
        return token.text.split(".")[-1]

    def _finish_statement(self) -> None:
        if self._peek().kind is _Kind.PUNCT and self._peek().text == ";":
            self._advance()
        if self._peek().kind is not _Kind.END:
            token = self._peek()
            raise self._fail(
                f"unexpected trailing input at offset {token.pos}: "
                f"{token.text!r}", token)

    def _literal(self) -> object:
        token = self._advance()
        negative = False
        if token.kind is _Kind.PUNCT and token.text == "-":
            negative = True
            token = self._advance()
        if token.kind is _Kind.NUMBER:
            text = token.text
            value: object = float(text) if "." in text else int(text)
            return -value if negative else value
        if negative:
            raise self._fail(
                f"expected a number after '-' at offset {token.pos}", token)
        if token.kind is _Kind.STRING:
            return _unquote(token.text)
        raise self._fail(
            f"expected a literal at offset {token.pos}, got {token.text!r}",
            token)

    # -- write statements -------------------------------------------------------
    def _write_where(self) -> Predicate | None:
        """Optional WHERE clause of a write statement (no regex stage)."""
        if not self._peek().is_keyword("where"):
            return None
        self._advance()
        condition = self._condition(self._where_comparison)
        if _has_textmatch(condition):
            raise SqlSyntaxError(
                "LIKE/REGEXP is not supported in write statements (the "
                "write verbs evaluate comparison predicates only)")
        return predicate_from_ir(_strip_cmp_qualifiers(condition))

    def _insert(self) -> ParsedWrite:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._table_name()
        self._expect_keyword("values")
        tuples: list[tuple[object, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._literal()]
            while (self._peek().kind is _Kind.PUNCT
                   and self._peek().text == ","):
                self._advance()
                values.append(self._literal())
            self._expect_punct(")")
            tuples.append(tuple(values))
            if self._peek().kind is _Kind.PUNCT and self._peek().text == ",":
                self._advance()
                continue
            break
        self._finish_statement()
        return ParsedWrite(kind="insert", table=table, values=tuple(tuples))

    def _update(self) -> ParsedWrite:
        self._expect_keyword("update")
        table = self._table_name()
        self._expect_keyword("set")
        assignments: list[tuple[str, object]] = []
        seen: set[str] = set()
        while True:
            column = self._column_name()
            token = self._advance()
            if token.kind is not _Kind.OP or token.text not in ("=", "=="):
                raise self._fail(
                    f"expected '=' at offset {token.pos}, got "
                    f"{token.text!r}", token)
            if column in seen:
                raise SqlSyntaxError(
                    f"column {column!r} assigned twice in SET")
            seen.add(column)
            assignments.append((column, self._literal()))
            if self._peek().kind is _Kind.PUNCT and self._peek().text == ",":
                self._advance()
                continue
            break
        predicate = self._write_where()
        self._finish_statement()
        return ParsedWrite(kind="update", table=table,
                           assignments=tuple(assignments),
                           predicate=predicate)

    def _delete(self) -> ParsedWrite:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._table_name()
        predicate = self._write_where()
        self._finish_statement()
        return ParsedWrite(kind="delete", table=table, predicate=predicate)

    # -- SELECT -> IR -----------------------------------------------------------
    def _select(self) -> ParsedQuery:
        self._expect_keyword("select")
        distinct = False
        if self._peek().is_keyword("distinct"):
            self._advance()
            distinct = True
        star, items = self._select_list()
        self._expect_keyword("from")
        table = self._table_name()
        joins = []
        while True:
            join = self._join_clause()
            if join is None:
                break
            joins.append(join)
        condition: Optional[Expr] = None
        if self._peek().is_keyword("where"):
            self._advance()
            condition = self._condition(self._where_comparison)
        group_cols: tuple[Col, ...] = ()
        if self._peek().is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_cols = tuple(self._col_ref_list())
        having: Optional[Expr] = None
        if self._peek().is_keyword("having"):
            self._advance()
            having = self._condition(self._having_comparison)
        order: tuple[tuple[Col, bool], ...] = ()
        if self._peek().is_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            order = tuple(self._order_list())
        limit: Optional[int] = None
        if self._peek().is_keyword("limit"):
            self._advance()
            token = self._advance()
            if token.kind is not _Kind.NUMBER or "." in token.text:
                raise self._fail(
                    f"LIMIT expects an integer at offset {token.pos}, got "
                    f"{token.text!r}", token)
            limit = int(token.text)
        self._finish_statement()
        ir = _assemble_ir(table, joins, condition, group_cols, having,
                          star, items, distinct, order, limit)
        return lower_select(ir, self.placement)

    def _join_clause(self) -> Optional[tuple[str, Col, Col]]:
        """``[INNER] JOIN ident ON column '=' column`` after FROM."""
        if self._peek().is_keyword("inner"):
            self._advance()
            self._expect_keyword("join")
        elif self._peek().is_keyword("join"):
            self._advance()
        else:
            return None
        build = self._table_name()
        self._expect_keyword("on")
        left = self._col_ref()
        token = self._advance()
        if token.kind is not _Kind.OP or token.text not in ("=", "=="):
            raise self._fail(
                f"join ON clause must be an equality; got {token.text!r} "
                f"at offset {token.pos}", token)
        right = self._col_ref()
        return build, left, right

    def _select_list(self):
        star = False
        items: list[tuple[Expr, Optional[str]]] = []
        while True:
            token = self._peek()
            if token.kind is _Kind.PUNCT and token.text == "*":
                self._advance()
                if star or items:
                    raise self._fail(
                        "'*' cannot be mixed with other select items", token)
                star = True
            elif (token.kind is _Kind.KEYWORD
                    and token.text in SUPPORTED_FUNCS):
                if star:
                    raise self._fail(
                        "'*' cannot be mixed with other select items", token)
                items.append((self._agg_call(), None))
            else:
                if star:
                    raise self._fail(
                        "'*' cannot be mixed with other select items", token)
                expr = self._expression()
                alias: Optional[str] = None
                if self._peek().is_keyword("as"):
                    self._advance()
                    alias_token = self._advance()
                    if alias_token.kind is not _Kind.IDENT:
                        raise self._fail(
                            f"expected an alias at offset {alias_token.pos}",
                            alias_token)
                    alias = alias_token.text
                items.append((expr, alias))
            if self._peek().kind is _Kind.PUNCT and self._peek().text == ",":
                self._advance()
                continue
            return star, items

    def _agg_call(self) -> AggCall:
        func_token = self._advance()
        func = func_token.text
        self._expect_punct("(")
        arg: Optional[Expr] = None
        if func == "count" and self._peek().text == "*":
            self._advance()
        else:
            arg = self._expression()
        self._expect_punct(")")
        alias = ""
        if self._peek().is_keyword("as"):
            self._advance()
            alias_token = self._advance()
            if alias_token.kind is not _Kind.IDENT:
                raise self._fail(
                    f"expected an alias at offset {alias_token.pos}",
                    alias_token)
            alias = alias_token.text
        return AggCall(func, arg, alias)

    # -- expressions ------------------------------------------------------------
    def _expression(self) -> Expr:
        left = self._term()
        while (self._peek().kind is _Kind.PUNCT
               and self._peek().text in ("+", "-")):
            op = self._advance().text
            left = Arith(op, left, self._term())
        return left

    def _term(self) -> Expr:
        left = self._factor()
        while (self._peek().kind is _Kind.PUNCT
               and self._peek().text in ("*", "/")):
            op = self._advance().text
            left = Arith(op, left, self._factor())
        return left

    def _factor(self) -> Expr:
        token = self._peek()
        if token.kind is _Kind.PUNCT and token.text == "(":
            self._advance()
            inner = self._expression()
            self._expect_punct(")")
            return inner
        if token.kind in (_Kind.NUMBER, _Kind.STRING) or (
                token.kind is _Kind.PUNCT and token.text == "-"):
            return Lit(self._literal())
        if token.kind is _Kind.IDENT:
            return self._col_ref()
        raise self._fail(
            f"expected an expression at offset {token.pos}, got "
            f"{token.text!r}", token)

    # -- boolean conditions -----------------------------------------------------
    def _condition(self, comparison) -> Expr:
        return self._disjunction(comparison)

    def _disjunction(self, comparison) -> Expr:
        left = self._conjunction(comparison)
        while self._peek().is_keyword("or"):
            self._advance()
            left = BoolOr(left, self._conjunction(comparison))
        return left

    def _conjunction(self, comparison) -> Expr:
        left = self._cond_factor(comparison)
        while self._peek().is_keyword("and"):
            self._advance()
            left = BoolAnd(left, self._cond_factor(comparison))
        return left

    def _cond_factor(self, comparison) -> Expr:
        token = self._peek()
        if token.is_keyword("not"):
            self._advance()
            return BoolNot(self._cond_factor(comparison))
        if token.kind is _Kind.PUNCT and token.text == "(":
            self._advance()
            inner = self._disjunction(comparison)
            self._expect_punct(")")
            return inner
        return comparison()

    def _where_comparison(self) -> Expr:
        column = self._col_ref()
        token = self._advance()
        if token.is_keyword("like") or token.is_keyword("regexp"):
            pattern_token = self._advance()
            if pattern_token.kind is not _Kind.STRING:
                raise self._fail(
                    f"expected a string pattern at offset "
                    f"{pattern_token.pos}", pattern_token)
            return TextMatch(column, _unquote(pattern_token.text),
                             regexp=token.text == "regexp")
        if token.kind is not _Kind.OP:
            raise self._fail(
                f"expected a comparison operator at offset {token.pos}, got "
                f"{token.text!r}", token)
        op = {"=": "==", "<>": "!="}.get(token.text, token.text)
        return Cmp(op, column, Lit(self._literal()))

    def _having_comparison(self) -> Expr:
        token = self._peek()
        if token.kind is _Kind.KEYWORD and token.text in SUPPORTED_FUNCS:
            left: Expr = self._agg_call()
        else:
            left = self._col_ref()
        op_token = self._advance()
        if op_token.kind is not _Kind.OP:
            raise self._fail(
                f"expected a comparison operator at offset {op_token.pos}, "
                f"got {op_token.text!r}", op_token)
        op = {"=": "==", "<>": "!="}.get(op_token.text, op_token.text)
        return Cmp(op, left, Lit(self._literal()))

    # -- list helpers -----------------------------------------------------------
    def _col_ref_list(self) -> list[Col]:
        columns = [self._col_ref()]
        while self._peek().kind is _Kind.PUNCT and self._peek().text == ",":
            self._advance()
            columns.append(self._col_ref())
        return columns

    def _order_list(self) -> list[tuple[Col, bool]]:
        keys = [self._order_key()]
        while self._peek().kind is _Kind.PUNCT and self._peek().text == ",":
            self._advance()
            keys.append(self._order_key())
        return keys

    def _order_key(self) -> tuple[Col, bool]:
        col = self._col_ref()
        ascending = True
        if self._peek().is_keyword("asc"):
            self._advance()
        elif self._peek().is_keyword("desc"):
            self._advance()
            ascending = False
        return col, ascending


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def _strip_cmp_qualifiers(expr: Expr) -> Expr:
    """Drop table qualifiers off every column in a comparison tree (the
    legacy single-table behaviour for write-statement predicates)."""
    if isinstance(expr, Cmp) and isinstance(expr.left, Col):
        return replace(expr, left=Col(expr.left.name))
    if isinstance(expr, BoolAnd):
        return BoolAnd(_strip_cmp_qualifiers(expr.left),
                       _strip_cmp_qualifiers(expr.right))
    if isinstance(expr, BoolOr):
        return BoolOr(_strip_cmp_qualifiers(expr.left),
                      _strip_cmp_qualifiers(expr.right))
    if isinstance(expr, BoolNot):
        return BoolNot(_strip_cmp_qualifiers(expr.operand))
    return expr


# --------------------------------------------------------------------------
# IR assembly + validation
# --------------------------------------------------------------------------

def _assemble_ir(table: str, joins, condition, group_cols, having,
                 star: bool, items, distinct: bool, order,
                 limit: Optional[int]) -> Rel:
    """Stack the parsed clauses into the canonical IR shape, running the
    structural validations the legacy ``_build_query`` enforced."""
    agg_items = [expr for expr, _alias in items if isinstance(expr, AggCall)]
    plain_items = [(expr, alias) for expr, alias in items
                   if not isinstance(expr, AggCall)]
    if not star and not items:
        raise SqlSyntaxError("empty select list")
    if distinct and agg_items:
        raise SqlSyntaxError("DISTINCT cannot be combined with aggregates")
    if having is not None and not group_cols:
        raise SqlSyntaxError("HAVING requires GROUP BY")
    if group_cols:
        if not agg_items:
            raise SqlSyntaxError("GROUP BY requires aggregate functions")
        group_names = {col.name for col in group_cols}
        missing = []
        for expr, alias in plain_items:
            if not isinstance(expr, Col):
                raise SqlSyntaxError(
                    "select expressions in a grouped query must be "
                    "aggregates or GROUP BY columns")
            if alias is not None:
                raise SqlSyntaxError(
                    "aliases on GROUP BY columns are not supported")
            if expr.name not in group_names:
                missing.append(expr.name)
        if missing:
            raise SqlSyntaxError(
                f"non-aggregated columns {missing} must appear in "
                f"GROUP BY")
    elif agg_items and plain_items:
        raise SqlSyntaxError(
            "plain columns next to aggregates need a GROUP BY")
    # Fires the legacy regex-composition errors at parse time (the split
    # itself is redone during lowering/binding).
    split_regex(condition)
    for expr in agg_items:
        if expr.arg is not None and not isinstance(expr.arg, Col):
            if not expr.alias:
                raise SqlSyntaxError(
                    "aggregates over expressions need an AS alias")
    rel: Rel = Scan(table)
    for build, left, right in joins:
        rel = Join(rel, build, left, right)
    if condition is not None:
        rel = Filter(rel, condition)
    if agg_items:
        rel = Aggregate(rel, tuple(group_cols), tuple(agg_items), having)
    rel = Project(rel, items=tuple(items), star=star)
    if distinct:
        rel = Distinct(rel)
    if order:
        rel = Sort(rel, tuple(order))
    if limit is not None:
        rel = Limit(rel, limit)
    return rel


@dataclass(frozen=True)
class SelectParts:
    """One SELECT's clauses, unstacked from the canonical IR shape."""

    scan: Scan
    joins: tuple[Join, ...]
    condition: Optional[Expr]
    aggregate: Optional[Aggregate]
    project: Project
    distinct: bool
    sort: Optional[Sort]
    limit: Optional[int]


def unstack_select(rel: Rel) -> SelectParts:
    """Walk the canonical Scan->...->Limit stacking back into clauses."""
    limit: Optional[int] = None
    if isinstance(rel, Limit):
        limit, rel = rel.count, rel.child
    sort: Optional[Sort] = None
    if isinstance(rel, Sort):
        sort, rel = rel, rel.child
    distinct = False
    if isinstance(rel, Distinct):
        distinct, rel = True, rel.child
    if not isinstance(rel, Project):
        raise QueryError(
            f"non-canonical IR: expected Project, got {type(rel).__name__}")
    project, rel = rel, rel.child
    aggregate: Optional[Aggregate] = None
    if isinstance(rel, Aggregate):
        aggregate, rel = rel, rel.child
    condition: Optional[Expr] = None
    if isinstance(rel, Filter):
        condition, rel = rel.condition, rel.child
    joins: list[Join] = []
    while isinstance(rel, Join):
        joins.append(rel)
        rel = rel.child
    joins.reverse()
    if not isinstance(rel, Scan):
        raise QueryError(
            f"non-canonical IR: expected Scan, got {type(rel).__name__}")
    return SelectParts(scan=rel, joins=tuple(joins), condition=condition,
                       aggregate=aggregate, project=project,
                       distinct=distinct, sort=sort, limit=limit)


# --------------------------------------------------------------------------
# Lowering: IR -> ParsedQuery (legacy fast path or extended marker)
# --------------------------------------------------------------------------

def _is_legacy(parts: SelectParts) -> bool:
    """Statements the original grammar covered lower to the exact legacy
    ParsedQuery and take the unchanged execution path."""
    if parts.sort is not None or parts.limit is not None:
        return False
    if parts.aggregate is not None and parts.aggregate.having is not None:
        return False
    if len(parts.joins) > 1:
        return False
    for expr, alias in parts.project.items:
        if isinstance(expr, AggCall):
            if expr.arg is not None and not isinstance(expr.arg, Col):
                return False
        elif not (isinstance(expr, Col) and alias is None):
            return False
    return True


def lower_select(ir: Rel, placement: str | None) -> ParsedQuery:
    parts = unstack_select(ir)
    if _is_legacy(parts):
        return _lower_legacy(parts, ir, placement)
    query = Query(label="sql")          # placeholder; bind_select builds
    return ParsedQuery(table=parts.scan.table, query=query,
                       placement=placement, join=None, ir=ir,
                       extended=True)


def _lower_legacy(parts: SelectParts, ir: Rel,
                  placement: str | None) -> ParsedQuery:
    star = parts.project.star
    columns: list[str] = []
    select_refs: list[tuple[str | None, str]] = []
    aggregates: list[AggregateSpec] = []
    for expr, _alias in parts.project.items:
        if isinstance(expr, AggCall):
            column = "*" if expr.arg is None else expr.arg.name
            aggregates.append(AggregateSpec(expr.func, column, expr.alias))
        else:
            columns.append(expr.name)
            select_refs.append((expr.qualifier, expr.name))
    residual, tm = split_regex(parts.condition)
    predicate = (predicate_from_ir(_strip_cmp_qualifiers(residual))
                 if residual is not None else None)
    regex = None
    if tm is not None:
        regex = _textmatch_regex(tm)
    group_by = (tuple(col.name for col in parts.aggregate.group_by)
                if parts.aggregate is not None and parts.aggregate.group_by
                else None)
    join = None
    if parts.joins:
        j = parts.joins[0]
        join = ParsedJoin(table=j.table,
                          left=(j.left.qualifier, j.left.name),
                          right=(j.right.qualifier, j.right.name),
                          select=tuple(select_refs), star=star)
    projection = None
    if (not star and columns and group_by is None and not aggregates
            and join is None):
        projection = tuple(columns)
    query = Query(
        projection=projection,
        predicate=predicate,
        regex=regex,
        distinct=parts.distinct,
        distinct_columns=None,  # DISTINCT applies to the projection
        group_by=group_by,
        aggregates=tuple(aggregates),
        label="sql")
    return ParsedQuery(table=parts.scan.table, query=query,
                       placement=placement, join=join, ir=ir)


# --------------------------------------------------------------------------
# Legacy join resolution (single-join fast path)
# --------------------------------------------------------------------------

def resolve_join_query(parsed: ParsedQuery, probe_schema,
                       build_table) -> Query:
    """Resolve a parsed JOIN statement against the actual schemas.

    ``probe_schema`` is the FROM table's schema; ``build_table`` is the
    catalog handle of the joined table (anything with ``schema`` — a
    plain :class:`~repro.core.table.FTable`, a sharded handle, or a
    versioned table).  Decides which ON side is the probe key, splits
    the select list into probe projection and build payload, and
    returns the executable :class:`~repro.core.query.Query` carrying a
    :class:`~repro.core.query.JoinSpec`.
    """
    pj = parsed.join
    if pj is None:
        return parsed.query
    build_schema = build_table.schema
    probe_name, build_name = parsed.table, pj.table

    def side(qualifier: str | None, name: str) -> str:
        if qualifier is not None and qualifier not in (probe_name,
                                                       build_name):
            raise SqlSyntaxError(
                f"unknown table qualifier {qualifier!r}; the query joins "
                f"{probe_name!r} with {build_name!r}")
        if qualifier == probe_name:
            if name not in probe_schema.names:
                raise SqlSyntaxError(
                    f"unknown column {probe_name}.{name}")
            return "probe"
        if qualifier == build_name:
            if name not in build_schema.names:
                raise SqlSyntaxError(
                    f"unknown column {build_name}.{name}")
            return "build"
        if name in probe_schema.names:
            return "probe"      # probe side wins an ambiguous bare name
        if name in build_schema.names:
            return "build"
        raise SqlSyntaxError(
            f"unknown column {name!r}: in neither {probe_name!r} nor "
            f"{build_name!r}")

    left_side, right_side = side(*pj.left), side(*pj.right)
    if {left_side, right_side} != {"probe", "build"}:
        raise SqlSyntaxError(
            f"join ON must relate one column of {probe_name!r} to one "
            f"column of {build_name!r}")
    probe_key = pj.left[1] if left_side == "probe" else pj.right[1]
    build_key = pj.left[1] if left_side == "build" else pj.right[1]

    grouped = (parsed.query.group_by is not None
               or bool(parsed.query.aggregates))
    if pj.star:
        payload = [n for n in build_schema.names if n != build_key]
        projection = None
    else:
        payload = []
        names: list[str] = []
        probe_names = set(probe_schema.names)
        for qualifier, name in pj.select:
            if side(qualifier, name) == "probe":
                names.append(name)
                continue
            if name == build_key:
                # The build key equals the probe key after an inner join.
                names.append(probe_key)
                continue
            if name not in payload:
                payload.append(name)
            names.append(name if name not in probe_names
                         else f"build_{name}")
        # GROUP BY / aggregate statements keep projection=None (exactly
        # as _build_query does without a join): the grouping stage needs
        # the aggregate input columns a select-list projection would
        # drop.
        projection = tuple(names) if names and not grouped else None
    if not payload:
        # A semi-join shape: no build column selected beyond the key (or
        # SELECT * over the build side).  The operator must carry at
        # least one payload column; borrow one — the projection (or the
        # aggregation) drops it from the result.
        extra = [n for n in build_schema.names if n != build_key]
        if not extra:
            raise SqlSyntaxError(
                f"joined table {build_name!r} has no columns besides the "
                f"key {build_key!r}; nothing to join in")
        payload.append(extra[0])
    return replace(parsed.query, projection=projection,
                   join=JoinSpec(build_table, build_key, probe_key,
                                 tuple(payload)))


def parse_sql(sql: str) -> ParsedQuery | ParsedWrite:
    """Parse one SQL statement.

    SELECTs return a :class:`ParsedQuery` (table + offloadable Query);
    INSERT / UPDATE / DELETE return a :class:`ParsedWrite` for the
    versioned write path.
    """
    if not sql or not sql.strip():
        raise SqlSyntaxError("empty statement")
    return _Parser(sql).parse()


# --------------------------------------------------------------------------
# Bound client-side operators (the lowered DAG suffix)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class BoundEval:
    """Expression projection: output columns are ``items`` exactly."""

    items: tuple[tuple[Expr, str], ...]
    schema: Schema


@dataclass(frozen=True)
class BoundFilter:
    """Row filter over the current intermediate (WHERE residue, HAVING)."""

    predicate: Predicate


@dataclass(frozen=True)
class BoundAggregate:
    """Client-side (grouped) aggregation."""

    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]


@dataclass(frozen=True)
class BoundDistinct:
    """Client-side dedup over every output column."""


@dataclass(frozen=True)
class BoundSort:
    """Deterministic stable sort; keys are ``(column, ascending)``."""

    keys: tuple[tuple[str, bool], ...]


@dataclass(frozen=True)
class BoundLimit:
    count: int


@dataclass(frozen=True)
class BoundArm:
    """One client-side build/probe join stage of the lowered DAG.

    ``query`` is the build side's own offloadable scan (predicate/regex
    pushed down, projected to key + payload) — ``None`` means a raw
    read.  ``probe_key`` names the key in the *current* intermediate.
    """

    build: object                       # catalog handle
    table: str
    query: Optional[Query]
    build_key: str
    probe_key: str
    payload: tuple[str, ...]


@dataclass
class BoundSelect:
    """A fully resolved extended SELECT, ready to execute.

    ``query`` is the head (stage-0) offloadable Query against ``base``;
    ``arms`` chain client-side joins onto its output; ``ops`` are the
    remaining client kernels in execution order; ``schema`` is the final
    output schema.
    """

    base: object                        # catalog handle of the FROM table
    table: str
    query: Query
    arms: tuple[BoundArm, ...]
    ops: tuple[object, ...]
    schema: Schema


def _ordered_add(seq: list, value) -> None:
    if value not in seq:
        seq.append(value)


def bind_select(parsed: ParsedQuery, catalog) -> BoundSelect:
    """Name-resolve and type-check an extended SELECT against the catalog,
    lowering the IR DAG onto the engine (head Query + join arms + client
    kernels).  See the module docstring for the placement rationale."""
    parts = unstack_select(parsed.ir)
    base_name = parts.scan.table
    from_tables = [base_name] + [j.table for j in parts.joins]
    seen: set[str] = set()
    for name in from_tables:
        if name in seen:
            raise SqlSyntaxError(
                f"table {name!r} appears twice in FROM; self-joins are "
                f"not supported")
        seen.add(name)
    handles = {name: catalog.lookup(name) for name in from_tables}
    schemas = {name: handles[name].schema for name in from_tables}

    def owner(col: Col) -> str:
        if col.qualifier is not None:
            if col.qualifier not in handles:
                raise SqlSyntaxError(
                    f"unknown table qualifier {col.qualifier!r}; the "
                    f"query reads {', '.join(repr(t) for t in from_tables)}")
            if col.name not in schemas[col.qualifier].names:
                raise SqlSyntaxError(
                    f"unknown column {col.qualifier}.{col.name}")
            return col.qualifier
        for name in from_tables:
            if col.name in schemas[name].names:
                return name
        raise SqlSyntaxError(f"unknown column {col.name!r}")

    # -- join resolution (pass A): build/probe sides per join ---------------
    joined: list[str] = [base_name]
    join_info: list[dict] = []
    for join in parts.joins:
        build_name = join.table
        lo, ro = owner(join.left), owner(join.right)
        if lo == build_name and ro in joined:
            build_col, probe_col = join.left, join.right
        elif ro == build_name and lo in joined:
            build_col, probe_col = join.right, join.left
        else:
            raise SqlSyntaxError(
                f"join ON must relate one column of {build_name!r} to one "
                f"column of an already-joined table")
        join_info.append({"table": build_name,
                          "build_key": build_col.name,
                          "probe_ref": (owner(probe_col), probe_col.name)})
        joined.append(build_name)

    def canonical(table: str, name: str) -> tuple[str, str]:
        """Map a build key onto the probe column it equals after the
        inner join (the legacy build-key-select rule, chained)."""
        for info in join_info:
            if info["table"] == table and info["build_key"] == name:
                return canonical(*info["probe_ref"])
        return table, name

    def canonical_col(col: Col) -> tuple[str, str]:
        return canonical(owner(col), col.name)

    # -- needed-column analysis (pass B) ------------------------------------
    needed: dict[str, list[str]] = {name: [] for name in from_tables}

    def require(col: Col) -> None:
        table, name = canonical_col(col)
        _ordered_add(needed[table], name)

    if parts.project.star:
        for name in schemas[base_name].names:
            _ordered_add(needed[base_name], name)
        for info in join_info:
            for name in schemas[info["table"]].names:
                if name != info["build_key"]:
                    _ordered_add(needed[info["table"]], name)
    else:
        for expr, _alias in parts.project.items:
            for col in expr_columns(expr):
                require(col)
    if parts.aggregate is not None:
        for col in parts.aggregate.group_by:
            require(col)
    for info in join_info:
        table, name = canonical(*info["probe_ref"])
        _ordered_add(needed[table], name)

    # -- WHERE pushdown: one table per conjunct ------------------------------
    residual, tm = split_regex(parts.condition)
    conj_by_table: dict[str, list[Predicate]] = {n: [] for n in from_tables}
    for term in conjuncts(residual):
        cols = expr_columns(term)
        owners = {owner(col) for col in cols}
        if len(owners) != 1:
            raise SqlSyntaxError(
                "WHERE comparisons must reference exactly one table")
        table = owners.pop()
        conj_by_table[table].append(
            predicate_from_ir(_strip_cmp_qualifiers(term)))
    regex_table: str | None = None
    regex_filter: RegexFilter | None = None
    if tm is not None:
        regex_table = owner(tm.column)
        regex_filter = _textmatch_regex(tm)

    # -- stage-0 eligibility -------------------------------------------------
    # The first join rides the head query's on-chip hash (the legacy
    # offloadable JoinSpec) when its build table carries no pushed-down
    # predicate; any filtered build — and every later join — becomes a
    # client arm whose build read is its own independently placed Query.
    # A later unfiltered join whose build is hash-co-located with the
    # base (both sides partitioned on the join key, matching shard
    # counts) is promoted to stage 0 instead, so the scatter layer can
    # run it shard-local with zero build movement.  Promotion is skipped
    # under SELECT * — reordering joins permutes the star column order.
    def _stage0_ok(idx: int, info: dict) -> bool:
        table = info["table"]
        if bool(conj_by_table[table]) or regex_table == table:
            return False
        probe_tbl, probe_nm = canonical(*info["probe_ref"])
        if probe_tbl != base_name:
            return False
        if idx == 0:
            return True
        return (not parts.project.star
                and colocated_compatible(handles[base_name], handles[table],
                                         probe_nm, info["build_key"]))

    def _colocated(info: dict) -> bool:
        return colocated_compatible(handles[base_name],
                                    handles[info["table"]],
                                    canonical(*info["probe_ref"])[1],
                                    info["build_key"])

    stage0_idx: int | None = None
    for idx, info in enumerate(join_info):
        if _stage0_ok(idx, info):
            stage0_idx = idx
            if _colocated(info):
                break  # co-located beats the legacy (broadcast) pick
    stage0_join: dict | None = None
    arm_infos: list[dict] = []
    for idx, info in enumerate(join_info):
        if idx == stage0_idx:
            stage0_join = info
        else:
            arm_infos.append(info)

    agg = parts.aggregate
    stage0_agg = (agg is not None and not arm_infos
                  and all(a.arg is None or isinstance(a.arg, Col)
                          for a in agg.aggs))

    def payload_for(info: dict) -> tuple[str, ...]:
        table, key = info["table"], info["build_key"]
        schema = schemas[table]
        payload = [n for n in needed[table] if n != key]
        payload = [n for n in schema.names if n in payload]
        if not payload:
            extra = [n for n in schema.names if n != key]
            if not extra:
                raise SqlSyntaxError(
                    f"joined table {table!r} has no columns besides the "
                    f"key {key!r}; nothing to join in")
            payload.append(extra[0])
        return tuple(payload)

    # -- intermediate schema + current-name tracking -------------------------
    colmap: dict[str, dict[str, str]] = {
        base_name: {n: n for n in schemas[base_name].names}}

    def current_name(col: Col) -> str:
        table, name = canonical_col(col)
        return colmap[table][name]

    base_schema = schemas[base_name]
    spec0: JoinSpec | None = None
    if stage0_join is not None:
        payload0 = payload_for(stage0_join)
        probe_tbl, probe_nm = canonical(*stage0_join["probe_ref"])
        spec0 = JoinSpec(handles[stage0_join["table"]],
                         stage0_join["build_key"],
                         colmap[probe_tbl][probe_nm], payload0)
        colmap[stage0_join["table"]] = {
            p: (f"build_{p}" if p in base_schema.names else p)
            for p in payload0}
        inter_schema = join_output_schema(base_schema,
                                          schemas[stage0_join["table"]],
                                          list(payload0))
    else:
        inter_schema = base_schema

    # -- stage-0 (head) query -------------------------------------------------
    predicate0 = _fold_predicates(conj_by_table[base_name])
    regex0 = regex_filter if regex_table == base_name else None
    projection0: tuple[str, ...] | None = None
    if stage0_join is None and not stage0_agg:
        cols0 = [n for n in base_schema.names if n in needed[base_name]]
        if cols0 and len(cols0) < len(base_schema.names):
            projection0 = tuple(cols0)
            inter_schema = base_schema.project(cols0)

    # -- join arms ------------------------------------------------------------
    arms: list[BoundArm] = []
    for info in arm_infos:
        table = info["table"]
        schema = schemas[table]
        payload = payload_for(info)
        predicate = _fold_predicates(conj_by_table[table])
        regex = regex_filter if regex_table == table else None
        query: Query | None = None
        if predicate is not None or regex is not None:
            proj = tuple(n for n in schema.names
                         if n == info["build_key"] or n in payload)
            query = Query(projection=proj, predicate=predicate,
                          regex=regex, label="sql")
            build_schema = schema.project(list(proj))
        else:
            build_schema = schema
        probe_tbl, probe_nm = canonical(*info["probe_ref"])
        probe_key = colmap[probe_tbl][probe_nm]
        colmap[table] = {p: (f"build_{p}" if p in inter_schema.names else p)
                         for p in payload}
        arms.append(BoundArm(build=handles[table], table=table, query=query,
                             build_key=info["build_key"],
                             probe_key=probe_key, payload=payload))
        inter_schema = join_output_schema(inter_schema, build_schema,
                                          list(payload))

    # -- aggregation ----------------------------------------------------------
    ops: list[object] = []
    specs: list[AggregateSpec] = []
    group_names: list[str] = []
    if agg is not None:
        group_names = [current_name(col) for col in agg.group_by]
        if stage0_agg:
            for a in agg.aggs:
                column = "*" if a.arg is None else current_name(a.arg)
                specs.append(AggregateSpec(a.func, column, a.alias))
            if group_names:
                inter_schema = group_output_schema(inter_schema, group_names,
                                                   specs)
            else:
                inter_schema = aggregate_output_schema(inter_schema, specs)
        else:
            derived: list[tuple[Expr, str]] = []
            eval_needed = False
            for i, a in enumerate(agg.aggs):
                if a.arg is None:
                    specs.append(AggregateSpec(a.func, "*", a.alias))
                elif isinstance(a.arg, Col):
                    specs.append(AggregateSpec(a.func, current_name(a.arg),
                                               a.alias))
                else:
                    eval_needed = True
                    name = f"_agg{i}"
                    derived.append((_rebind(a.arg, current_name), name))
                    specs.append(AggregateSpec(a.func, name, a.alias))
            if eval_needed:
                items: list[tuple[Expr, str]] = []
                for name in group_names:
                    _ordered_add(items, (Col(name), name))
                for spec in specs:
                    if (spec.column not in ("*",)
                            and not any(n == spec.column
                                        for _e, n in derived)):
                        _ordered_add(items, (Col(spec.column), spec.column))
                items.extend(derived)
                eval_schema = _eval_schema(items, inter_schema)
                ops.append(BoundEval(tuple(items), eval_schema))
                inter_schema = eval_schema
            ops.append(BoundAggregate(tuple(group_names), tuple(specs)))
            if group_names:
                inter_schema = group_output_schema(inter_schema, group_names,
                                                   specs)
            else:
                inter_schema = aggregate_output_schema(inter_schema, specs)
        if agg.having is not None:
            having = _bind_having(agg.having, agg, specs, group_names,
                                  current_name)
            predicate = predicate_from_ir(having)
            predicate.validate(inter_schema)
            ops.append(BoundFilter(predicate))
    elif not parts.project.star:
        items = []
        for expr, alias in parts.project.items:
            if isinstance(expr, Col):
                out = alias or current_name(expr)
            else:
                if alias is None:
                    raise SqlSyntaxError(
                        "expression select items need an AS alias")
                out = alias
            items.append((_rebind(expr, current_name), out))
        eval_schema = _eval_schema(items, inter_schema)
        ops.append(BoundEval(tuple(items), eval_schema))
        inter_schema = eval_schema

    if parts.distinct:
        ops.append(BoundDistinct())
    if parts.sort is not None:
        keys: list[tuple[str, bool]] = []
        for col, ascending in parts.sort.keys:
            name = _bind_sort_key(col, inter_schema, from_tables, handles,
                                  current_name)
            keys.append((name, ascending))
        ops.append(BoundSort(tuple(keys)))
    if parts.limit is not None:
        ops.append(BoundLimit(parts.limit))

    head = Query(
        projection=projection0,
        predicate=predicate0,
        regex=regex0,
        join=spec0,
        group_by=tuple(group_names) if (stage0_agg and group_names) else None,
        aggregates=tuple(specs) if stage0_agg else (),
        label="sql")
    return BoundSelect(base=handles[base_name], table=base_name, query=head,
                       arms=tuple(arms), ops=tuple(ops), schema=inter_schema)


def _rebind(expr: Expr, current_name) -> Expr:
    """Rewrite every column reference to its bound intermediate name."""
    if isinstance(expr, Col):
        return Col(current_name(expr))
    if isinstance(expr, Arith):
        return Arith(expr.op, _rebind(expr.left, current_name),
                     _rebind(expr.right, current_name))
    if isinstance(expr, Lit):
        return expr
    raise SqlSyntaxError(
        f"cannot use {type(expr).__name__} in a value expression")


def _eval_schema(items: list[tuple[Expr, str]], schema: Schema) -> Schema:
    """Output schema of an expression projection (type-checks arithmetic)."""
    columns: list[Column] = []
    for expr, name in items:
        if isinstance(expr, Col):
            source = schema.column(expr.name)
            columns.append(Column(name, source.kind, source.width))
            continue
        dtype = expr_dtype(expr, schema)
        kind = "float64" if dtype.kind == "f" else "int64"
        columns.append(Column(name, kind, 8))
    return Schema(columns)


def _bind_having(having: Expr, agg: Aggregate, specs, group_names,
                 current_name) -> Expr:
    """Rewrite HAVING aggregate calls onto their output columns."""
    def key_of(call: AggCall):
        arg = call.arg
        if isinstance(arg, Col):
            arg = Col(current_name(arg))
        elif arg is not None:
            arg = _rebind(arg, current_name)
        return (call.func, arg)

    by_key = {}
    for a, spec in zip(agg.aggs, specs):
        by_key[key_of(a)] = spec.alias

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, AggCall):
            alias = by_key.get(key_of(expr))
            if alias is None:
                raise SqlSyntaxError(
                    "HAVING aggregates must also appear in the select "
                    "list")
            return Col(alias)
        if isinstance(expr, Col):
            name = current_name(expr)
            if name not in group_names:
                raise SqlSyntaxError(
                    f"HAVING column {expr.name!r} must be a GROUP BY "
                    f"column")
            return Col(name)
        if isinstance(expr, Cmp):
            return Cmp(expr.op, rewrite(expr.left), expr.right)
        if isinstance(expr, BoolAnd):
            return BoolAnd(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, BoolOr):
            return BoolOr(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, BoolNot):
            return BoolNot(rewrite(expr.operand))
        return expr

    return rewrite(having)


def _bind_sort_key(col: Col, schema: Schema, from_tables, handles,
                   current_name) -> str:
    """ORDER BY keys bind against the output schema (select aliases or
    selected column names)."""
    if col.qualifier is None and col.name in schema.names:
        return col.name
    try:
        name = current_name(col)
    except (SqlSyntaxError, KeyError):
        name = None
    if name is not None and name in schema.names:
        return name
    raise SqlSyntaxError(
        f"ORDER BY column {col.name!r} must appear in the select list")
