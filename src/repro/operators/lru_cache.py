"""Shift-register LRU cache hiding hash-table latency (paper §5.4).

The distinct/group-by hash table is pipelined: an update issued for tuple i
is not visible when tuple i+1 (or i+k, for pipeline depth k) performs its
lookup, creating a data hazard — two equal back-to-back keys would both be
reported as "new".  The paper hides the hazard with a small true-LRU cache
"implemented with a shift register, which adds a negligible latency to the
data streams (the amount depends on the number of cuckoo hash tables)".

We model exactly that: a fixed-depth shift register of recent keys.  A hit
anywhere promotes the key to the front (true LRU); insertion shifts the
oldest key out.  Capacity = depth per cuckoo way x number of ways, as the
hardware sizes it to cover the table lookup latency.
"""

from __future__ import annotations

from ..common.errors import OperatorError


class ShiftRegisterLru:
    """Fixed-capacity true-LRU over byte keys, shift-register semantics."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise OperatorError(f"LRU depth must be positive: {depth}")
        self.depth = depth
        self._slots: list[bytes | None] = [None] * depth
        self.hits = 0
        self.misses = 0

    def lookup(self, key: bytes) -> bool:
        """True if ``key`` is resident; promotes it to most-recent."""
        for i, resident in enumerate(self._slots):
            if resident == key:
                # Promote: shift everything before i down by one.
                del self._slots[i]
                self._slots.insert(0, key)
                self.hits += 1
                return True
        self.misses += 1
        return False

    def insert(self, key: bytes) -> None:
        """Push ``key`` in front; the oldest entry falls off the end."""
        self._slots.insert(0, key)
        self._slots.pop()

    def lookup_or_insert(self, key: bytes) -> bool:
        """Combined probe+insert as the hardware does in one pass."""
        if self.lookup(key):
            return True
        self.insert(key)
        return False

    @property
    def resident(self) -> list[bytes]:
        return [k for k in self._slots if k is not None]

    def __contains__(self, key: bytes) -> bool:
        return key in self._slots

    def __repr__(self) -> str:
        return f"ShiftRegisterLru(depth={self.depth}, live={len(self.resident)})"
