"""LCPU baseline: local buffer cache, processing on the local CPU (§6.1).

"a buffer cache implemented in local (client) memory, where the processing
is done on the local CPU."  The query thread streams the base table from
DRAM (cold cache — the paper stresses LCPU "has to read the data from DRAM
and not from cache, and also write it back", §6.4), applies the operator
in software, and materializes the result back to memory.

Every method returns ``(result, time_ns, breakdown)`` — the result is
computed for real, the time comes from :class:`CpuCostModel`.
"""

from __future__ import annotations

import numpy as np

from ..common.records import Schema
from ..operators.aggregate import AggregateSpec
from ..operators.selection import Predicate
from .cpu_model import CostBreakdown, CpuCostModel
from .sw_ops import (
    software_decrypt,
    software_distinct,
    software_groupby,
    software_regex,
    software_select,
)


class LcpuBaseline:
    """Local CPU query execution over a local buffer cache."""

    def __init__(self, model: CpuCostModel | None = None):
        self.model = model if model is not None else CpuCostModel()

    # -- selection (Figure 8) -----------------------------------------------------
    def select(self, schema: Schema, rows: np.ndarray,
               predicate: Predicate):
        table_bytes = len(rows) * schema.row_width
        result = software_select(rows, predicate)
        out_bytes = len(result) * schema.row_width
        cost = CostBreakdown()
        cost.add("setup", self.model.setup_ns())
        cost.add("read", self.model.read_ns(table_bytes))
        cost.add("predicate", self.model.select_ns(len(rows)))
        cost.add("write", self.model.write_ns(out_bytes))
        return result, cost.total_ns, cost

    # -- distinct (Figure 9a) ------------------------------------------------------
    def distinct(self, schema: Schema, rows: np.ndarray,
                 key_columns: list[str]):
        table_bytes = len(rows) * schema.row_width
        output = software_distinct(rows, schema, key_columns)
        out_bytes = len(output.rows) * schema.row_width
        cost = CostBreakdown()
        cost.add("setup", self.model.setup_ns())
        cost.add("read", self.model.read_ns(table_bytes))
        cost.add("hash", self.model.hash_ns(len(rows),
                                            growing=output.map_resizes > 0))
        cost.add("write", self.model.write_ns(out_bytes))
        return output.rows, cost.total_ns, cost

    # -- group by (Figure 9b,c) -------------------------------------------------------
    def group_by(self, schema: Schema, rows: np.ndarray,
                 key_columns: list[str], aggregates: list[AggregateSpec]):
        table_bytes = len(rows) * schema.row_width
        output = software_groupby(rows, schema, key_columns, aggregates)
        out_bytes = len(output.rows) * output.rows.dtype.itemsize
        cost = CostBreakdown()
        cost.add("setup", self.model.setup_ns())
        cost.add("read", self.model.read_ns(table_bytes))
        cost.add("hash", self.model.hash_ns(len(rows),
                                            growing=output.map_resizes > 0))
        cost.add("aggregate", self.model.aggregate_update_ns(len(rows)))
        cost.add("write", self.model.write_ns(out_bytes))
        return output.rows, cost.total_ns, cost

    # -- regex (Figure 10) ----------------------------------------------------------------
    def regex(self, schema: Schema, rows: np.ndarray, column: str,
              pattern: str):
        table_bytes = len(rows) * schema.row_width
        result = software_regex(rows, column, pattern)
        out_bytes = len(result) * schema.row_width
        string_bytes = len(rows) * schema.column(column).width
        cost = CostBreakdown()
        cost.add("setup", self.model.setup_ns())
        cost.add("read", self.model.read_ns(table_bytes))
        cost.add("re2", self.model.regex_ns(string_bytes))
        cost.add("write", self.model.write_ns(out_bytes))
        return result, cost.total_ns, cost

    # -- decryption (Figure 11a) --------------------------------------------------------------
    def decrypt(self, schema: Schema, image: bytes, key: bytes,
                nonce: bytes):
        plain = software_decrypt(image, key, nonce)
        rows = schema.from_bytes(plain)
        cost = CostBreakdown()
        cost.add("setup", self.model.setup_ns())
        cost.add("read", self.model.read_ns(len(image)))
        cost.add("aes", self.model.aes_ns(len(image)))
        cost.add("write", self.model.write_ns(len(image)))
        return rows, cost.total_ns, cost
