"""Memory stack: DRAM channels, striped allocation, MMU, buffer pool (§4.4)."""

from .allocator import PageFrames, StripedAllocator
from .buffer_pool import (
    BufferPool,
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    StorageBackend,
)
from .dram import DramChannel, build_channels
from .mmu import Mmu, Tlb

__all__ = [
    "PageFrames",
    "StripedAllocator",
    "BufferPool",
    "ClockPolicy",
    "FifoPolicy",
    "LruPolicy",
    "StorageBackend",
    "DramChannel",
    "build_channels",
    "Mmu",
    "Tlb",
]
