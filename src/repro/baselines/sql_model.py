"""Serial reference model for compiled SQL — the differential oracle.

``execute_model`` re-runs a SELECT statement on plain numpy arrays with
naive serial kernels: python row loops, dict-based hash joins, stdlib
``re`` for LIKE/REGEXP, first-seen dict grouping, and python's stable
sorts.  It shares the compiler *front end* (``parse_sql`` +
``bind_select`` name resolution, so column renaming and output schemas
agree by construction) but none of the execution machinery — no
simulator, no operator chains, no cluster scatter/gather, no
``sw_ops`` kernels.  The mini-TPC-H conformance suite and
``fig18_minitpch`` pin every engine result's sha256 against this model.

Bit-exactness contract (what makes a sha comparison meaningful):

* Grouped sums accumulate sequentially in global row order as python
  floats — IEEE-identical to the engine's per-group sequential
  accumulator.
* Ungrouped sums use ``np.sum`` (pairwise summation), matching the
  engine's whole-column batch accumulation.
* Sort is a stable last-to-first multi-key pass; python's
  ``reverse=True`` preserves the order of equal keys, matching the
  engine's negated-rank stable argsort.  Sort keys must be numeric
  (char-column ordering is not modeled).
"""

from __future__ import annotations

import hashlib
import re

import numpy as np

from ..common.errors import OperatorError
from ..common.records import Schema
from ..core.compile import (BoundAggregate, BoundDistinct, BoundEval,
                            BoundFilter, BoundLimit, BoundSort, ParsedWrite,
                            bind_select, parse_sql)
from ..core.ir import Arith, Col, Lit
from ..operators.join import join_output_schema
from ..operators.selection import And, Compare, Not, Or

__all__ = ["execute_model", "model_sha256"]


class _Handle:
    """Catalog stand-in: just a name and a schema for ``bind_select``."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema


class _Catalog:
    def __init__(self, tables: dict):
        self._tables = tables

    def lookup(self, name: str) -> _Handle:
        if name not in self._tables:
            raise OperatorError(
                f"reference model has no table {name!r}; known: "
                f"{sorted(self._tables)}")
        return _Handle(name, self._tables[name][0])


# -- scalar evaluation ---------------------------------------------------------

def _pred_row(pred, row) -> bool:
    if isinstance(pred, Compare):
        value = pred.value
        if isinstance(value, str):
            value = value.encode()
        x = row[pred.column]
        if pred.op == "<":
            return bool(x < value)
        if pred.op == "<=":
            return bool(x <= value)
        if pred.op == ">":
            return bool(x > value)
        if pred.op == ">=":
            return bool(x >= value)
        if pred.op == "==":
            return bool(x == value)
        if pred.op == "!=":
            return bool(x != value)
        raise OperatorError(f"unknown comparison {pred.op!r}")
    if isinstance(pred, And):
        return _pred_row(pred.left, row) and _pred_row(pred.right, row)
    if isinstance(pred, Or):
        return _pred_row(pred.left, row) or _pred_row(pred.right, row)
    if isinstance(pred, Not):
        return not _pred_row(pred.inner, row)
    raise OperatorError(f"unknown predicate node {type(pred).__name__}")


def _eval_scalar(expr, row):
    """Evaluate one expression on one row with python arithmetic.

    Mirrors the engine's vectorized promotion rule: ``/`` always in
    float64, other operators in float when either side is float, else
    exact integers.
    """
    if isinstance(expr, Col):
        return row[expr.name]
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Arith):
        left = _eval_scalar(expr.left, row)
        right = _eval_scalar(expr.right, row)
        if expr.op == "/":
            return float(left) / float(right)
        is_float = any(isinstance(v, (float, np.floating))
                       for v in (left, right))
        if is_float:
            left, right = float(left), float(right)
        else:
            left, right = int(left), int(right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise OperatorError(f"unknown arithmetic op {expr.op!r}")
    raise OperatorError(f"unknown expression node {type(expr).__name__}")


def _mask(rows: np.ndarray, keep: list) -> np.ndarray:
    return rows[np.asarray(keep, dtype=bool)] if len(rows) else rows


# -- naive relational kernels --------------------------------------------------

def _dict_join(schema: Schema, rows: np.ndarray,
               build_schema: Schema, build_rows: np.ndarray,
               build_key: str, probe_key: str,
               payload: list[str]) -> tuple[Schema, np.ndarray]:
    """Inner join through a python dict keyed on the serialized key image;
    unique build keys, probe-order output, payload collision renaming."""
    table: dict[bytes, int] = {}
    bkeys = build_rows[build_key]
    for i in range(len(build_rows)):
        key = bkeys[i].tobytes()
        if key in table:
            raise OperatorError(
                f"duplicate build key at row {i}: the small table must "
                f"have unique join keys")
        table[key] = i
    out_schema = join_output_schema(schema, build_schema, payload)
    probe_idx: list[int] = []
    build_idx: list[int] = []
    pkeys = rows[probe_key]
    for i in range(len(rows)):
        j = table.get(pkeys[i].tobytes())
        if j is not None:
            probe_idx.append(i)
            build_idx.append(j)
    out = out_schema.empty(len(probe_idx))
    payload_names = list(out_schema.names[len(schema.names):])
    for name in schema.names:
        out[name] = rows[name][probe_idx] if probe_idx else out[name]
    for out_name, src_name in zip(payload_names, payload):
        out[out_name] = (build_rows[src_name][build_idx]
                         if build_idx else out[out_name])
    return out_schema, out


def _distinct(schema: Schema, rows: np.ndarray,
              key_columns: list[str]) -> np.ndarray:
    seen: set[tuple] = set()
    keep: list[bool] = []
    for i in range(len(rows)):
        key = tuple(rows[name][i].tobytes() for name in key_columns)
        keep.append(key not in seen)
        seen.add(key)
    return _mask(rows, keep)


def _aggregate(schema: Schema, rows: np.ndarray, group_by: list[str],
               aggregates: list) -> tuple[Schema, np.ndarray]:
    value_columns = sorted({s.column for s in aggregates
                            if not (s.func == "count" and s.column == "*")})
    if not group_by:
        out_schema = Schema([s.output_column(schema) for s in aggregates])
        if len(rows) == 0:
            return out_schema, out_schema.empty(0)
        out = out_schema.empty(1)
        for spec in aggregates:
            if spec.func == "count":
                out[spec.alias][0] = len(rows)
                continue
            col = rows[spec.column]
            if spec.func == "sum":
                out[spec.alias][0] = float(np.sum(col))
            elif spec.func == "avg":
                out[spec.alias][0] = float(np.sum(col)) / len(rows)
            elif spec.func == "min":
                out[spec.alias][0] = col.min()
            else:
                out[spec.alias][0] = col.max()
        return out_schema, out
    out_schema = Schema([schema.column(k) for k in group_by]
                        + [s.output_column(schema) for s in aggregates])
    order: list[tuple] = []
    first_row: dict[tuple, int] = {}
    state: dict[tuple, dict] = {}
    for i in range(len(rows)):
        key = tuple(rows[name][i].tobytes() for name in group_by)
        st = state.get(key)
        if st is None:
            st = {"count": 0, "sums": [0.0] * len(value_columns),
                  "mins": [None] * len(value_columns),
                  "maxs": [None] * len(value_columns)}
            state[key] = st
            first_row[key] = i
            order.append(key)
        st["count"] += 1
        for j, name in enumerate(value_columns):
            v = float(rows[name][i])
            st["sums"][j] += v
            if st["mins"][j] is None or v < st["mins"][j]:
                st["mins"][j] = v
            if st["maxs"][j] is None or v > st["maxs"][j]:
                st["maxs"][j] = v
    out = out_schema.empty(len(order))
    for i, key in enumerate(order):
        st = state[key]
        src = first_row[key]
        for name in group_by:
            out[name][i] = rows[name][src]
        for spec in aggregates:
            j = (value_columns.index(spec.column)
                 if spec.column in value_columns else 0)
            if spec.func == "count":
                out[spec.alias][i] = st["count"]
            elif spec.func == "sum":
                out[spec.alias][i] = st["sums"][j]
            elif spec.func == "avg":
                out[spec.alias][i] = st["sums"][j] / st["count"]
            elif spec.func == "min":
                out[spec.alias][i] = st["mins"][j]
            else:
                out[spec.alias][i] = st["maxs"][j]
    return out_schema, out


def _sort(rows: np.ndarray, keys: list[tuple[str, bool]]) -> np.ndarray:
    if len(rows) == 0:
        return rows
    idx = list(range(len(rows)))
    for name, ascending in reversed(keys):
        col = rows[name]
        idx.sort(key=lambda i: col[i], reverse=not ascending)
    return rows[idx]


def _run_query(query, schema: Schema, rows: np.ndarray,
               tables: dict) -> tuple[Schema, np.ndarray]:
    """Re-execute one offloadable chain in the engine's fixed operator
    order: regex -> selection -> join -> projection -> distinct |
    group-by | aggregate."""
    if query.regex is not None:
        pattern = re.compile(query.regex.pattern.encode(), re.DOTALL)
        values = rows[query.regex.column]
        rows = _mask(rows, [pattern.search(bytes(values[i])) is not None
                            for i in range(len(rows))])
    if query.predicate is not None:
        rows = _mask(rows, [_pred_row(query.predicate, rows[i])
                            for i in range(len(rows))])
    if query.join is not None:
        # ``build_table`` is the bound catalog handle, not a bare name.
        build_schema, build_rows = tables[query.join.build_table.name]
        schema, rows = _dict_join(schema, rows, build_schema, build_rows,
                                  query.join.build_key, query.join.probe_key,
                                  list(query.join.payload))
    if query.projection is not None:
        out_schema = schema.project(list(query.projection))
        out = out_schema.empty(len(rows))
        for name in query.projection:
            out[name] = rows[name]
        schema, rows = out_schema, out
    if query.distinct:
        keys = list(query.distinct_columns or schema.names)
        rows = _distinct(schema, rows, keys)
    if query.group_by is not None or query.aggregates:
        schema, rows = _aggregate(schema, rows,
                                  list(query.group_by or ()),
                                  list(query.aggregates))
    return schema, rows


# -- entry points --------------------------------------------------------------

def execute_model(statement: str, tables: dict
                  ) -> tuple[Schema, np.ndarray]:
    """Run one SELECT against ``tables`` (``{name: (schema, rows)}``).

    Returns ``(schema, rows)`` — the exact bytes the engine must
    produce on every placement and cluster size.
    """
    parsed = parse_sql(statement)
    if isinstance(parsed, ParsedWrite):
        raise OperatorError("the reference model only executes SELECT")
    bound = bind_select(parsed, _Catalog(tables))
    schema = tables[bound.table][0]
    rows = tables[bound.table][1]
    schema, rows = _run_query(bound.query, schema, rows, tables)
    for arm in bound.arms:
        build_schema, build_rows = tables[arm.table]
        if arm.query is not None:
            build_schema, build_rows = _run_query(
                arm.query, build_schema, build_rows, tables)
        schema, rows = _dict_join(schema, rows, build_schema, build_rows,
                                  arm.build_key, arm.probe_key,
                                  list(arm.payload))
    for op in bound.ops:
        if isinstance(op, BoundEval):
            out = op.schema.empty(len(rows))
            for expr, name in op.items:
                col = out[name]
                for i in range(len(rows)):
                    col[i] = _eval_scalar(expr, rows[i])
            schema, rows = op.schema, out
        elif isinstance(op, BoundFilter):
            rows = _mask(rows, [_pred_row(op.predicate, rows[i])
                                for i in range(len(rows))])
        elif isinstance(op, BoundAggregate):
            schema, rows = _aggregate(schema, rows, list(op.group_by),
                                      list(op.aggregates))
        elif isinstance(op, BoundDistinct):
            rows = _distinct(schema, rows, list(schema.names))
        elif isinstance(op, BoundSort):
            rows = _sort(rows, list(op.keys))
        elif isinstance(op, BoundLimit):
            rows = rows[:op.count]
        else:
            raise OperatorError(f"unknown bound op {type(op).__name__}")
    return schema, rows


def model_sha256(statement: str, tables: dict) -> str:
    """sha256 of the model's canonical result bytes for ``statement``."""
    schema, rows = execute_model(statement, tables)
    return hashlib.sha256(schema.to_bytes(rows)).hexdigest()
