"""RDMA packets and packetization (paper §4.3).

The network stack processes requests "at the granularity of single network
packets" with out-of-order execution and credit-based flow control.  We
model packets explicitly: every transfer is chopped into payload chunks of
the configured packet size (1 kB in the paper's evaluation), each carrying
RoCE v2 framing overhead on the wire.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..common.errors import NetworkError

_packet_ids = itertools.count()


class Verb(enum.Enum):
    """RDMA operation kinds, including Farview's extra one-sided verb."""

    READ = "read"             # one-sided RDMA read
    WRITE = "write"           # one-sided RDMA write
    FARVIEW = "farview"       # paper §4.2: operator-invoking one-sided verb
    READ_RESPONSE = "read_response"
    ACK = "ack"


@dataclass(frozen=True)
class Packet:
    """One network packet: framing metadata plus (simulated) payload bytes."""

    verb: Verb
    qp_id: int
    psn: int                     # packet sequence number within the message
    payload: bytes = b""
    last: bool = False           # marks the final packet of a message
    params: tuple = ()           # operator parameters for FARVIEW requests
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def payload_size(self) -> int:
        return len(self.payload)


#: Wire size of a request/ack packet that carries no payload: headers plus
#: the verb-specific parameter block (vaddr, length, operator params).
CONTROL_PACKET_BYTES = 64


def split_lengths(total: int, packet_size: int) -> list[int]:
    """Split ``total`` payload bytes into per-packet payload lengths."""
    if total < 0:
        raise NetworkError(f"negative payload size: {total}")
    if packet_size <= 0:
        raise NetworkError(f"packet size must be positive: {packet_size}")
    if total == 0:
        return []
    full, rem = divmod(total, packet_size)
    lengths = [packet_size] * full
    if rem:
        lengths.append(rem)
    return lengths


def packetize(verb: Verb, qp_id: int, payload: bytes,
              packet_size: int) -> list[Packet]:
    """Chop ``payload`` into a sequence of packets (PSN-ordered)."""
    lengths = split_lengths(len(payload), packet_size)
    if not lengths:
        return [Packet(verb, qp_id, psn=0, payload=b"", last=True)]
    packets = []
    offset = 0
    for psn, length in enumerate(lengths):
        chunk = payload[offset:offset + length]
        packets.append(Packet(verb, qp_id, psn=psn, payload=chunk,
                              last=(psn == len(lengths) - 1)))
        offset += length
    return packets


def reassemble(packets: list[Packet]) -> bytes:
    """Rebuild a message payload from (possibly out-of-order) packets."""
    if not packets:
        return b""
    qp_ids = {p.qp_id for p in packets}
    if len(qp_ids) != 1:
        raise NetworkError(f"packets from multiple QPs: {sorted(qp_ids)}")
    ordered = sorted(packets, key=lambda p: p.psn)
    psns = [p.psn for p in ordered]
    if psns != list(range(len(ordered))):
        raise NetworkError(f"missing or duplicate PSNs: {psns}")
    if not ordered[-1].last:
        raise NetworkError("message incomplete: final packet missing")
    return b"".join(p.payload for p in ordered)
