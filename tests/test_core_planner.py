"""Cost-based placement planner: golden crossovers, exactness, explain.

Three layers of guarantees:

* **Golden crossover pins** — the analytic cost model is deterministic,
  so the offload/ship decision at fixed inputs is pinned exactly for
  selection and DISTINCT (the fig14 scenario: cold small regions).
* **Exactness property** — whatever the planner picks, result bytes are
  sha256-identical to full offload (hypothesis-driven over query shape,
  selectivity, widths and placements; integer columns, where the
  contract is bit-exact).
* **Observability** — ExplainPlan carries every candidate, the chosen
  per-operator placement, and estimated vs actual ns within sanity
  bounds; lease contention and warm regions flip decisions the way the
  docs promise.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import calibration as cal
from repro.common.config import (FarviewConfig, MemoryConfig,
                                 OperatorStackConfig)
from repro.common.units import MB
from repro.core.api import FarviewClient, canonical_result_bytes
from repro.core.cost_model import PlanStats
from repro.core.node import FarviewNode
from repro.core.planner import build_fragment, operator_chain, plan_placement
from repro.core.query import Query, select_distinct, select_star
from repro.core.table import FTable
from repro.operators.aggregate import AggregateSpec
from repro.operators.selection import Compare
from repro.sim.engine import Simulator
from repro.workloads.generator import (distinct_workload, projection_workload,
                                       selection_workload)

#: The fig14 ad-hoc scenario: small selection-only regions (6% of a full
#: region swap), experiment-sized memory.
SCENARIO = FarviewConfig(
    memory=MemoryConfig(channels=2, channel_capacity=64 * MB),
    operator_stack=OperatorStackConfig(
        reconfiguration_ns=cal.reconfiguration_latency_ns(0.06)))


def _table(schema, nrows, name="S"):
    return FTable(name, schema, nrows)


def _plan_selection(selectivity: float, width: int, table_mb: float = 1.0):
    nrows = int(table_mb * MB) // width
    schema, _ = projection_workload(8, width)  # schema only; rows unused
    query = Query(predicate=Compare("a", "<", 1), label="golden")
    return plan_placement(query, _table(schema, nrows), SCENARIO,
                          placement="auto",
                          stats=PlanStats(selectivity=selectivity))


class TestGoldenCrossovers:
    """Pinned decisions of the deterministic cost model (fig14 scenario)."""

    def test_selection_crossover_64B(self):
        # 64 B tuples, 1 MB, cold region: ship wins the selective half,
        # offload wins once egress reduction stops paying for the
        # reconfiguration; the crossover sits between 0.50 and 0.75.
        decisions = {sel: _plan_selection(sel, 64).explain.chosen
                     for sel in (0.02, 0.1, 0.25, 0.5, 0.75, 1.0)}
        assert decisions == {0.02: "ship", 0.1: "ship", 0.25: "ship",
                             0.5: "ship", 0.75: "offload", 1.0: "offload"}

    def test_selection_crossover_moves_with_width(self):
        # Wider tuples -> fewer tuples -> cheaper client software -> the
        # ship region extends to higher selectivities.
        assert _plan_selection(0.75, 64).explain.chosen == "offload"
        assert _plan_selection(0.75, 512).explain.chosen == "ship"

    def test_selection_tiny_table_ships(self):
        # A 64 kB table cannot amortize the reconfiguration at all.
        for sel in (0.02, 0.5, 1.0):
            plan = _plan_selection(sel, 64, table_mb=1 / 16)
            assert plan.explain.chosen == "ship", sel

    def test_distinct_crossover_512B(self):
        # DISTINCT over 512 B tuples, 1 MB, cold region: the unique
        # fraction drives shipped bytes; crossover between 0.50 and 0.75.
        wide_schema, _ = projection_workload(8, 512)
        query = Query(projection=tuple(wide_schema.names),
                      distinct=True, label="golden-distinct")
        decisions = {}
        for ratio in (0.02, 0.1, 0.25, 0.5, 0.75, 1.0):
            plan = plan_placement(
                query, _table(wide_schema, MB // 512), SCENARIO,
                placement="auto", stats=PlanStats(distinct_ratio=ratio))
            decisions[ratio] = plan.explain.chosen
        assert decisions == {0.02: "ship", 0.1: "ship", 0.25: "ship",
                             0.5: "ship", 0.75: "offload", 1.0: "offload"}

    def test_distinct_narrow_tuples_offload(self):
        # 64 B tuples: per-tuple client hashing dominates; offload wins
        # even at the selective end despite the cold region.
        schema, _ = distinct_workload(8, 8)
        query = select_distinct(["a"])
        for ratio in (0.02, 0.5, 1.0):
            plan = plan_placement(
                query, _table(schema, MB // schema.row_width), SCENARIO,
                placement="auto", stats=PlanStats(distinct_ratio=ratio))
            assert plan.explain.chosen == "offload", ratio

    def test_warm_region_always_offloads(self):
        # With the query's pipeline already resident there is no setup
        # charge and Farview wins everywhere (Figures 8-12).
        for sel in (0.02, 0.5, 1.0):
            nrows = MB // 64
            schema, _ = projection_workload(8, 64)
            query = Query(predicate=Compare("a", "<", 1), label="golden")
            plan = plan_placement(query, _table(schema, nrows), SCENARIO,
                                  placement="auto",
                                  stats=PlanStats(selectivity=sel),
                                  loaded_signature=query.signature)
            assert plan.explain.chosen == "offload", sel


class TestChainAndFragments:
    def test_operator_chain_order(self):
        query = Query(projection=("a",), predicate=Compare("a", "<", 1),
                      distinct=True, label="t")
        assert operator_chain(query) == ["selection", "projection",
                                         "distinct"]

    def test_full_split_is_identity(self):
        query = select_star(Compare("a", "<", 1))
        chain = operator_chain(query)
        assert build_fragment(query, chain, len(chain)) is query
        assert build_fragment(query, chain, 0) is None

    def test_prefix_fragments_validate(self):
        query = Query(projection=("a", "b"),
                      predicate=Compare("a", "<", 1),
                      group_by=("a",),
                      aggregates=(AggregateSpec("sum", "b"),),
                      label="t")
        chain = operator_chain(query)
        schema, _ = projection_workload(8, 64)
        for k in range(len(chain) + 1):
            fragment = build_fragment(query, chain, k)
            if fragment is not None:
                fragment.validate(schema)  # no QueryError

    def test_join_is_splittable(self):
        """Joins sit in the chain after selection and ship cleanly now
        that :func:`~repro.baselines.sw_ops.software_join` exists."""
        from repro.core.query import JoinSpec

        schema, _ = projection_workload(8, 64)
        build = _table(schema, 8, name="dim")
        query = Query(predicate=Compare("a", "<", 1),
                      join=JoinSpec(build, "a", "a", ("b",)), label="t")
        assert operator_chain(query) == ["selection", "join"]
        fragment = build_fragment(query, operator_chain(query), 1)
        assert fragment.join is None and fragment.predicate is not None
        plan = plan_placement(query, _table(schema, 1024), SCENARIO,
                              placement="ship")
        assert plan.fragment is None and "join" in plan.client_steps

    def test_join_build_overflow_refuses_offload_but_auto_ships(self):
        """An oversized build side is a typed refusal on the offload
        side; auto placement routes the join to the client instead."""
        from repro.common.config import OperatorStackConfig
        from repro.common.errors import JoinBuildOverflowError
        from repro.core.query import JoinSpec

        tiny = FarviewConfig(
            memory=SCENARIO.memory,
            operator_stack=OperatorStackConfig(cuckoo_slots=4,
                                               cuckoo_tables=1))
        schema, _ = projection_workload(8, 64)
        build = _table(schema, 64, name="dim")
        query = Query(join=JoinSpec(build, "a", "a", ("b",)), label="t")
        with pytest.raises(JoinBuildOverflowError):
            plan_placement(query, _table(schema, 1024), tiny,
                           placement="offload")
        plan = plan_placement(query, _table(schema, 1024), tiny,
                              placement="auto")
        assert "join" in plan.client_steps


class TestLeaseContention:
    class _BusyManager:
        """A saturated single-node pool: no free regions, deep queue."""
        free_regions = 0
        queued = 50

        def __init__(self, nodes):
            self.nodes = nodes

    def test_contention_flips_warm_offload_to_ship(self):
        nrows = MB // 64
        schema, _ = projection_workload(8, 64)
        query = Query(predicate=Compare("a", "<", 1), label="t")
        sim = Simulator()
        node = FarviewNode(sim, SCENARIO)
        warm = plan_placement(query, _table(schema, nrows), SCENARIO,
                              placement="auto",
                              stats=PlanStats(selectivity=0.5),
                              loaded_signature=query.signature)
        assert warm.explain.chosen == "offload"
        contended = plan_placement(
            query, _table(schema, nrows), SCENARIO, placement="auto",
            stats=PlanStats(selectivity=0.5),
            loaded_signature=query.signature,
            lease_manager=self._BusyManager([node]))
        assert contended.explain.chosen == "ship"


# ---------------------------------------------------------------------------
# Execution: exactness and explain
# ---------------------------------------------------------------------------

def _bench(buffer_capacity=2 * MB):
    sim = Simulator()
    node = FarviewNode(sim, SCENARIO)
    client = FarviewClient(node, buffer_capacity=buffer_capacity)
    client.open_connection()
    return client


def _digest(result) -> str:
    return hashlib.sha256(canonical_result_bytes(result)).hexdigest()


@settings(max_examples=15, deadline=None)
@given(
    selectivity=st.sampled_from([0.0, 0.1, 0.5, 0.9, 1.0]),
    nrows=st.sampled_from([1, 7, 64, 257]),
    shape=st.sampled_from(["select", "select_proj", "distinct",
                           "groupby", "aggregate"]),
    placement=st.sampled_from(["auto", "ship"]),
)
def test_placement_never_changes_bytes(selectivity, nrows, shape, placement):
    """Property: auto/ship results are sha256-identical to full offload.

    Group-by sums stay bit-exact even over the float column because the
    hardware operator and the software kernel accumulate per-row in the
    same stream order; the standalone-aggregate shape sticks to
    order-insensitive functions (min/max/count), since its offloaded
    block accumulates per-batch.
    """
    wl = selection_workload(nrows, selectivity, seed=nrows)
    if shape == "select":
        query = Query(predicate=wl.predicate, label="p")
    elif shape == "select_proj":
        query = Query(projection=("a", "b"), predicate=None, label="p")
    elif shape == "distinct":
        query = Query(projection=("a",), distinct=True, label="p")
    elif shape == "groupby":
        query = Query(group_by=("a",),
                      aggregates=(AggregateSpec("sum", "b"),
                                  AggregateSpec("count", "*")),
                      label="p")
    else:
        query = Query(aggregates=(AggregateSpec("min", "a"),
                                  AggregateSpec("max", "b"),
                                  AggregateSpec("count", "*")),
                      label="p")
    rows = wl.rows
    digests = {}
    for mode in ("offload", placement):
        client = _bench()
        table = FTable("S", wl.schema, nrows)
        client.alloc_table_mem(table)
        client.table_write(table, rows)
        result, _ = client.far_view_planned(table, query, placement=mode,
                                            stats=PlanStats(
                                                selectivity=selectivity))
        digests[mode] = _digest(result)
    assert digests[placement] == digests["offload"]


def test_groupby_hybrid_split_matches_offload():
    """Force the mid-chain split (selection offloaded, group-by on the
    client) and pin byte-equality plus the hybrid explain shape."""
    wl = selection_workload(512, 0.5, seed=3)
    query = Query(predicate=wl.predicate, group_by=("a",),
                  aggregates=(AggregateSpec("sum", "b"),), label="h")

    client = _bench()
    table = FTable("S", wl.schema, 512)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    offload_result, _ = client.far_view_planned(table, query,
                                                placement="offload")

    client2 = _bench()
    table2 = FTable("S", wl.schema, 512)
    client2.alloc_table_mem(table2)
    client2.table_write(table2, wl.rows)
    plan = client2.plan(table2, query)
    fragment = build_fragment(query, plan.chain, 1)  # selection only
    from repro.baselines.cpu_model import CostBreakdown, CpuCostModel
    from repro.core.planner import run_client_steps

    frag_result, _ = client2.far_view(table2, fragment)
    cost = CostBreakdown()
    rows, schema = run_client_steps(frag_result.rows(), frag_result.schema,
                                    ["groupby"], query, CpuCostModel(),
                                    cost)
    assert schema.to_bytes(rows) == canonical_result_bytes(offload_result)
    assert cost.total_ns > 0


def test_explain_plan_estimates_and_actuals():
    wl = selection_workload(4096, 0.5, seed=5)
    client = _bench()
    table = FTable("S", wl.schema, 4096)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    result, elapsed = client.far_view_planned(
        table, Query(predicate=wl.predicate, label="e"), placement="auto",
        stats=PlanStats(selectivity=wl.actual_selectivity))
    explain = result.explain
    assert explain is not None
    assert explain.actual_ns == pytest.approx(elapsed)
    assert {c.label for c in explain.candidates} >= {"offload", "ship"}
    assert explain.placements  # one entry per chain operator
    # The estimate must be in the right ballpark of the measurement
    # (the model aims at picking the right side, not ns-exactness).
    assert explain.est_chosen_ns == pytest.approx(elapsed, rel=0.35)
    rendered = explain.render()
    assert "Placement plan" in rendered and "actual" in rendered


def test_sql_placement_hint_routes_through_planner():
    from repro.workloads.generator import make_rows

    client = _bench()
    schema, _ = projection_workload(8, 64)
    rows = make_rows(schema, 1024, seed=9)
    table = FTable("demo", schema, 1024)
    client.alloc_table_mem(table)
    client.table_write(table, rows)
    result, _ = client.sql(
        "/*+ placement(ship) */ SELECT * FROM demo WHERE a < 100")
    assert result.explain is not None
    assert result.explain.requested == "ship"
    offload_result, _ = client.sql("SELECT * FROM demo WHERE a < 100")
    assert offload_result.explain is None  # legacy path untouched
    assert canonical_result_bytes(result) == canonical_result_bytes(
        offload_result)


def test_cluster_placement_matches_offload():
    from repro.core.api import ClusterClient
    from repro.core.cluster import FarviewCluster

    wl = selection_workload(1024, 0.5, seed=11)
    digests = {}
    for mode in ("offload", "ship", "auto"):
        sim = Simulator()
        cluster = FarviewCluster(sim, 4, SCENARIO)
        client = ClusterClient(cluster)
        client.open_connection()
        sharded = client.create_table("S", wl.schema, wl.rows)
        result, _ = client.far_view_planned(
            sharded, Query(predicate=wl.predicate, label="c"),
            placement=mode, stats=PlanStats(selectivity=0.5))
        digests[mode] = hashlib.sha256(
            canonical_result_bytes(result)).hexdigest()
        if mode != "offload":
            assert result.explain.requested == mode
    assert digests["ship"] == digests["offload"]
    assert digests["auto"] == digests["offload"]


def test_ship_on_bare_scan_is_a_raw_read():
    """placement="ship" with no offloadable operators must read raw
    bytes, not run the (empty) offload pipeline."""
    from repro.workloads.generator import make_rows

    schema, _ = projection_workload(8, 64)
    rows = make_rows(schema, 256, seed=17)
    client = _bench()
    table = FTable("S", schema, 256)
    client.alloc_table_mem(table)
    client.table_write(table, rows)
    result, _ = client.far_view_planned(table, Query(label="scan"),
                                        placement="ship")
    assert result.explain.chosen == "ship"
    assert result.fragment_result is None
    assert canonical_result_bytes(result) == schema.to_bytes(rows)
    # auto/offload on the same bare scan keep the legacy offload path.
    offload_result, _ = client.far_view_planned(table, Query(label="scan"),
                                                placement="auto")
    assert offload_result.explain.chosen == "offload"
    assert canonical_result_bytes(offload_result) == schema.to_bytes(rows)


def test_software_aggregate_large_int_extremes_bit_exact():
    """min/max over int64 values beyond float53 precision must survive a
    ship execution bit-exactly (the hardware block never rounds them)."""
    from repro.common.records import Column, Schema as RSchema

    schema = RSchema([Column("a", "int64", 8), Column("b", "int64", 8)])
    rows = schema.empty(3)
    rows["a"] = [2 ** 60 + 1, 5, -7]
    rows["b"] = [1, 2, 3]
    query = Query(aggregates=(AggregateSpec("max", "a"),
                              AggregateSpec("count", "*")), label="big")
    digests = {}
    for mode in ("offload", "ship"):
        client = _bench()
        table = FTable("S", schema, 3)
        client.alloc_table_mem(table)
        client.table_write(table, rows)
        result, _ = client.far_view_planned(table, query, placement=mode)
        digests[mode] = _digest(result)
        assert result.rows()["max_a"][0] == 2 ** 60 + 1
    assert digests["ship"] == digests["offload"]


def test_cluster_hybrid_keeps_fragment_result():
    """A forced cluster ship/hybrid carries its observability payload."""
    from repro.core.api import ClusterClient
    from repro.core.cluster import FarviewCluster

    wl = selection_workload(512, 0.5, seed=19)
    sim = Simulator()
    cluster = FarviewCluster(sim, 2, SCENARIO)
    client = ClusterClient(cluster)
    client.open_connection()
    sharded = client.create_table("S", wl.schema, wl.rows)
    result, _ = client.far_view_planned(
        sharded, Query(predicate=wl.predicate, label="c"),
        placement="ship")
    assert result.shipped_bytes == 512 * wl.schema.row_width
    assert result.client_cost is not None


def test_ship_pruned_when_table_exceeds_client_buffer():
    """A raw read larger than the receive buffer cannot land: auto must
    prune the ship candidate, explicit ship must raise up front."""
    from repro.common.errors import QueryError

    schema, _ = projection_workload(8, 64)
    nrows = MB // 64  # 1 MB table
    query = Query(predicate=Compare("a", "<", 1), label="big")
    small_buffer = 256 * 1024
    plan = plan_placement(query, _table(schema, nrows), SCENARIO,
                          placement="auto",
                          stats=PlanStats(selectivity=0.1),
                          buffer_capacity=small_buffer)
    assert plan.explain.chosen == "offload"  # ship would win but cannot fit
    assert all(c.label != "ship" for c in plan.explain.candidates)
    with pytest.raises(QueryError):
        plan_placement(query, _table(schema, nrows), SCENARIO,
                       placement="ship", buffer_capacity=small_buffer)
    # With a big enough buffer the ship candidate returns.
    plan = plan_placement(query, _table(schema, nrows), SCENARIO,
                          placement="auto",
                          stats=PlanStats(selectivity=0.1),
                          buffer_capacity=2 * MB)
    assert plan.explain.chosen == "ship"


def test_ship_on_encrypted_table_requires_decrypt_input():
    """Ship must enforce the compiler's encrypted-table invariant —
    never silently parse ciphertext as rows."""
    from repro.common.errors import QueryError
    from repro.operators.encryption_op import encrypt_table_image

    key, nonce = bytes(range(16)), bytes(range(12))
    wl = selection_workload(128, 0.5, seed=23)
    client = _bench()
    table = FTable("E", wl.schema, 128, encrypted=True, key=key, nonce=nonce)
    client.alloc_table_mem(table)
    client.table_write(
        table, encrypt_table_image(wl.schema.to_bytes(wl.rows), key, nonce))
    query = Query(predicate=wl.predicate, label="bad")  # no decrypt_input
    with pytest.raises(QueryError):
        client.far_view_planned(table, query, placement="ship")


def test_encrypted_table_ship_decrypts_client_side():
    from repro.operators.encryption_op import encrypt_table_image

    key, nonce = bytes(range(16)), bytes(range(12))
    wl = selection_workload(256, 0.5, seed=13)
    digests = {}
    for mode in ("offload", "ship"):
        client = _bench()
        table = FTable("S", wl.schema, 256, encrypted=True,
                       key=key, nonce=nonce)
        client.alloc_table_mem(table)
        image = encrypt_table_image(wl.schema.to_bytes(wl.rows), key, nonce)
        client.table_write(table, image)
        query = Query(predicate=wl.predicate, decrypt_input=True, label="s")
        result, _ = client.far_view_planned(table, query, placement=mode)
        digests[mode] = _digest(result)
    assert digests["ship"] == digests["offload"]
