"""Query-processing elasticity: admission control and region leasing.

The paper defers "query processing elasticity" to future work (§1).  This
module provides the mechanism: instead of failing when all dynamic regions
are busy, tenants can *wait* for a region lease, and short-lived query
threads can attach/detach without holding a region idle.

:class:`RegionLeaseManager` wraps one node — or a whole
:class:`~repro.core.cluster.FarviewCluster` — with a FIFO admission queue:

* :meth:`acquire` — a process that resolves to an open connection as soon
  as a region frees up (FIFO order, no starvation).  With multiple nodes
  it *balances*: each lease lands on the node with the most free dynamic
  regions (ties broken toward the node that has granted fewest leases, so
  a freshly added node drains the backlog first).
* :meth:`release` — closes the connection and wakes the next waiter;
* :meth:`with_lease` — convenience process: acquire, run a client
  function, release — the borrow pattern compute-side query threads use.

Placement is greedy load balancing, not partition-aware routing: a leased
:class:`~repro.core.api.FarviewClient` talks to exactly one node.  Query
threads that need scatter-gather over a sharded table use
:class:`~repro.core.api.ClusterClient` instead, which holds one region on
*every* node for the duration of the connection.

Accounting surfaces for the tests and experiments: ``leases_granted``
(total), ``leases_per_node`` (live leases per node, the balance the tests
assert on), ``max_queue_depth`` and ``queued``.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..common.errors import FaultError, QueryError, RegionUnavailableError
from ..sim.engine import Event, Simulator
from .api import FarviewClient
from .node import FarviewNode


class RegionLeaseManager:
    """FIFO admission control over the dynamic regions of a node pool.

    ``target`` may be a single :class:`FarviewNode`, a
    :class:`~repro.core.cluster.FarviewCluster`, or any sequence of nodes
    sharing one simulator.  The single-node behaviour (and the ``node``
    attribute) is unchanged from the pre-cluster version.
    """

    def __init__(self, target,
                 buffer_capacity: int = 8 * 1024 * 1024):
        self.nodes: list[FarviewNode] = _resolve_nodes(target)
        self.node = self.nodes[0]  # single-node compatibility alias
        self.sim: Simulator = self.node.sim
        self.buffer_capacity = buffer_capacity
        self._waiters: deque[Event] = deque()
        #: Waiters woken by a release but not yet resumed; newcomers must
        #: not barge into this handoff window.
        self._handoffs = 0
        #: Live leases: client -> node index (only clients this manager
        #: granted may be released through it).
        self._live: dict[int, tuple[FarviewClient, int]] = {}
        self.leases_granted = 0
        #: Live (currently held) leases per node — the balance metric.
        self.leases_per_node: list[int] = [0] * len(self.nodes)
        self.max_queue_depth = 0

    # -- placement ---------------------------------------------------------
    def _pick_node(self) -> int | None:
        """Index of the best node with a free region, or None if all busy.

        Most free regions wins; ties go to the node holding the fewest
        live leases, then the lowest index (deterministic placement).
        """
        best: int | None = None
        for i, node in enumerate(self.nodes):
            if node.failed or node.free_regions <= 0:
                continue
            if best is None:
                best = i
                continue
            key = (-node.free_regions, self.leases_per_node[i], i)
            best_key = (-self.nodes[best].free_regions,
                        self.leases_per_node[best], best)
            if key < best_key:
                best = i
        return best

    # -- lease lifecycle ---------------------------------------------------
    def acquire(self):
        """Process: resolves to a connected :class:`FarviewClient` on the
        least-loaded node with a free region.

        FIFO: a new arrival never barges past already-queued waiters —
        it only tries the fast path when the queue is empty; a waiter
        woken by a release keeps its turn even if others queued behind.
        """
        my_turn = not self._waiters and not self._handoffs
        while True:
            index = self._pick_node() if my_turn else None
            if index is not None:
                try:
                    client = FarviewClient(self.nodes[index],
                                           self.buffer_capacity)
                    client.open_connection()
                except (RegionUnavailableError, FaultError):
                    # A region counted free but could not be acquired
                    # (e.g. a draining state), or the node died between
                    # the pick and the open: wait like the all-busy case
                    # rather than spinning — and never swallow the
                    # handoff we may be holding, which would starve the
                    # rest of the queue.
                    pass
                else:
                    self.leases_granted += 1
                    self.leases_per_node[index] += 1
                    self._live[id(client)] = (client, index)
                    return client
            ticket = self.sim.event()
            self._waiters.append(ticket)
            self.max_queue_depth = max(self.max_queue_depth,
                                       len(self._waiters))
            yield ticket  # woken by a release
            self._handoffs -= 1
            my_turn = True

    def release(self, client: FarviewClient) -> None:
        """Return the lease; wakes the oldest waiter.

        Only clients granted by :meth:`acquire` may be released here —
        a foreign client would corrupt the per-node balance accounting.
        """
        entry = self._live.pop(id(client), None)
        if entry is None:
            raise QueryError("client was not leased from this manager's pool")
        _, index = entry
        try:
            try:
                client.close_connection()
            except FaultError:
                # The node died while leased: nothing left to close
                # server-side.  The accounting and wake-up below must
                # still run, or the queue starves.
                pass
        finally:
            self.leases_per_node[index] -= 1
            if self._waiters:
                self._handoffs += 1
                self._waiters.popleft().succeed()

    def with_lease(self, fn):
        """Process: borrow a client, run ``fn`` (a process function taking
        the client), release — even if ``fn`` raises."""
        client = yield from self.acquire()
        try:
            result = yield from fn(client)
        finally:
            self.release(client)
        return result

    # -- introspection -----------------------------------------------------
    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def free_regions(self) -> int:
        return sum(node.free_regions for node in self.nodes)


def _resolve_nodes(target) -> list[FarviewNode]:
    """Normalize a node / cluster / sequence-of-nodes into a node list."""
    if isinstance(target, FarviewNode):
        return [target]
    nodes = list(getattr(target, "nodes", None)
                 or (target if isinstance(target, Sequence) else ()))
    if not nodes or not all(isinstance(n, FarviewNode) for n in nodes):
        raise QueryError(
            "RegionLeaseManager needs a FarviewNode, a FarviewCluster, or "
            f"a non-empty sequence of nodes; got {target!r}")
    sims = {id(n.sim) for n in nodes}
    if len(sims) != 1:
        raise QueryError("all pooled nodes must share one simulator")
    return nodes
