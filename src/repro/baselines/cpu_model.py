"""Analytic CPU cost model for the LCPU / RCPU baselines (§6.1).

The baselines *really compute* their results (numpy scans, the from-scratch
:class:`~repro.baselines.hashmap.SoftwareHashMap`, our regex engine and
AES); this model supplies the simulated wall-clock those computations
would take on the paper's Xeon Gold testbed.  Constants live in
:mod:`repro.common.calibration` with provenance notes.

Multi-process interference (Figure 12): when ``active_clients`` processes
run on one socket, each process's effective memory bandwidth shrinks both
by LLC/DRAM contention (the interference factor) and by the hard socket
bandwidth ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..common import calibration as cal
from ..common.config import CpuConfig
from ..common.errors import ConfigurationError


@dataclass
class CostBreakdown:
    """Named time components of one baseline execution (ns)."""

    parts: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, value_ns: float) -> None:
        if value_ns < 0:
            raise ConfigurationError(f"negative cost {name}: {value_ns}")
        self.parts[name] = self.parts.get(name, 0.0) + value_ns

    @property
    def total_ns(self) -> float:
        return sum(self.parts.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v / 1000:.1f}us"
                          for k, v in sorted(self.parts.items()))
        return f"CostBreakdown({inner})"


class CpuCostModel:
    """Time formulas for the software baselines."""

    def __init__(self, config: CpuConfig | None = None,
                 active_clients: int = 1):
        if active_clients <= 0:
            raise ConfigurationError(
                f"active_clients must be positive: {active_clients}")
        self.config = config if config is not None else CpuConfig()
        self.active_clients = active_clients

    # -- bandwidth under contention ------------------------------------------------
    def _contended(self, solo_bandwidth: float) -> float:
        n = self.active_clients
        cfg = self.config
        interfered = solo_bandwidth / (1 + cfg.interference_factor * (n - 1))
        fair_share = cfg.socket_dram_bandwidth / n
        return min(interfered, fair_share) if n > 1 else interfered

    @property
    def read_bandwidth(self) -> float:
        return self._contended(self.config.dram_read_bandwidth)

    @property
    def write_bandwidth(self) -> float:
        return self._contended(self.config.dram_write_bandwidth)

    # -- component times ---------------------------------------------------------------
    def setup_ns(self) -> float:
        return self.config.query_setup_ns

    def read_ns(self, nbytes: int) -> float:
        """Streaming read of cold data from DRAM (the paper stresses the
        baselines 'read the data from DRAM and not from cache', §6.4)."""
        return nbytes / self.read_bandwidth

    def write_ns(self, nbytes: int) -> float:
        return nbytes / self.write_bandwidth

    def select_ns(self, num_tuples: int) -> float:
        return num_tuples * self.config.select_cost_per_tuple_ns

    def hash_ns(self, num_tuples: int, growing: bool) -> float:
        """Hash-probe cost; ``growing`` adds the resize amortization the
        paper blames for the baselines' slowdown on DISTINCT (§6.5)."""
        per_tuple = self.config.hash_cost_per_tuple_ns
        if growing:
            per_tuple += self.config.hash_resize_cost_per_tuple_ns
        return num_tuples * per_tuple

    def aggregate_update_ns(self, num_tuples: int) -> float:
        return num_tuples * cal.CPU_AGG_UPDATE_COST_PER_TUPLE_NS

    def sort_ns(self, num_tuples: int) -> float:
        """Comparison sort at n·log2(n) key comparisons (ORDER BY)."""
        if num_tuples <= 1:
            return 0.0
        return (num_tuples * math.log2(num_tuples)
                * self.config.select_cost_per_tuple_ns)

    def regex_ns(self, nbytes: int) -> float:
        """RE2 scan cost over the string payload (§6.6)."""
        return nbytes * self.config.re2_cost_per_byte_ns

    def aes_ns(self, nbytes: int) -> float:
        """Cryptopp AES-CTR cost (§6.7)."""
        return nbytes * self.config.aes_cost_per_byte_ns

    def two_sided_ns(self) -> float:
        """Software RPC round-trip overhead for the RCPU baseline."""
        return self.config.two_sided_overhead_ns
