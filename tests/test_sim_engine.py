"""Event loop, processes, timeouts, event composition."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(42.0)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(42.0)


def test_timeouts_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(30.0, log.append, "c")
    sim.schedule(10.0, log.append, "a")
    sim.schedule(20.0, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    log = []
    for tag in ("first", "second", "third"):
        sim.schedule(5.0, log.append, tag)
    sim.run()
    assert log == ["first", "second", "third"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    assert sim.run_process(proc()) == "done"


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc()) == "payload"


def test_nested_processes_wait_for_child():
    sim = Simulator()

    def child():
        yield sim.timeout(10.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value, sim.now

    value, now = sim.run_process(parent())
    assert value == 7
    assert now == pytest.approx(10.0)


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def worker(delay):
        yield sim.timeout(delay)
        return delay

    def parent():
        procs = [sim.process(worker(d)) for d in (5.0, 15.0, 10.0)]
        values = yield sim.all_of(procs)
        return values, sim.now

    values, now = sim.run_process(parent())
    assert values == [5.0, 15.0, 10.0]
    assert now == pytest.approx(15.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(parent()) == []


def test_event_fail_raises_in_waiter():
    sim = Simulator()

    def parent():
        ev = sim.event()
        sim.schedule(1.0, ev.fail, RuntimeError("boom"))
        try:
            yield ev
        except RuntimeError as exc:
            return str(exc)

    assert sim.run_process(parent()) == "boom"


def test_run_until_stops_early():
    sim = Simulator()
    log = []
    sim.schedule(10.0, log.append, "early")
    sim.schedule(100.0, log.append, "late")
    sim.run(until=50.0)
    assert log == ["early"]
    assert sim.now == pytest.approx(50.0)


def test_deadlock_detected_by_run_process():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="never completed"):
        sim.run_process(stuck())


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError, match="must.*yield Event"):
        sim.run()


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_late_callback_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["v"]


def test_all_of_propagates_child_failure():
    sim = Simulator()

    def parent():
        slow = sim.timeout(5.0)
        failing = sim.event()
        sim.schedule(1.0, failing.fail, RuntimeError("child exploded"))
        try:
            yield sim.all_of([slow, failing])
        except RuntimeError as exc:
            return str(exc), sim.now
        return "no error", sim.now

    msg, now = sim.run_process(parent())
    assert msg == "child exploded"
    # The failure fires as soon as the failing child does, not at the end.
    assert now == pytest.approx(1.0)


def test_all_of_failure_of_failed_event():
    sim = Simulator()

    def parent():
        ev = sim.event()
        sim.schedule(2.0, ev.fail, ValueError("nope"))
        try:
            yield sim.all_of([ev, sim.timeout(10.0)])
        except ValueError as exc:
            return str(exc)

    assert sim.run_process(parent()) == "nope"


def test_zero_delay_preserves_fifo_with_same_time_heap_entries():
    """A timeout callback scheduled earlier at time T runs before a
    zero-delay callback queued later at T (shared-ticket ordering)."""
    sim = Simulator()
    log = []
    sim.schedule(5.0, log.append, "heap-first")

    def trigger():
        yield sim.timeout(5.0)  # scheduled after heap-first, fires at T=5
        sim.schedule(0.0, log.append, "immediate")
        log.append("inline")

    sim.process(trigger())
    sim.run()
    assert log == ["heap-first", "inline", "immediate"]


def test_events_processed_counts_callbacks():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.schedule(0.0, lambda: None)
    sim.run()
    assert sim.events_processed == 4
