"""Error-taxonomy coverage: every error is typed, public, and catchable.

Two guarantees, each enforced structurally so new code cannot rot them:

1. **Reachability** — every concrete :class:`FarviewError` subclass can
   be provoked through a *public* API path (the trigger table below);
   a completeness check walks the live exception hierarchy and fails
   when a new subclass appears without a trigger (or an explicit
   internal-only exemption).
2. **Base-class sufficiency** — for every client verb (the verb table,
   mirroring ``core/api.py``'s surface), an injected node crash
   surfaces as a :class:`FaultError` that a plain
   ``except FarviewError`` catches: callers never need to enumerate
   failure types to survive chaos, and no verb leaks an untyped error.
"""

import numpy as np
import pytest

import repro.common.errors as errors_module
from repro.common.config import (FarviewConfig, MemoryConfig,
                                 OperatorStackConfig)
from repro.common.errors import (CatalogError, ConfigurationError,
                                 ConnectionError_, DegradedResultError,
                                 FarviewError, FaultError,
                                 JoinBuildOverflowError, NodeFailedError,
                                 OutOfMemoryError, PipelineCompilationError,
                                 ProtectionFault, QueryError,
                                 RegexSyntaxError, RegionFailedError,
                                 RegionUnavailableError, RequestTimeoutError,
                                 TranslationFault)
from repro.core.api import ClusterClient, FarviewClient
from repro.core.cluster import FarviewCluster
from repro.core.faults import FaultInjector, RetryPolicy
from repro.core.node import FarviewNode
from repro.core.partition import PartitionSpec
from repro.core.query import JoinSpec, Query, select_star
from repro.core.sql import SqlSyntaxError
from repro.core.table import FTable
from repro.operators.selection import Compare
from repro.sim.engine import SimulationError, Simulator
from repro.workloads.generator import (make_rows, selection_workload,
                                       string_workload)

KB = 1024
MB = 1024 * KB

TEST_CONFIG = FarviewConfig(memory=MemoryConfig(
    channels=2, channel_capacity=8 * MB, page_size=64 * KB))


def make_client(config=TEST_CONFIG):
    sim = Simulator()
    client = FarviewClient(FarviewNode(sim, config))
    client.open_connection()
    return client


def make_loaded_client(num_rows=256):
    client = make_client()
    wl = selection_workload(num_rows, 0.5, seed=2)
    table = FTable("T", wl.schema, num_rows)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    return client, table, wl


# ---------------------------------------------------------------------------
# Reachability: one public-API trigger per concrete error class
# ---------------------------------------------------------------------------

def trigger_configuration_error():
    MemoryConfig(channels=0)


def trigger_out_of_memory():
    client = make_client()
    schema = selection_workload(8, 0.5).schema
    huge = FTable("huge", schema, (64 * MB) // schema.row_width)
    client.alloc_table_mem(huge)


def trigger_translation_fault():
    # The table's owning domain dies with its connection; the stale
    # handle no longer translates through the new domain.
    client, table, _wl = make_loaded_client()
    client.close_connection()
    client.open_connection()
    client.table_read(table)


def trigger_protection_fault():
    # §4.4 isolation: another connection's domain cannot reach the table.
    client, table, _wl = make_loaded_client()
    intruder = FarviewClient(client.node)
    intruder.open_connection()
    intruder.table_read(table)


def trigger_connection_error():
    client = make_client()
    client.open_connection()


def trigger_region_unavailable():
    config = FarviewConfig(
        memory=MemoryConfig(channels=2, channel_capacity=8 * MB,
                            page_size=64 * KB),
        operator_stack=OperatorStackConfig(regions=1))
    sim = Simulator()
    node = FarviewNode(sim, config)
    FarviewClient(node).open_connection()
    FarviewClient(node).open_connection()


def trigger_pipeline_compilation_error():
    client, table, _wl = make_loaded_client()
    client.far_view(table, select_star(Compare("no_such_column", "<", 1)))


def trigger_join_build_overflow():
    # Shrink the on-chip cuckoo hash so a modest build side overflows it.
    config = FarviewConfig(
        memory=MemoryConfig(channels=2, channel_capacity=8 * MB,
                            page_size=64 * KB),
        operator_stack=OperatorStackConfig(cuckoo_tables=1, cuckoo_slots=8))
    sim = Simulator()
    client = FarviewClient(FarviewNode(sim, config))
    client.open_connection()
    wl = selection_workload(64, 0.5, seed=3)
    table = FTable("T", wl.schema, 64)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    big = FTable("big", wl.schema, 64)
    client.alloc_table_mem(big)
    client.table_write(big, wl.rows)
    client.far_view(table, Query(join=JoinSpec(big, "a", "a", ("b",)),
                                 label="overflow"))


def trigger_regex_syntax_error():
    client = make_client()
    schema, rows = string_workload(16, 32, seed=4)
    table = FTable("S", schema, 16)
    client.alloc_table_mem(table)
    client.table_write(table, rows)
    client.regex_match(table, schema.names[-1], "(unbalanced")


def trigger_catalog_error():
    client = make_client()
    schema = selection_workload(8, 0.5).schema
    rows = make_rows(schema, 8, seed=5)
    client.create_versioned_table("dup", schema, rows)
    client.create_versioned_table("dup", schema, rows)


def trigger_query_error():
    client, table, wl = make_loaded_client()
    client.table_write(table, wl.rows[: len(wl.rows) // 2])


def trigger_sql_syntax_error():
    make_client().sql("SELEC * FROM nowhere")


def trigger_simulation_error():
    Simulator().timeout(-1.0)


def trigger_node_failed():
    client, table, wl = make_loaded_client()
    FaultInjector(client.node).crash(0)
    client.far_view(table, select_star(wl.predicate))


def trigger_request_timeout():
    client, table, wl = make_loaded_client(num_rows=2048)
    client.retry_policy = RetryPolicy(max_attempts=1, deadline_ns=1.0)
    client.far_view(table, select_star(wl.predicate))


def trigger_region_failed():
    client, table, wl = make_loaded_client()
    FaultInjector(client.node).fail_region(0, 0)
    client.far_view(table, select_star(wl.predicate))


def trigger_degraded_result():
    sim = Simulator()
    cluster = FarviewCluster(sim, 2, TEST_CONFIG)
    cc = ClusterClient(cluster)
    cc.open_connection()
    wl = selection_workload(256, 0.5, seed=6)
    sharded = cc.create_table("T", wl.schema, wl.rows,
                              PartitionSpec(replicas=1))
    cc.allow_degraded = True
    FaultInjector(cluster).crash(1)
    cc.far_view(sharded, select_star(wl.predicate))


TRIGGERS = {
    ConfigurationError: trigger_configuration_error,
    OutOfMemoryError: trigger_out_of_memory,
    TranslationFault: trigger_translation_fault,
    ProtectionFault: trigger_protection_fault,
    ConnectionError_: trigger_connection_error,
    RegionUnavailableError: trigger_region_unavailable,
    PipelineCompilationError: trigger_pipeline_compilation_error,
    JoinBuildOverflowError: trigger_join_build_overflow,
    RegexSyntaxError: trigger_regex_syntax_error,
    CatalogError: trigger_catalog_error,
    QueryError: trigger_query_error,
    SqlSyntaxError: trigger_sql_syntax_error,
    SimulationError: trigger_simulation_error,
    NodeFailedError: trigger_node_failed,
    RequestTimeoutError: trigger_request_timeout,
    RegionFailedError: trigger_region_failed,
    DegradedResultError: trigger_degraded_result,
}

#: Subclasses that exist as catch-all bases or internal-consistency
#: guards and are deliberately not provoked through the public API.
EXEMPT = {
    "MemoryError_",        # base bucket for the memory stack
    "NetworkError",        # base bucket for the network stack
    "OperatorError",       # base bucket for the operator stack
    "FaultError",          # base bucket for injected failures
    "FlowControlError",    # credit-accounting guard: simulator-bug only
}


@pytest.mark.parametrize(
    "error_class", list(TRIGGERS), ids=lambda c: c.__name__)
def test_every_error_class_raisable_from_public_api(error_class):
    with pytest.raises(error_class) as excinfo:
        TRIGGERS[error_class]()
    # The whole taxonomy hangs off FarviewError: one catch suffices.
    assert isinstance(excinfo.value, FarviewError)


def test_taxonomy_is_fully_covered():
    """A new FarviewError subclass must gain a trigger (or an explicit
    exemption) — the taxonomy may not grow silently untested."""

    def walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from walk(sub)

    covered = {cls.__name__ for cls in TRIGGERS} | EXEMPT
    missing = sorted(sub.__name__ for sub in walk(FarviewError)
                     if sub.__name__ not in covered)
    assert not missing, f"FarviewError subclasses without a trigger: {missing}"
    # And the errors module itself exports nothing outside the taxonomy.
    for name in dir(errors_module):
        obj = getattr(errors_module, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, FarviewError) or obj is FarviewError


# ---------------------------------------------------------------------------
# Base-class sufficiency per verb (the api.py verb table)
# ---------------------------------------------------------------------------

def _plain_setup():
    """A 2-node cluster with a plain replicated table + versioned table."""
    sim = Simulator()
    cluster = FarviewCluster(sim, 2, TEST_CONFIG)
    cc = ClusterClient(cluster)
    cc.open_connection()
    wl = selection_workload(128, 0.5, seed=7)
    sharded = cc.create_table("p", wl.schema, wl.rows,
                              PartitionSpec(replicas=1))
    schema = wl.schema
    vrows = make_rows(schema, 64, seed=8)
    vst = cc.create_versioned_table("v", schema, vrows)
    # Leave a delta on every shard so compact has real per-node work.
    cc.update_where(vst, Compare("a", "<", 10**9), {"c": 5})
    return sim, cluster, cc, sharded, vst, wl


#: verb name -> callable(cc, sharded, vst, wl) exercising it.
CLUSTER_VERBS = {
    "table_read": lambda cc, sharded, vst, wl: cc.table_read(sharded),
    "far_view": lambda cc, sharded, vst, wl:
        cc.far_view(sharded, select_star(wl.predicate)),
    "insert": lambda cc, sharded, vst, wl:
        cc.insert(vst, make_rows(wl.schema, 4, seed=9)),
    "update_where": lambda cc, sharded, vst, wl:
        cc.update_where(vst, Compare("a", "<", 10**9), {"c": 1}),
    "delete_where": lambda cc, sharded, vst, wl:
        cc.delete_where(vst, Compare("a", "<", 0)),
    "scan_versioned": lambda cc, sharded, vst, wl:
        cc.scan_versioned(vst, Query(projection=tuple(wl.schema.names),
                                     label="scan")),
    "read_version": lambda cc, sharded, vst, wl: cc.read_version(vst),
    "compact": lambda cc, sharded, vst, wl: cc.compact(vst),
}


@pytest.mark.parametrize("verb", list(CLUSTER_VERBS))
def test_crash_surfaces_as_fault_error_per_verb(verb):
    """With a node down, every verb fails via the FaultError branch of
    the taxonomy — catchable as FarviewError, never a hang, never an
    untyped exception."""
    sim, cluster, cc, sharded, vst, wl = _plain_setup()
    FaultInjector(cluster).crash(1)
    try:
        CLUSTER_VERBS[verb](cc, sharded, vst, wl)
    except FarviewError as exc:
        assert isinstance(exc, FaultError), \
            f"{verb} surfaced {type(exc).__name__}, not a FaultError"
    else:
        pytest.fail(f"{verb} succeeded against a crashed node")


@pytest.mark.parametrize("verb", list(CLUSTER_VERBS))
def test_verbs_work_when_healthy(verb):
    """The same verb table succeeds with no faults — the crash test
    above fails for the right reason."""
    sim, cluster, cc, sharded, vst, wl = _plain_setup()
    CLUSTER_VERBS[verb](cc, sharded, vst, wl)
