"""Hash functions: determinism, seed independence, vectorized consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OperatorError
from repro.operators.hashing import HashFamily, hash_key, hash_u64_array, mix64


def test_mix64_deterministic():
    assert mix64(42) == mix64(42)
    assert mix64(42, seed=1) == mix64(42, seed=1)


def test_mix64_seed_changes_output():
    assert mix64(42, seed=0) != mix64(42, seed=1)


def test_mix64_stays_in_64_bits():
    for v in (0, 1, 2**63, 2**64 - 1):
        assert 0 <= mix64(v) < 2**64


def test_hash_key_distinguishes_lengths():
    # Same prefix, different length must hash differently (length is mixed in).
    assert hash_key(b"abc") != hash_key(b"abc\x00")


def test_hash_key_empty():
    assert isinstance(hash_key(b""), int)


def test_hash_key_rejects_negative_seed():
    with pytest.raises(OperatorError):
        hash_key(b"x", seed=-1)


def test_vectorized_matches_scalar():
    values = np.array([0, 1, 42, 2**40, 2**64 - 1], dtype=np.uint64)
    hashed = hash_u64_array(values, seed=3)
    for v, h in zip(values, hashed):
        # The scalar path mixes differently (byte-chained); compare the
        # vectorized path against a direct scalar recomputation instead.
        assert 0 <= int(h) < 2**64
    # determinism
    np.testing.assert_array_equal(hashed, hash_u64_array(values, seed=3))


def test_vectorized_seed_changes_output():
    values = np.arange(16, dtype=np.uint64)
    a = hash_u64_array(values, seed=0)
    b = hash_u64_array(values, seed=1)
    assert not np.array_equal(a, b)


def test_family_independent_functions():
    family = HashFamily(4)
    key = b"group-key"
    hashes = {family.hash(i, key) for i in range(4)}
    assert len(hashes) == 4  # all four functions differ on this key


def test_family_slot_in_range():
    family = HashFamily(2)
    for i in range(2):
        assert 0 <= family.slot(i, b"k", 128) < 128


def test_family_validation():
    with pytest.raises(OperatorError):
        HashFamily(0)
    family = HashFamily(2)
    with pytest.raises(OperatorError):
        family.hash(2, b"x")


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_hash_key_deterministic_property(key):
    assert hash_key(key, 0) == hash_key(key, 0)
    assert 0 <= hash_key(key, 0) < 2**64


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=50,
                unique=True))
def test_hash_key_collision_free_on_small_sets(keys):
    """64-bit hashes over tiny unique key sets should not collide."""
    hashes = [hash_key(k) for k in keys]
    assert len(set(hashes)) == len(keys)
