"""Figure 15 (extension): the versioned write path under churn.

The paper's evaluation is write-once; this experiment measures the
repo's MVCC write path (:mod:`repro.core.versioning`) along the two axes
that matter for a buffer-pool replacement serving a live engine:

* **fig15a — delta fraction.**  A 1 MB table accumulates copy-on-write
  update deltas; a warm offloaded selection scan is measured at each
  delta fraction (delta bytes / base bytes):

  - ``FV-deltas``    — delta-merge ingest of base + K delta segments,
  - ``FV-ship``      — raw segment reads + client-side software merge,
  - ``FV-compacted`` — the same scan after folding the chain into a
    fresh base segment,
  - ``compaction``   — the cost of that folding pass itself.

  Expected shape: scan latency grows with the delta fraction on both
  paths (every scan re-ingests the whole chain), the ship side grows
  faster (the client also pays the software merge, so the ship/offload
  crossover shifts with the delta fraction), and the compacted scan is
  flat — the compaction payoff is the gap, amortized over
  ``compaction / (FV-deltas - FV-compacted)`` scans.

* **fig15b — scan under update.**  Six clients run DISTINCT scans while
  each table's writer commits update batches concurrently (x = update
  batches per scan window).  Scans pin the epoch they start under; the
  run asserts every result is byte-identical to a quiesced re-execution
  at its pinned epoch — MVCC snapshot isolation, measured rather than
  assumed.  Latency rises with the update rate only through DRAM/link
  contention, never through result corruption.
"""

from __future__ import annotations

import numpy as np

from ..core.api import FarviewClient, canonical_result_bytes
from ..core.cost_model import PlanStats
from ..core.node import FarviewNode
from ..core.query import Query, select_distinct
from ..operators.selection import And, Compare
from ..sim.engine import Simulator
from ..sim.stats import Series
from ..workloads.generator import make_rows
from .common import EXPERIMENT_CONFIG, ExperimentResult, us

KB = 1024
MB = 1024 * KB

#: fig15a: base table size and the swept updated-row fractions.
TABLE_BYTES = 1 * MB
DELTA_FRACTIONS = (0.0, 0.125, 0.25, 0.5, 1.0)
#: Update batches per sweep point (the chain depth K at full fraction).
UPDATE_BATCHES = 4

#: fig15b: per-client table size, client count, swept writer rates.
SCAN_TABLE_BYTES = 256 * KB
NUM_CLIENTS = 6
UPDATE_RATES = (0, 1, 2, 4, 8)
DISTINCT_VALUES = 64

ROW_WIDTH = 64


def _versioned_bench(name: str, num_rows: int, seed: int,
                     sim: Simulator | None = None,
                     distinct_values: int | None = None):
    """One client + node with a freshly created versioned table."""
    from ..common.records import default_schema

    sim = sim if sim is not None else Simulator()
    node = FarviewNode(sim, EXPERIMENT_CONFIG)
    client = FarviewClient(node)
    client.open_connection()
    schema = default_schema()
    rows = make_rows(schema, num_rows, seed=seed)
    rows["a"] = np.arange(num_rows)      # deterministic update targets
    if distinct_values is not None:
        rows["c"] = np.arange(num_rows) % distinct_values
    vt = client.create_versioned_table(name, schema, rows)
    return client, vt, rows


def _apply_update_batches(client: FarviewClient, vt, num_rows: int,
                          fraction: float, batches: int = UPDATE_BATCHES):
    """Commit ``batches`` update deltas touching ``fraction`` of the rows."""
    per_batch = int(fraction * num_rows / batches)
    for b in range(batches):
        if per_batch == 0:
            break
        lo, hi = b * per_batch, (b + 1) * per_batch
        client.update_where(
            vt, And(Compare("a", ">=", lo), Compare("a", "<", hi)),
            {"c": 9_000 + b})


def delta_point(fraction: float,
                table_bytes: int = TABLE_BYTES) -> dict[str, float]:
    """One fig15a sweep point; returns per-strategy elapsed ns."""
    num_rows = table_bytes // ROW_WIDTH
    client, vt, _rows = _versioned_bench("T15", num_rows, seed=15)
    query = Query(predicate=Compare("a", "<", num_rows // 2), label="fig15")
    stats = PlanStats(selectivity=0.5)
    _apply_update_batches(client, vt, num_rows, fraction)

    client.scan_versioned(vt, query)              # deploy (warm the region)
    deltas_result, t_deltas = client.scan_versioned(vt, query)
    ship_result, t_ship = client.scan_versioned(vt, query,
                                                placement="ship",
                                                stats=stats)
    assert (canonical_result_bytes(ship_result)
            == canonical_result_bytes(deltas_result)), \
        "ship merge changed result bytes"
    _epoch, t_compact = client.compact(vt)
    compacted_result, t_compacted = client.scan_versioned(vt, query)
    assert compacted_result.data == deltas_result.data, \
        "compaction changed result bytes"
    return {
        "deltas": t_deltas,
        "ship": t_ship,
        "compacted": t_compacted,
        "compaction": t_compact,
    }


def run_delta_sweep(fractions=DELTA_FRACTIONS,
                    table_bytes: int = TABLE_BYTES) -> ExperimentResult:
    deltas = Series("FV-deltas")
    ship = Series("FV-ship")
    compacted = Series("FV-compacted")
    compaction = Series("compaction")
    num_rows = table_bytes // ROW_WIDTH
    for fraction in fractions:
        # Recompute the x value exactly as the chain will see it: K update
        # deltas of (rowid + row) images over the base image.
        per_batch = int(fraction * num_rows / UPDATE_BATCHES)
        delta_bytes = (UPDATE_BATCHES * per_batch * (ROW_WIDTH + 8)
                       if per_batch else 0)
        x = delta_bytes / table_bytes
        times = delta_point(fraction, table_bytes)
        deltas.add(x, us(times["deltas"]))
        ship.add(x, us(times["ship"]))
        compacted.add(x, us(times["compacted"]))
        compaction.add(x, us(times["compaction"]))
    return ExperimentResult(
        experiment_id="fig15a",
        title=(f"scan latency vs delta fraction, "
               f"{table_bytes // KB} kB base, warm region"),
        x_label="delta fraction", y_label="us",
        series=[deltas, ship, compacted, compaction],
        notes=[
            "FV-deltas: delta-merge ingest of base + K deltas; FV-ship "
            "adds the client-side software merge (crossover shifts with "
            "the delta fraction)",
            "FV-compacted: same scan after folding the chain; payoff "
            "amortizes over compaction/(FV-deltas - FV-compacted) scans",
        ])


def scan_under_update_time(num_updates: int,
                           table_bytes: int = SCAN_TABLE_BYTES,
                           num_clients: int = NUM_CLIENTS) -> float:
    """fig15b: completion time of six DISTINCT scans with live writers.

    Every scan pins its start epoch; after the run each result is
    checked byte-identical to a quiesced re-execution at that epoch.
    """
    sim = Simulator()
    num_rows = table_bytes // ROW_WIDTH
    clients, tables = [], []
    for i in range(num_clients):
        client, vt, _rows = _versioned_bench(
            f"T15b_{i}", num_rows, seed=i, sim=sim,
            distinct_values=DISTINCT_VALUES)
        clients.append(client)
        tables.append(vt)
    query = select_distinct(["c"])
    for client, vt in zip(clients, tables):
        client.scan_versioned(vt, query)   # deploy all pipelines first

    results: dict[int, object] = {}
    pinned: dict[int, int] = {}

    def reader(i):
        vt = tables[i]
        pinned[i] = vt.epoch
        result = yield from clients[i].scan_versioned_proc(vt, query,
                                                           pinned[i])
        results[i] = result

    def writer(i):
        for batch in range(num_updates):
            hi = (batch + 1) * max(1, num_rows // (2 * max(num_updates, 1)))
            yield from clients[i].update_where_proc(
                tables[i], Compare("a", "<", hi),
                {"c": batch % DISTINCT_VALUES})

    start = sim.now
    procs = [sim.process(reader(i)) for i in range(num_clients)]
    procs += [sim.process(writer(i)) for i in range(num_clients)]
    sim.run()
    assert all(p.triggered for p in procs)
    elapsed = sim.now - start

    for i in range(num_clients):
        replay, _ = clients[i].scan_versioned(tables[i], query,
                                              as_of=pinned[i])
        assert replay.data == results[i].data, (
            f"client {i}: scan under {num_updates} updates diverged from "
            f"its pinned epoch {pinned[i]}")
    return elapsed


def run_scan_under_update(rates=UPDATE_RATES,
                          table_bytes: int = SCAN_TABLE_BYTES
                          ) -> ExperimentResult:
    latency = Series("FV-under-update")
    for rate in rates:
        latency.add(rate, us(scan_under_update_time(rate, table_bytes)))
    return ExperimentResult(
        experiment_id="fig15b",
        title=(f"{NUM_CLIENTS} clients: DISTINCT under concurrent update "
               f"batches, {table_bytes // KB} kB tables"),
        x_label="update batches per scan window", y_label="us",
        series=[latency],
        notes=[
            "every scan verified byte-identical to a quiesced "
            "re-execution at its pinned epoch (snapshot isolation)",
            "latency grows only through DRAM/link contention with the "
            "writers, never through retries or result corruption",
        ])


def run() -> list[ExperimentResult]:
    return [run_delta_sweep(), run_scan_under_update()]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
