"""Incremental materialized views: Z-set circuits over the delta chain.

The versioned write path commits typed insert/update/delete
``DeltaSegment``\\ s keyed by stable row ids — exactly the input an
incremental view maintenance engine consumes.  This module compiles a
bound SELECT (:func:`~repro.core.compile.bind_select`) into a **circuit**
of incremental operators and maintains the registered views by pushing
only the committed deltas through it, DBSP-style, instead of rescanning
the base relation:

* **Linear operators** (regex, selection, projection, expression
  evaluation) distribute over Z-set addition — they map each delta
  independently, with no state at all.
* **DISTINCT** keeps per-row multiplicities and emits ``+1`` only on a
  0→positive transition and ``-1`` only on a →0 transition.
* **GROUP BY / aggregates** keep the weighted member set per group and
  re-emit the group's output row (retract old, insert new) whenever a
  delta touches it, using the exact arithmetic of the serial reference
  model (:mod:`repro.baselines.sql_model`).
* **JOIN** applies the bilinear chain rule
  ``Δ(R ⋈ S) = ΔR ⋈ S + R ⋈ ΔS + ΔR ⋈ ΔS`` against incrementally
  maintained key indexes of both sides.  Static (non-versioned) build
  sides are loaded once at bootstrap and ``ΔS`` stays empty forever;
  versioned build sides are tracked like the base.

**Bootstrap is one circuit step.**  A view starts from an
epoch-consistent MVCC snapshot of every versioned input, fed through the
circuit as an all-``+1`` delta with empty operator state — the
``ΔR ⋈ ΔS`` term then produces the full join, the aggregate states fill
in, and the resulting Z-set *is* the view at that epoch.  Every later
refresh advances it by exactly the committed segments, so the cumulative
materialization stays sha256-identical to a full rescan at the same
epoch (the conformance suite pins this cell by cell).

Exactness caveat: float SUM/AVG accumulation order differs between an
incremental fold and a full rescan.  Byte-identity to the rescan is
guaranteed when aggregated float values are dyadic rationals (multiples
of 2^-k, e.g. ``n * 0.25``) whose sums stay below 2^53 — the convention
all repo workloads follow; arbitrary floats converge mathematically but
may differ in the last ulp.

The sim-facing half (who reads segment bytes, what it costs, when
refreshes run) lives in :mod:`repro.core.api`; everything here is pure
bookkeeping and runs inside one simulator event.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..common.errors import QueryError
from ..common.records import Schema
from ..operators.aggregate import AggregateSpec
from ..operators.join import join_output_schema
from ..operators.selection import And, Compare, Not, Or, Predicate
from .compile import (BoundAggregate, BoundDistinct, BoundEval, BoundFilter,
                      BoundLimit, BoundSelect, BoundSort)
from .ir import Arith, Col, Lit
from .query import Query
from .versioning import (ROWID_COLUMN, ChainListener, DeltaSegment,
                         VersionedShardedTable, VersionedTable, delete_schema,
                         delta_schema)
from .zset import ZSet, row_images

__all__ = ["ChainTracker", "Circuit", "MaterializedView", "RefreshStats",
           "Subscription", "ViewCatalog", "compile_circuit",
           "is_versioned_handle"]


def is_versioned_handle(handle) -> bool:
    """True when a catalog handle is backed by version chain(s)."""
    if isinstance(handle, VersionedTable):
        return True
    return isinstance(handle, VersionedShardedTable)


def versioned_chains(handle) -> list[VersionedTable]:
    """The per-node version chains behind ``handle`` (1 on single node)."""
    if isinstance(handle, VersionedTable):
        return [handle]
    if isinstance(handle, VersionedShardedTable):
        return [shard.table for shard in handle.shards]
    raise QueryError(f"{getattr(handle, 'name', handle)!r} is not a "
                     f"versioned table")


# -- scalar evaluation (mirrors baselines/sql_model.py exactly) ---------------

def _pred_row(pred: Predicate, row) -> bool:
    if isinstance(pred, Compare):
        value = pred.value
        if isinstance(value, str):
            value = value.encode()
        x = row[pred.column]
        if pred.op == "<":
            return bool(x < value)
        if pred.op == "<=":
            return bool(x <= value)
        if pred.op == ">":
            return bool(x > value)
        if pred.op == ">=":
            return bool(x >= value)
        if pred.op == "==":
            return bool(x == value)
        if pred.op == "!=":
            return bool(x != value)
        raise QueryError(f"unknown comparison {pred.op!r}")
    if isinstance(pred, And):
        return _pred_row(pred.left, row) and _pred_row(pred.right, row)
    if isinstance(pred, Or):
        return _pred_row(pred.left, row) or _pred_row(pred.right, row)
    if isinstance(pred, Not):
        return not _pred_row(pred.inner, row)
    raise QueryError(f"unknown predicate node {type(pred).__name__}")


def _eval_scalar(expr, row):
    if isinstance(expr, Col):
        return row[expr.name]
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Arith):
        left = _eval_scalar(expr.left, row)
        right = _eval_scalar(expr.right, row)
        if expr.op == "/":
            return float(left) / float(right)
        is_float = any(isinstance(v, (float, np.floating))
                       for v in (left, right))
        if is_float:
            left, right = float(left), float(right)
        else:
            left, right = int(left), int(right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        raise QueryError(f"unknown arithmetic op {expr.op!r}")
    raise QueryError(f"unknown expression node {type(expr).__name__}")


# -- circuit stages -----------------------------------------------------------

class _Stage:
    """One incremental operator: input delta in, output delta out."""

    out_schema: Schema

    def apply(self, delta: ZSet) -> ZSet:
        raise NotImplementedError

    @property
    def state_entries(self) -> int:
        """Rows of operator state held (0 for linear stages)."""
        return 0


class FilterStage(_Stage):
    """Linear: a predicate keeps or drops each delta entry unchanged."""

    def __init__(self, schema: Schema, predicate: Predicate):
        predicate.validate(schema)
        self.out_schema = schema
        self.predicate = predicate

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        images = list(delta.weights)
        rows, weights = delta.decode()
        for i, image in enumerate(images):
            if _pred_row(self.predicate, rows[i]):
                out.add(image, int(weights[i]))
        return out


class RegexStage(_Stage):
    """Linear: char-column regex filter (LIKE / REGEXP)."""

    def __init__(self, schema: Schema, column: str, pattern: str):
        if schema.column(column).kind != "char":
            raise QueryError(f"regex column {column!r} must be char")
        self.out_schema = schema
        self.column = column
        self.pattern = re.compile(pattern.encode(), re.DOTALL)

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        images = list(delta.weights)
        rows, weights = delta.decode()
        values = rows[self.column]
        for i, image in enumerate(images):
            if self.pattern.search(bytes(values[i])) is not None:
                out.add(image, int(weights[i]))
        return out


class ProjectStage(_Stage):
    """Linear: column projection (may merge distinct inputs)."""

    def __init__(self, schema: Schema, columns: tuple[str, ...]):
        self.in_schema = schema
        self.columns = tuple(columns)
        self.out_schema = schema.project(list(columns))

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        rows, weights = delta.decode()
        projected = self.out_schema.empty(len(rows))
        for name in self.columns:
            projected[name] = rows[name]
        for image, weight in zip(row_images(self.out_schema, projected),
                                 weights.tolist()):
            out.add(image, weight)
        return out


class EvalStage(_Stage):
    """Linear: expression projection (the BoundEval client kernel)."""

    def __init__(self, items: tuple, schema: Schema):
        self.items = items
        self.out_schema = schema

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        rows, weights = delta.decode()
        evaluated = self.out_schema.empty(len(rows))
        for expr, name in self.items:
            col = evaluated[name]
            for i in range(len(rows)):
                col[i] = _eval_scalar(expr, rows[i])
        for image, weight in zip(row_images(self.out_schema, evaluated),
                                 weights.tolist()):
            out.add(image, weight)
        return out


class DistinctStage(_Stage):
    """Stateful: per-row multiplicities; emits only 0↔positive edges."""

    def __init__(self, schema: Schema):
        self.out_schema = schema
        self.multiplicity: dict[bytes, int] = {}

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        for image, weight in delta:
            old = self.multiplicity.get(image, 0)
            new = old + weight
            if new < 0:
                raise QueryError(
                    "distinct state went negative: a delta retracted a row "
                    "the view never saw (corrupt chain)")
            if new:
                self.multiplicity[image] = new
            else:
                self.multiplicity.pop(image, None)
            if old == 0 and new > 0:
                out.add(image, 1)
            elif old > 0 and new == 0:
                out.add(image, -1)
        return out

    @property
    def state_entries(self) -> int:
        return len(self.multiplicity)


class GroupStage(_Stage):
    """Stateful GROUP BY / aggregation.

    Keeps the weighted member multiset per group key; a delta touching a
    group retracts its old output row and emits the recomputed one.  The
    per-group arithmetic (count = Σw, sum = Σ w·float(v), min/max over
    members, avg = sum/count in float) matches the reference model's
    kernels value for value.  An empty ``group_by`` is the global
    (ungrouped) aggregate: one pseudo-group keyed ``b""`` whose output
    row disappears when the input empties — exactly the model's
    zero-row result.
    """

    def __init__(self, schema: Schema, group_by: tuple[str, ...],
                 aggregates: tuple[AggregateSpec, ...]):
        self.in_schema = schema
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.value_columns = sorted(
            {s.column for s in aggregates
             if not (s.func == "count" and s.column == "*")})
        if self.group_by:
            self.key_schema: Optional[Schema] = Schema(
                [schema.column(k) for k in self.group_by])
            self.out_schema = Schema(
                [schema.column(k) for k in self.group_by]
                + [s.output_column(schema) for s in aggregates])
        else:
            self.key_schema = None
            self.out_schema = Schema(
                [s.output_column(schema) for s in aggregates])
        #: group key image -> {member row image -> weight}
        self.groups: dict[bytes, dict[bytes, int]] = {}

    def _key_images(self, rows: np.ndarray) -> list[bytes]:
        if self.key_schema is None:
            return [b""] * len(rows)
        keyed = self.key_schema.empty(len(rows))
        for name in self.group_by:
            keyed[name] = rows[name]
        return row_images(self.key_schema, keyed)

    def _output_row(self, key: bytes) -> Optional[bytes]:
        members = self.groups.get(key)
        if not members:
            return None
        images = list(members)
        weights = [members[image] for image in images]
        if any(w < 0 for w in weights):
            raise QueryError(
                "group state went negative: a delta retracted a row the "
                "view never saw (corrupt chain)")
        rows = self.in_schema.from_bytes(b"".join(images), copy=True)
        count = sum(weights)
        sums = [0.0] * len(self.value_columns)
        mins: list[Optional[float]] = [None] * len(self.value_columns)
        maxs: list[Optional[float]] = [None] * len(self.value_columns)
        for i, weight in enumerate(weights):
            for j, name in enumerate(self.value_columns):
                v = float(rows[name][i])
                sums[j] += weight * v
                if mins[j] is None or v < mins[j]:
                    mins[j] = v
                if maxs[j] is None or v > maxs[j]:
                    maxs[j] = v
        out = self.out_schema.empty(1)
        if self.key_schema is not None:
            key_row = self.key_schema.from_bytes(key, copy=True)
            for name in self.group_by:
                out[name][0] = key_row[name][0]
        for spec in self.aggregates:
            j = (self.value_columns.index(spec.column)
                 if spec.column in self.value_columns else 0)
            if spec.func == "count":
                out[spec.alias][0] = count
            elif spec.func == "sum":
                out[spec.alias][0] = sums[j]
            elif spec.func == "avg":
                out[spec.alias][0] = sums[j] / count
            elif spec.func == "min":
                out[spec.alias][0] = mins[j]
            else:
                out[spec.alias][0] = maxs[j]
        return row_images(self.out_schema, out)[0]

    def apply(self, delta: ZSet) -> ZSet:
        out = ZSet(self.out_schema)
        images = list(delta.weights)
        rows, weights = delta.decode()
        keys = self._key_images(rows)
        touched: dict[bytes, list[tuple[bytes, int]]] = {}
        for image, key, weight in zip(images, keys, weights.tolist()):
            touched.setdefault(key, []).append((image, weight))
        for key, changes in touched.items():
            old = self._output_row(key)
            members = self.groups.setdefault(key, {})
            for image, weight in changes:
                total = members.get(image, 0) + weight
                if total:
                    members[image] = total
                else:
                    members.pop(image, None)
            if not members:
                self.groups.pop(key, None)
            new = self._output_row(key)
            if old is not None:
                out.add(old, -1)
            if new is not None:
                out.add(new, 1)
        return out

    @property
    def state_entries(self) -> int:
        return sum(len(m) for m in self.groups.values())


class JoinStage(_Stage):
    """Bilinear: ``Δ(R ⋈ S) = ΔR ⋈ S + R ⋈ ΔS + ΔR ⋈ ΔS``.

    Both sides are indexed by the serialized key image; an output row is
    the probe row's bytes concatenated with the payload column slices of
    the matching build row (packed schemas concatenate exactly), at
    weight ``w_probe · w_build``.  Build keys must stay unique — the
    same contract the engine's hash-join and the reference model
    enforce — checked on every index update.  A static build side is
    loaded once via :meth:`load_static` and contributes no deltas, which
    zeroes two of the three terms and lets the stage skip maintaining
    the probe index entirely.
    """

    def __init__(self, probe_schema: Schema, build_in_schema: Schema,
                 build_name: str, build_key: str, probe_key: str,
                 payload: tuple[str, ...], dynamic: bool,
                 prestages: tuple[_Stage, ...] = ()):
        self.probe_schema = probe_schema
        self.build_in_schema = build_in_schema
        self.build_name = build_name
        self.build_key = build_key
        self.probe_key = probe_key
        self.payload = tuple(payload)
        self.dynamic = dynamic
        self.prestages = tuple(prestages)
        self.build_schema = (prestages[-1].out_schema if prestages
                             else build_in_schema)
        self.out_schema = join_output_schema(probe_schema, self.build_schema,
                                             list(payload))
        probe_fields = probe_schema.dtype.fields
        build_fields = self.build_schema.dtype.fields
        self._probe_key_slice = self._field_slice(probe_fields, probe_key)
        self._build_key_slice = self._field_slice(build_fields, build_key)
        self._payload_slices = [self._field_slice(build_fields, name)
                                for name in self.payload]
        #: key image -> {row image -> weight}, per side.
        self.build_index: dict[bytes, dict[bytes, int]] = {}
        self.probe_index: dict[bytes, dict[bytes, int]] = {}

    @staticmethod
    def _field_slice(fields, name: str) -> slice:
        dtype, offset = fields[name][0], fields[name][1]
        return slice(offset, offset + dtype.itemsize)

    def _through_prestages(self, delta: ZSet) -> ZSet:
        for stage in self.prestages:
            delta = stage.apply(delta)
        return delta

    def _by_key(self, zset: ZSet, key_slice: slice
                ) -> dict[bytes, dict[bytes, int]]:
        keyed: dict[bytes, dict[bytes, int]] = {}
        for image, weight in zset:
            keyed.setdefault(image[key_slice], {})[image] = weight
        return keyed

    @staticmethod
    def _merge_index(index: dict[bytes, dict[bytes, int]],
                     deltas: dict[bytes, dict[bytes, int]]) -> None:
        for key, entries in deltas.items():
            slot = index.setdefault(key, {})
            for image, weight in entries.items():
                total = slot.get(image, 0) + weight
                if total:
                    slot[image] = total
                else:
                    slot.pop(image, None)
            if not slot:
                index.pop(key, None)

    def _check_build_keys(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            slot = self.build_index.get(key)
            if not slot:
                continue
            if len(slot) > 1 or any(w < 0 or w > 1 for w in slot.values()):
                raise QueryError(
                    f"duplicate build key in {self.build_name!r}: the "
                    f"build side of a view join must keep unique join "
                    f"keys at every epoch")

    def _emit(self, out: ZSet, probe_side: dict[bytes, dict[bytes, int]],
              build_side: dict[bytes, dict[bytes, int]]) -> None:
        if not probe_side or not build_side:
            return
        small = (probe_side if len(probe_side) <= len(build_side)
                 else build_side)
        for key in small:
            probe_entries = probe_side.get(key)
            build_entries = build_side.get(key)
            if not probe_entries or not build_entries:
                continue
            for build_image, build_weight in build_entries.items():
                tail = b"".join(build_image[s] for s in self._payload_slices)
                for probe_image, probe_weight in probe_entries.items():
                    out.add(probe_image + tail, probe_weight * build_weight)

    def load_static(self, build_delta: ZSet) -> None:
        """Index the static build side's full contents at bootstrap."""
        keyed = self._by_key(self._through_prestages(build_delta),
                             self._build_key_slice)
        self._merge_index(self.build_index, keyed)
        self._check_build_keys(keyed)

    def step(self, probe_delta: ZSet, build_delta: Optional[ZSet]) -> ZSet:
        if build_delta is None or not self.dynamic:
            build_keyed: dict[bytes, dict[bytes, int]] = {}
        else:
            build_keyed = self._by_key(self._through_prestages(build_delta),
                                       self._build_key_slice)
        probe_keyed = self._by_key(probe_delta, self._probe_key_slice)
        out = ZSet(self.out_schema)
        self._emit(out, probe_keyed, self.build_index)   # ΔR ⋈ S
        self._emit(out, self.probe_index, build_keyed)   # R ⋈ ΔS
        self._emit(out, probe_keyed, build_keyed)        # ΔR ⋈ ΔS
        if self.dynamic:
            self._merge_index(self.probe_index, probe_keyed)
            self._merge_index(self.build_index, build_keyed)
            self._check_build_keys(build_keyed)
        return out

    def apply(self, delta: ZSet) -> ZSet:
        return self.step(delta, None)

    @property
    def state_entries(self) -> int:
        return (sum(len(s) for s in self.build_index.values())
                + sum(len(s) for s in self.probe_index.values()))


# -- circuit compilation ------------------------------------------------------

@dataclass
class Circuit:
    """A compiled incremental query: stages in execution order.

    ``dynamic_tables`` maps each versioned input (the base plus any
    versioned build sides) to its catalog handle; ``static_loads`` pairs
    each join stage with the static build handle it must index at
    bootstrap.
    """

    base_name: str
    base_handle: object
    in_schema: Schema
    stages: list[_Stage]
    out_schema: Schema
    dynamic_tables: dict[str, object]
    static_loads: list[tuple[JoinStage, object]]

    def step(self, deltas: dict[str, ZSet]) -> ZSet:
        """Propagate one batch of input deltas; returns the output delta."""
        current = deltas.get(self.base_name)
        if current is None:
            current = ZSet(self.in_schema)
        for stage in self.stages:
            if isinstance(stage, JoinStage) and stage.dynamic:
                current = stage.step(current, deltas.get(stage.build_name))
            else:
                current = stage.apply(current)
        return current

    @property
    def depth(self) -> int:
        return max(1, len(self.stages))

    @property
    def state_entries(self) -> int:
        return sum(stage.state_entries for stage in self.stages)


def _query_stages(query: Query, schema: Schema, *, head: bool,
                  dynamic_tables: dict[str, object],
                  static_loads: list[tuple[JoinStage, object]],
                  base_name: str) -> tuple[list[_Stage], Schema]:
    """Lower one offloadable Query into stages, in the engine's fixed
    operator order (regex → selection → join → projection → distinct |
    group-by).  Arm sub-queries (``head=False``) may only carry the
    linear prefix the binder pushes down."""
    if query.decrypt_input or query.encrypt_output is not None:
        raise QueryError("encrypted tables cannot back a materialized "
                         "view: deltas must be readable client-side")
    stages: list[_Stage] = []
    if query.regex is not None:
        stage = RegexStage(schema, query.regex.column, query.regex.pattern)
        stages.append(stage)
    if query.predicate is not None:
        stages.append(FilterStage(schema, query.predicate))
    if query.join is not None:
        if not head:
            raise QueryError("nested joins inside a build-side scan are "
                             "not maintainable")
        stage = _make_join_stage(schema, query.join.build_table,
                                 query.join.build_key, query.join.probe_key,
                                 tuple(query.join.payload), None,
                                 dynamic_tables, static_loads, base_name)
        stages.append(stage)
        schema = stage.out_schema
    if query.projection is not None:
        stage = ProjectStage(schema, tuple(query.projection))
        stages.append(stage)
        schema = stage.out_schema
    if query.distinct:
        if query.distinct_columns is not None and (
                set(query.distinct_columns) != set(schema.names)):
            raise QueryError(
                "DISTINCT over a proper column subset keeps the first-seen "
                "full row — an arrival-order-dependent result no "
                "incremental view can maintain; project the key columns "
                "first")
        stages.append(DistinctStage(schema))
    if query.group_by is not None or query.aggregates:
        if not head:
            raise QueryError("aggregates inside a build-side scan are not "
                             "maintainable")
        stage = GroupStage(schema, tuple(query.group_by or ()),
                           tuple(query.aggregates))
        stages.append(stage)
        schema = stage.out_schema
    return stages, schema


def _make_join_stage(probe_schema: Schema, build_handle, build_key: str,
                     probe_key: str, payload: tuple[str, ...],
                     arm_query: Optional[Query],
                     dynamic_tables: dict[str, object],
                     static_loads: list[tuple[JoinStage, object]],
                     base_name: str) -> JoinStage:
    build_name = build_handle.name
    dynamic = is_versioned_handle(build_handle)
    prestages: tuple[_Stage, ...] = ()
    if arm_query is not None:
        sub, _ = _query_stages(arm_query, build_handle.schema, head=False,
                               dynamic_tables=dynamic_tables,
                               static_loads=static_loads,
                               base_name=base_name)
        if any(not isinstance(s, (RegexStage, FilterStage, ProjectStage))
               for s in sub):
            raise QueryError("build-side scans must stay linear "
                             "(regex/filter/projection) to be maintainable")
        prestages = tuple(sub)
    stage = JoinStage(probe_schema, build_handle.schema, build_name,
                      build_key, probe_key, payload, dynamic, prestages)
    if dynamic:
        if build_name == base_name or build_name in dynamic_tables:
            raise QueryError(
                f"versioned table {build_name!r} feeds this view twice; "
                f"each delta chain may drive at most one circuit input")
        dynamic_tables[build_name] = build_handle
    else:
        static_loads.append((stage, build_handle))
    return stage


def compile_circuit(bound: BoundSelect) -> Circuit:
    """Compile a bound SELECT into an incremental circuit.

    Rejects shapes whose results depend on arrival order rather than
    content (ORDER BY, LIMIT, subset-DISTINCT) and inputs without a
    delta chain to subscribe to (non-versioned FROM tables).
    """
    base = bound.base
    if not is_versioned_handle(base):
        raise QueryError(
            f"view base table {bound.table!r} is not versioned: only a "
            f"delta chain can drive incremental maintenance")
    dynamic_tables: dict[str, object] = {bound.table: base}
    static_loads: list[tuple[JoinStage, object]] = []
    schema = base.schema
    stages, schema = _query_stages(bound.query, schema, head=True,
                                   dynamic_tables=dynamic_tables,
                                   static_loads=static_loads,
                                   base_name=bound.table)
    for arm in bound.arms:
        stage = _make_join_stage(schema, arm.build, arm.build_key,
                                 arm.probe_key, tuple(arm.payload),
                                 arm.query, dynamic_tables, static_loads,
                                 bound.table)
        stages.append(stage)
        schema = stage.out_schema
    for op in bound.ops:
        if isinstance(op, BoundEval):
            stages.append(EvalStage(op.items, op.schema))
            schema = op.schema
        elif isinstance(op, BoundFilter):
            stages.append(FilterStage(schema, op.predicate))
        elif isinstance(op, BoundAggregate):
            stage = GroupStage(schema, tuple(op.group_by),
                               tuple(op.aggregates))
            stages.append(stage)
            schema = stage.out_schema
        elif isinstance(op, BoundDistinct):
            stages.append(DistinctStage(schema))
        elif isinstance(op, (BoundSort, BoundLimit)):
            raise QueryError(
                "ORDER BY / LIMIT are not incrementally maintainable: a "
                "Z-set has no row order; sort the subscriber's "
                "materialization instead")
        else:
            raise QueryError(f"unknown bound op {type(op).__name__}")
    if tuple(schema.names) != tuple(bound.schema.names):
        raise QueryError(
            f"circuit output schema {schema.names} diverged from the "
            f"bound statement's {bound.schema.names} (compiler bug)")
    return Circuit(base_name=bound.table, base_handle=base,
                   in_schema=base.schema, stages=stages, out_schema=schema,
                   dynamic_tables=dynamic_tables, static_loads=static_loads)


# -- chain tracking -----------------------------------------------------------

class ChainTracker(ChainListener):
    """Client-side mirror of one version chain, as Z-set deltas.

    Keeps the row-id → row-image map at ``processed_epoch`` (pinned, so
    compaction parks rather than frees the segments a pending refresh
    still needs), queues committed segments via the listener interface,
    and turns a batch of segment byte images into one consolidated
    Z-set delta: insert → +1, delete → −1 of the remembered image,
    update → −old/+new.  Cluster tables run one tracker per shard chain
    (per-shard row-id spaces overlap; Z-set addition merges the shard
    deltas order-independently).
    """

    def __init__(self, table_name: str, chain: VersionedTable):
        self.table_name = table_name
        self.chain = chain
        #: Set by the owning client: the per-node client whose connection
        #: reads this chain's segment bytes (opaque to this module).
        self.owner: object = None
        self.images: dict[int, bytes] = {}
        self.pending: list[DeltaSegment] = []
        self.processed_epoch = chain.epoch
        self.pin_token: Optional[int] = chain.pin(chain.epoch)
        self.loaded = False
        self.compactions_seen = 0
        chain.add_listener(self)

    # -- ChainListener ----------------------------------------------------
    def on_commit(self, table: VersionedTable,
                  segment: Optional[DeltaSegment]) -> None:
        if segment is not None:
            self.pending.append(segment)

    def on_compaction(self, table: VersionedTable) -> None:
        self.compactions_seen += 1

    # -- bootstrap --------------------------------------------------------
    def load(self, rows: np.ndarray, rowids: np.ndarray) -> None:
        """Install the snapshot read at ``processed_epoch``."""
        self.images = {int(rid): image
                       for rid, image in zip(rowids.tolist(),
                                             row_images(self.chain.schema,
                                                        rows))}
        self.loaded = True

    def bootstrap_into(self, zset: ZSet) -> None:
        for image in self.images.values():
            zset.add(image, 1)

    # -- refresh ----------------------------------------------------------
    def pending_upto(self, target_epoch: int) -> list[DeltaSegment]:
        return [seg for seg in self.pending if seg.epoch <= target_epoch]

    def apply_batch(self, batch: list[tuple[DeltaSegment, bytes]]) -> ZSet:
        """Fold read segment images into the mirror; returns the delta."""
        delta = ZSet(self.chain.schema)
        consumed: set[int] = set()
        schema = self.chain.schema
        for segment, data in batch:
            consumed.add(id(segment))
            if segment.kind == "delete":
                rowids = delete_schema().from_bytes(data)[ROWID_COLUMN]
                for rid in rowids.tolist():
                    image = self.images.pop(int(rid), None)
                    if image is None:
                        raise QueryError(
                            f"delete of unknown row id {rid} on "
                            f"{self.table_name!r} (corrupt chain mirror)")
                    delta.add(image, -1)
                continue
            decoded = delta_schema(schema).from_bytes(data, copy=True)
            payload = schema.empty(len(decoded))
            for name in schema.names:
                payload[name] = decoded[name]
            images = row_images(schema, payload)
            rowids = decoded[ROWID_COLUMN].tolist()
            if segment.kind == "insert":
                for rid, image in zip(rowids, images):
                    self.images[int(rid)] = image
                    delta.add(image, 1)
            else:                                   # update
                for rid, image in zip(rowids, images):
                    old = self.images.get(int(rid))
                    if old is None:
                        raise QueryError(
                            f"update of unknown row id {rid} on "
                            f"{self.table_name!r} (corrupt chain mirror)")
                    delta.add(old, -1)
                    delta.add(image, 1)
                    self.images[int(rid)] = image
        self.pending = [seg for seg in self.pending
                        if id(seg) not in consumed]
        return delta

    def repin(self) -> list:
        """Move the pin to ``processed_epoch``; returns freed segments."""
        old = self.pin_token
        self.pin_token = self.chain.pin(self.processed_epoch)
        return self.chain.unpin(old) if old is not None else []

    def detach(self) -> list:
        """Stop listening and release the pin; returns freed segments."""
        self.chain.remove_listener(self)
        freed = (self.chain.unpin(self.pin_token)
                 if self.pin_token is not None else [])
        self.pin_token = None
        self.pending = []
        return freed


# -- views, subscriptions, catalog -------------------------------------------

@dataclass
class RefreshStats:
    """What one refresh moved and touched (the fig20 measurables)."""

    segments: int = 0
    delta_rows: int = 0
    bytes_read: int = 0
    output_delta_rows: int = 0
    views_stepped: int = 0


class MaterializedView:
    """One registered view: compiled circuit + cumulative Z-set state."""

    def __init__(self, name: str, sql: str, bound: BoundSelect,
                 circuit: Circuit):
        self.name = name
        self.sql = sql
        self.bound = bound
        self.circuit = circuit
        self.schema = circuit.out_schema
        self.contents = ZSet(circuit.out_schema)
        #: input table -> last epoch folded into ``contents``.
        self.epochs: dict[str, int] = {}
        self.subscriptions: list[Subscription] = []
        self.refresh_count = 0
        self.bootstrap_bytes = 0

    @property
    def num_rows(self) -> int:
        return self.contents.total_weight

    def materialize(self) -> np.ndarray:
        """The full view in canonical (sorted byte-image) order."""
        return self.contents.materialize()

    def sha256(self) -> str:
        return self.contents.sha256()

    def digest(self) -> int:
        return self.contents.digest()

    def __repr__(self) -> str:
        return (f"MaterializedView({self.name!r}, {self.num_rows} rows, "
                f"epochs {self.epochs}, {len(self.subscriptions)} "
                f"subscriber(s))")


class Subscription:
    """A subscriber's pushed copy of a view.

    ``auto=True`` (the default) asks the owning client to propagate
    every committed write batch immediately; ``auto=False`` receives
    updates only on explicit refreshes.  The subscriber state is folded
    from pushed deltas alone — never copied from the view after
    bootstrap — so ``sha256()`` equality with the view (and with a full
    rescan) is the end-to-end delivery check, and ``digest()`` is its
    O(1)-per-delta integrity shortcut.
    """

    def __init__(self, view: MaterializedView, auto: bool = True):
        self.view = view
        self.auto = auto
        self.state = view.contents.copy()
        self.epochs = dict(view.epochs)
        self.updates_received = 0
        self.rows_pushed = 0
        self.bytes_pushed = 0

    def push(self, delta: ZSet, epochs: dict[str, int]) -> None:
        self.state.update(delta)
        self.epochs = dict(epochs)
        self.updates_received += 1
        self.rows_pushed += delta.entry_count
        self.bytes_pushed += delta.entry_count * delta.schema.row_width

    def rebind(self, view: MaterializedView) -> None:
        """Re-bootstrap from ``view`` (e.g. after a failed refresh)."""
        self.view = view
        self.state = view.contents.copy()
        self.epochs = dict(view.epochs)

    def materialize(self) -> np.ndarray:
        return self.state.materialize()

    def sha256(self) -> str:
        return self.state.sha256()

    def digest(self) -> int:
        return self.state.digest()


class ViewCatalog:
    """All views and chain trackers of one client.

    Pure bookkeeping: the owning client performs the reads, charges the
    simulated time, then hands the fetched segment bytes to
    :meth:`apply_refresh`, which is atomic — it either folds a whole
    batch into every registered view and its subscribers or (on a
    decode error) leaves no partial state behind, because all reads
    happened before any state mutation.  Refreshes are engine-wide:
    trackers are shared between views over the same table, so segments
    are consumed once and every view advances to the same epochs.
    """

    def __init__(self):
        self.views: dict[str, MaterializedView] = {}
        self.trackers: dict[str, list[ChainTracker]] = {}
        self._serial = 0

    # -- naming / registration -------------------------------------------
    def fresh_name(self) -> str:
        self._serial += 1
        return f"view{self._serial}"

    def register(self, view: MaterializedView) -> None:
        if view.name in self.views:
            raise QueryError(f"view {view.name!r} already exists")
        self.views[view.name] = view

    def drop(self, name: str) -> list[ChainTracker]:
        """Remove a view; returns the trackers no other view still needs
        (caller detaches them and frees what their pins held)."""
        if name not in self.views:
            raise QueryError(f"unknown view {name!r}")
        del self.views[name]
        still_needed = {table for view in self.views.values()
                        for table in view.circuit.dynamic_tables}
        orphans: list[ChainTracker] = []
        for table in list(self.trackers):
            if table not in still_needed:
                orphans.extend(self.trackers.pop(table))
        return orphans

    # -- refresh bookkeeping ----------------------------------------------
    def has_pending(self) -> bool:
        return any(tracker.pending
                   for trackers in self.trackers.values()
                   for tracker in trackers)

    def needs_auto_refresh(self) -> bool:
        """Any auto-subscribed view with unconsumed input segments?"""
        for view in self.views.values():
            if not any(sub.auto for sub in view.subscriptions):
                continue
            for table in view.circuit.dynamic_tables:
                for tracker in self.trackers.get(table, ()):
                    if tracker.pending:
                        return True
        return False

    def pending_work(self) -> tuple[list[tuple[ChainTracker, DeltaSegment]],
                                    dict[ChainTracker, int]]:
        """Segments to read this refresh + per-tracker target epochs.

        Targets are captured *now* (synchronously): segments committed
        while the refresh's reads are in flight carry later epochs, stay
        pending, and belong to the next refresh.
        """
        work: list[tuple[ChainTracker, DeltaSegment]] = []
        targets: dict[ChainTracker, int] = {}
        for trackers in self.trackers.values():
            for tracker in trackers:
                target = tracker.chain.epoch
                targets[tracker] = target
                for segment in tracker.pending_upto(target):
                    work.append((tracker, segment))
        return work, targets

    def apply_refresh(self, reads: list[tuple[ChainTracker, DeltaSegment,
                                              bytes]],
                      targets: dict[ChainTracker, int]) -> RefreshStats:
        """Fold fetched segment bytes into every view — yield-free."""
        stats = RefreshStats()
        by_tracker: dict[ChainTracker, list[tuple[DeltaSegment, bytes]]] = {}
        for tracker, segment, data in reads:
            by_tracker.setdefault(tracker, []).append((segment, data))
            stats.segments += 1
            stats.delta_rows += segment.num_rows
            stats.bytes_read += len(data)
        deltas: dict[str, ZSet] = {}
        for tracker, batch in by_tracker.items():
            delta = tracker.apply_batch(batch)
            if tracker.table_name in deltas:
                deltas[tracker.table_name].update(delta)
            else:
                deltas[tracker.table_name] = delta
        for tracker, target in targets.items():
            tracker.processed_epoch = max(tracker.processed_epoch, target)
        epochs_now = {table: trackers[0].processed_epoch
                      for table, trackers in self.trackers.items() if trackers}
        for view in self.views.values():
            inputs = {table: deltas[table]
                      for table in view.circuit.dynamic_tables
                      if table in deltas and not deltas[table].is_empty}
            for table in view.circuit.dynamic_tables:
                if table in epochs_now:
                    view.epochs[table] = epochs_now[table]
            if inputs:
                out = view.circuit.step(inputs)
                view.contents.update(out)
                view.refresh_count += 1
                stats.views_stepped += 1
                stats.output_delta_rows += out.entry_count
                for sub in view.subscriptions:
                    sub.push(out, view.epochs)
            else:
                for sub in view.subscriptions:
                    sub.epochs = dict(view.epochs)
        return stats
