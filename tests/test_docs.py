"""User-facing docs stay in lock-step with the code.

Mirrors the CI ``docs`` job locally: the docs exist, every file they
reference resolves (``tools/check_docs.py``), and the CLI references that
used to dangle (``cli.py`` -> EXPERIMENTS.md) now hold.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_user_facing_docs_exist():
    for doc in ("README.md", "EXPERIMENTS.md", "docs/ARCHITECTURE.md",
                "docs/OPERATORS.md"):
        assert (REPO / doc).is_file(), f"{doc} missing"


def test_all_doc_references_resolve(capsys):
    check_docs = load_check_docs()
    assert check_docs.main() == 0, capsys.readouterr().err


def test_intra_doc_anchor_links_resolve():
    check_docs = load_check_docs()
    assert check_docs.check_anchors() == []


def test_anchor_checker_slugging_matches_github():
    check_docs = load_check_docs()
    assert check_docs.github_slug("operators/regex_op.py") == \
        "operatorsregex_oppy"
    assert check_docs.github_slug("Shared timing terms") == \
        "shared-timing-terms"
    assert check_docs.github_slug("The cluster layer (PR 2)") == \
        "the-cluster-layer-pr-2"


def test_anchor_checker_sees_operators_links():
    """OPERATORS.md really exercises the anchor checker (it links its own
    sections), and the link parser extracts (path, anchor) pairs."""
    check_docs = load_check_docs()
    text = (REPO / "docs/OPERATORS.md").read_text()
    links = check_docs.anchor_links(text)
    assert ("", "operatorsselectionpy") in links
    assert ("", "shared-timing-terms") in links


def test_anchor_matching_is_case_sensitive():
    """GitHub anchors are lowercase and fragment matching is
    case-sensitive; the checker must not paper over mixed-case links."""
    check_docs = load_check_docs()
    slugs = check_docs.heading_slugs("## Shared timing terms")
    assert "shared-timing-terms" in slugs
    assert "Shared-Timing-Terms" not in slugs


def test_heading_scan_ignores_fenced_code_blocks():
    """Shell comments inside ``` fences must not register as headings."""
    check_docs = load_check_docs()
    text = "# Real heading\n```sh\n# run the sweep\npython x\n```\n## After\n"
    slugs = check_docs.heading_slugs(text)
    assert slugs == {"real-heading", "after"}


def test_cross_doc_anchor_targets_normalize():
    """Upward-relative targets like ../README.md map onto the checked
    docs instead of silently escaping anchor validation."""
    import posixpath

    check_docs = load_check_docs()
    target = posixpath.normpath(
        (Path("docs/OPERATORS.md").parent / "../README.md").as_posix())
    assert target == "README.md"
    assert target in check_docs.DOCS


def test_every_operator_module_documented():
    check_docs = load_check_docs()
    assert check_docs.operators_missing_sections() == []


def test_operator_coverage_check_would_catch_new_module():
    """Sanity: the coverage check keys off real module names."""
    check_docs = load_check_docs()
    modules = sorted(p.name for p
                     in (REPO / "src/repro/operators").glob("*.py")
                     if not p.name.startswith("_"))
    assert "selection.py" in modules and len(modules) >= 16
    text = (REPO / "docs/OPERATORS.md").read_text()
    for module in modules:
        assert module in text


def test_cli_experiments_reference_resolves():
    """cli.py points readers at EXPERIMENTS.md; it must exist and cover
    every experiment id the CLI exposes."""
    import repro.cli as cli

    assert "EXPERIMENTS.md" in (REPO / "src/repro/cli.py").read_text()
    text = (REPO / "EXPERIMENTS.md").read_text()
    for key in cli.EXPERIMENTS:
        assert key in text, f"EXPERIMENTS.md does not document {key!r}"


def test_readme_documents_tier1_and_bench_commands():
    text = (REPO / "README.md").read_text()
    assert "python -m pytest -x -q" in text
    assert "benchmarks/bench_perf.py" in text
    assert "python -m repro" in text
    assert "ROADMAP.md" in text
