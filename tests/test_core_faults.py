"""Fault injection and degraded-mode execution.

The properties under test, in the order docs/FAULTS.md states them:

1. **Determinism** — the same plan against the same workload produces an
   identical applied-fault log, identical ``sim_ns``, and identical
   per-query outcomes; an *empty* plan is byte- and timing-identical to
   no fault layer at all.
2. **Typed failures, never wrong bytes** — a fault surfaces as a
   :class:`FaultError` subclass at the calling verb; a query either
   returns the exact no-fault bytes or raises.  Hangs are impossible
   (every test drains its simulator and asserts process completion).
3. **Recovery** — replica failover, retries under ``RetryPolicy``,
   broadcast re-replication, ship fallback on region failure, and the
   two-phase epoch abort each restore service without breaking 2.

``CHAOS_SEED`` (set by the CI chaos matrix) offsets every random plan
seed so each matrix leg explores a different schedule with the same
assertions.
"""

import hashlib
import os

import pytest

from repro.common.config import FarviewConfig, MemoryConfig
from repro.common.errors import (DegradedResultError, FaultError,
                                 NodeFailedError, QueryError,
                                 RegionFailedError, RequestTimeoutError)
from repro.core.api import ClusterClient, FarviewClient
from repro.core.cluster import FarviewCluster
from repro.core.cost_model import PlanStats
from repro.core.faults import (FaultEvent, FaultInjector, FaultPlan,
                               RetryPolicy)
from repro.core.node import FarviewNode
from repro.core.partition import PartitionSpec
from repro.core.query import select_star
from repro.core.table import FTable
from repro.sim.engine import Simulator
from repro.workloads.generator import selection_workload

KB = 1024
MB = 1024 * KB

#: CI chaos matrix: each leg runs the suite under a different seed offset.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

TEST_CONFIG = FarviewConfig(memory=MemoryConfig(
    channels=2, channel_capacity=8 * MB, page_size=64 * KB))


def sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def make_single(buffer_capacity: int = 256 * KB):
    sim = Simulator()
    node = FarviewNode(sim, TEST_CONFIG)
    client = FarviewClient(node, buffer_capacity=buffer_capacity)
    client.open_connection()
    return sim, node, client


def upload(client, name: str, num_rows: int = 512, seed: int = 3):
    wl = selection_workload(num_rows, 0.5, seed=seed)
    table = FTable(name, wl.schema, num_rows)
    client.alloc_table_mem(table)
    client.table_write(table, wl.rows)
    return table, select_star(wl.predicate), wl


def make_cluster(num_nodes: int, replicas: int, num_rows: int = 512,
                 seed: int = 3):
    sim = Simulator()
    cluster = FarviewCluster(sim, num_nodes, TEST_CONFIG)
    cc = ClusterClient(cluster)
    cc.open_connection()
    wl = selection_workload(num_rows, 0.5, seed=seed)
    sharded = cc.create_table("T", wl.schema, wl.rows,
                              PartitionSpec(replicas=replicas))
    query = select_star(wl.predicate)
    cc.far_view(sharded, query)  # warm every shard pipeline
    return sim, cluster, cc, sharded, query, wl


# ---------------------------------------------------------------------------
# Plans and determinism
# ---------------------------------------------------------------------------

class TestPlans:
    def test_events_sorted_and_validated(self):
        plan = FaultPlan([FaultEvent(at_ns=30.0, kind="node_crash"),
                          FaultEvent(at_ns=10.0, kind="node_recover")])
        assert [ev.at_ns for ev in plan] == [10.0, 30.0]
        assert len(plan) == 2
        with pytest.raises(QueryError):
            FaultEvent(at_ns=0.0, kind="meteor_strike")
        with pytest.raises(QueryError):
            FaultEvent(at_ns=-1.0, kind="node_crash")
        with pytest.raises(QueryError):
            FaultEvent(at_ns=0.0, kind="link_degrade", loss=1.0)

    def test_random_plan_is_seed_reproducible(self):
        kwargs = dict(num_nodes=4, horizon_ns=100_000.0, crashes=2,
                      degrades=2, region_fails=1, stragglers=1)
        seed = 7 + CHAOS_SEED
        a = FaultPlan.random(seed, **kwargs)
        b = FaultPlan.random(seed, **kwargs)
        assert a.events == b.events
        assert "node_crash" in a.describe()
        # A different seed yields a different schedule.
        c = FaultPlan.random(seed + 1, **kwargs)
        assert c.events != a.events

    def test_injector_rejects_bad_targets(self):
        sim, node, _client = make_single()
        with pytest.raises(QueryError):
            FaultInjector("not a node")
        with pytest.raises(QueryError):
            FaultInjector([])
        other = FarviewNode(Simulator(), TEST_CONFIG)
        with pytest.raises(QueryError):
            FaultInjector([node, other])  # different simulators
        injector = FaultInjector(node, FaultPlan())
        injector.install()
        with pytest.raises(QueryError):
            injector.install()  # idempotence guard

    def test_same_plan_same_outcomes(self):
        """Same seed → identical fault log, sim_ns, and query outcomes."""

        def run_once():
            sim, cluster, cc, sharded, query, _wl = make_cluster(4, 2)
            cc.retry_policy = RetryPolicy(max_attempts=2,
                                          base_backoff_ns=1_000.0)
            plan = FaultPlan.random(11 + CHAOS_SEED, 4,
                                    horizon_ns=sim.now + 50_000.0,
                                    crashes=2, degrades=1)
            injector = FaultInjector(cluster, plan).install()
            outcomes = []

            def worker():
                for _round in range(4):
                    try:
                        result = yield from cc.far_view_proc(sharded, query)
                    except FaultError as exc:
                        outcomes.append(("err", type(exc).__name__))
                    else:
                        outcomes.append(("ok", sha(result.data)))

            proc = sim.process(worker())
            sim.run()
            assert proc.triggered
            return injector.applied, sim.now, outcomes

        first = run_once()
        second = run_once()
        assert first == second

    def test_empty_plan_is_invisible(self):
        """Installing an empty plan changes neither timing nor bytes."""

        def run_once(with_injector):
            sim, cluster, cc, sharded, query, _wl = make_cluster(2, 1)
            if with_injector:
                FaultInjector(cluster, FaultPlan()).install()
            result, _ = cc.far_view(sharded, query)
            return sim.now, sha(result.data)

        assert run_once(False) == run_once(True)


# ---------------------------------------------------------------------------
# Single-node failures: typed errors, no hangs
# ---------------------------------------------------------------------------

class TestSingleNodeFaults:
    def test_crash_before_request_raises_typed(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T")
        FaultInjector(node).crash(0)
        with pytest.raises(NodeFailedError):
            client.far_view(table, query)
        with pytest.raises(NodeFailedError):
            client.table_read(table)

    def test_crash_mid_stream_raises_and_never_hangs(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T", num_rows=2048)
        reference, _ = client.far_view(table, query)
        caught = []

        def reader():
            try:
                yield from client.far_view_proc(table, query)
            except FaultError as exc:
                caught.append(exc)

        proc = sim.process(reader())
        injector = FaultInjector(node)
        sim.schedule(1_000.0, injector.crash, 0)  # mid-stream
        sim.run()
        assert proc.triggered, "crashed request hung"
        assert len(caught) == 1 and isinstance(caught[0], NodeFailedError)
        # Recovery restores service.  (Amnesia — pre-crash handles
        # rejected by incarnation — is enforced at the placement layer;
        # see TestClusterRecovery.  A bare FarviewClient holding its own
        # table handle sees the node serve again.)
        injector.recover(0)
        assert not node.failed
        again, _ = client.far_view(table, query)
        assert sha(again.data) == sha(reference.data)

    def test_link_degrade_slows_and_restore_heals_exactly(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T")
        client.far_view(table, query)  # warm (exclude reconfiguration)
        result, baseline_ns = client.far_view(table, query)
        baseline_sha = sha(result.data)
        injector = FaultInjector(node)
        injector.degrade_link(0, latency_add_ns=2_000.0, rate_factor=0.25,
                              loss=0.1)
        slow, slow_ns = client.far_view(table, query)
        assert slow_ns > baseline_ns
        assert sha(slow.data) == baseline_sha, \
            "loss model corrupted payload bytes"
        injector.restore_link(0)
        healed, healed_ns = client.far_view(table, query)
        assert healed_ns == baseline_ns  # exactly the pre-fault timing
        assert sha(healed.data) == baseline_sha
        assert [kind for _t, kind, _n in injector.applied] == \
            ["link_degrade", "link_restore"]

    def test_region_failure_is_typed_and_ship_fallback_matches_bytes(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T")
        reference, _ = client.far_view(table, query)
        FaultInjector(node).fail_region(0, 0)
        # The raw offload verb refuses typed; the planner's auto path
        # falls back to shipping and must reproduce the exact bytes.
        with pytest.raises(RegionFailedError):
            client.far_view(table, query)
        result, _ = client.far_view_planned(
            table, query, placement="auto",
            stats=PlanStats(selectivity=0.5))
        assert result.data == reference.data
        with pytest.raises(RegionFailedError):
            client.far_view_planned(table, query, placement="offload",
                                    stats=PlanStats(selectivity=0.5))

    def test_region_repair_restores_offload(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T")
        reference, _ = client.far_view(table, query)
        injector = FaultInjector(node)
        injector.fail_region(0, 0)
        injector.repair_region(0, 0)
        result, _ = client.far_view(table, query)
        assert result.data == reference.data

    def test_retry_policy_deadline_discards_late_results(self):
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T", num_rows=2048)
        client.retry_policy = RetryPolicy(max_attempts=2,
                                          base_backoff_ns=500.0,
                                          deadline_ns=1.0)  # unmeetable
        with pytest.raises(RequestTimeoutError):
            client.far_view(table, query)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_ns=1_000.0,
                             max_backoff_ns=3_000.0)
        assert [policy.backoff_ns(a) for a in (1, 2, 3, 4)] == \
            [1_000.0, 2_000.0, 3_000.0, 3_000.0]
        with pytest.raises(QueryError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(QueryError):
            RetryPolicy(deadline_ns=0.0)

    def test_retry_policy_survives_transient_crash(self):
        """Crash + recover inside the backoff window: the first attempt
        fails typed, the retry lands on the healed node and returns the
        exact bytes — the caller never sees the outage."""
        sim, node, client = make_single()
        table, query, _wl = upload(client, "T", num_rows=2048)
        reference, _ = client.far_view(table, query)  # warm
        client.retry_policy = RetryPolicy(max_attempts=3,
                                          base_backoff_ns=5_000.0)
        injector = FaultInjector(node)
        sim.schedule(sim.now + 500.0, injector.crash, 0)
        sim.schedule(sim.now + 2_000.0, injector.recover, 0)
        captured = {}

        def reader():
            captured["result"] = yield from client.far_view_proc(table,
                                                                 query)

        proc = sim.process(reader())
        sim.run()
        assert proc.triggered
        assert sha(captured["result"].data) == sha(reference.data)
        assert [kind for _t, kind, _n in injector.applied] == \
            ["node_crash", "node_recover"]


# ---------------------------------------------------------------------------
# Cluster recovery: failover, degraded mode, re-replication, 2PC abort
# ---------------------------------------------------------------------------

class TestClusterRecovery:
    def test_replicated_failover_is_sha_identical(self):
        sim, cluster, cc, sharded, query, _wl = make_cluster(4, 2)
        reference, _ = cc.far_view(sharded, query)
        ref_read = cc.table_read(sharded)[0]
        FaultInjector(cluster).crash(1)
        result, _ = cc.far_view(sharded, query)
        assert sha(result.data) == sha(reference.data)
        assert sha(cc.table_read(sharded)[0]) == sha(ref_read)

    def test_unreplicated_crash_is_typed_never_wrong(self):
        sim, cluster, cc, sharded, query, _wl = make_cluster(4, 1)
        FaultInjector(cluster).crash(1)
        with pytest.raises(NodeFailedError):
            cc.far_view(sharded, query)
        with pytest.raises(NodeFailedError):
            cc.table_read(sharded)

    def test_failover_back_pressure_after_recovery(self):
        """A recovered primary lost its shard (incarnation mismatch):
        queries keep failing over to the replica, still byte-exact."""
        sim, cluster, cc, sharded, query, _wl = make_cluster(4, 2)
        reference, _ = cc.far_view(sharded, query)
        injector = FaultInjector(cluster)
        injector.crash(2)
        injector.recover(2)
        result, _ = cc.far_view(sharded, query)
        assert sha(result.data) == sha(reference.data)

    def test_double_crash_exhausts_replicas_typed(self):
        sim, cluster, cc, sharded, query, _wl = make_cluster(4, 2)
        injector = FaultInjector(cluster)
        injector.crash(1)          # shard 1 primary
        injector.crash(2)          # shard 1's ring replica
        with pytest.raises(NodeFailedError):
            cc.far_view(sharded, query)

    def test_degraded_mode_returns_partial_with_failed_shards(self):
        sim, cluster, cc, sharded, query, wl = make_cluster(2, 1)
        cc.allow_degraded = True
        FaultInjector(cluster).crash(1)
        with pytest.raises(DegradedResultError) as excinfo:
            cc.far_view(sharded, query)
        err = excinfo.value
        assert err.failed_shards == (1,)
        assert err.partial is not None
        # The partial is exactly the surviving shard's contribution: a
        # strict prefix of the no-fault rows under chunk partitioning.
        surviving_rows = err.partial.num_rows
        expected_total = int(wl.predicate.evaluate(wl.rows).sum())
        assert 0 < surviving_rows < expected_total

    def test_broadcast_replicas_reinstalled_after_crash_recover(self):
        """Satellite (b): a dead node's broadcast build replicas are
        pruned (incarnation mismatch) and re-broadcast on recovery —
        never served stale."""
        import numpy as np

        from repro.common.records import Column, Schema
        from repro.core.query import JoinSpec, Query

        sim = Simulator()
        cluster = FarviewCluster(sim, 2, TEST_CONFIG)
        cc = ClusterClient(cluster)
        cc.open_connection()
        wl = selection_workload(256, 0.5, seed=5)
        fact = cc.create_table("fact", wl.schema, wl.rows,
                               PartitionSpec(replicas=2))
        dim_schema = Schema([Column("id", "int64"), Column("rate", "float64")])
        dim_rows = dim_schema.empty(64)
        dim_rows["id"] = np.arange(64)
        dim_rows["rate"] = np.arange(64) * 0.5
        dim = cc.create_table("dim", dim_schema, dim_rows,
                              PartitionSpec(replicas=2))
        query = Query(join=JoinSpec(dim, "id", "a", ("rate",)), label="join")
        reference, _ = cc.far_view(fact, query)  # broadcasts + caches
        cached = cc._join_replicas["dim"]
        assert set(cached) == {0, 1}
        stale_incarnation = cached[1].incarnation

        injector = FaultInjector(cluster)
        injector.crash(1)
        # While node 1 is down the probe fails over to node 0's fact
        # replica and joins against node 0's build copy.
        down, _ = cc.far_view(fact, query)
        assert sha(down.data) == sha(reference.data)
        injector.recover(1)
        # The next join must re-broadcast to the recovered node under
        # its new incarnation — the stale entry may never be served.
        back, _ = cc.far_view(fact, query)
        assert sha(back.data) == sha(reference.data)
        fresh = cc._join_replicas["dim"][1]
        assert fresh.incarnation == cluster.node(1).incarnation
        assert fresh.incarnation > stale_incarnation

    def test_crash_mid_shuffle_is_typed_never_hangs(self):
        """A node crash while the repartition shuffle is writing its
        fragments surfaces a typed :class:`FaultError` — no hang, no
        wrong bytes (k=1: the dead node's fact shard has no copy)."""
        import numpy as np

        from repro.common.records import Column, Schema
        from repro.core.query import JoinSpec, Query

        sim = Simulator()
        cluster = FarviewCluster(sim, 4, TEST_CONFIG)
        cc = ClusterClient(cluster)
        cc.open_connection()
        wl = selection_workload(512, 0.5, seed=11)
        fact = cc.create_table("fact", wl.schema, wl.rows,
                               PartitionSpec("hash", key="a", replicas=1))
        dim_schema = Schema([Column("id", "int64"),
                             Column("rate", "float64")])
        dim_rows = dim_schema.empty(256)
        dim_rows["id"] = np.arange(256)
        dim_rows["rate"] = np.arange(256) * 0.5
        dim = cc.create_table("dim", dim_schema, dim_rows,
                              PartitionSpec(replicas=1))
        query = Query(join=JoinSpec(dim, "id", "a", ("rate",)),
                      label="join")
        outcomes = []

        def worker():
            try:
                yield from cc.far_view_proc(fact, query,
                                            join_strategy="shuffle")
            except FaultError as exc:
                outcomes.append(type(exc))
            else:
                outcomes.append("ok")

        proc = sim.process(worker())
        injector = FaultInjector(cluster)
        sim.schedule(50_000.0, injector.crash, 2)  # mid-shuffle
        sim.run()
        assert proc.triggered, "crashed shuffle join hung"
        assert outcomes and outcomes[0] is not None
        assert outcomes[0] != "ok", \
            "k=1 join succeeded with a node (and its fact shard) dead"
        assert issubclass(outcomes[0], FaultError), \
            f"crash surfaced untyped: {outcomes[0]}"
        # No half-shuffle is left behind: the in-flight job handle is
        # cleared so the next attempt (after recovery) starts clean.
        assert not cc._shuffle_jobs

    def test_shuffle_failover_with_replicas_is_sha_identical(self):
        """k=2 fragment ring: a node crash after (or during) the shuffle
        fails the probe over to the ring copy of both the fact shard and
        its build fragment — merged bytes identical to no-fault."""
        import numpy as np

        from repro.common.records import Column, Schema
        from repro.core.query import JoinSpec, Query

        def build_bench():
            sim = Simulator()
            cluster = FarviewCluster(sim, 4, TEST_CONFIG)
            cc = ClusterClient(cluster)
            cc.open_connection()
            wl = selection_workload(512, 0.5, seed=12)
            fact = cc.create_table(
                "fact", wl.schema, wl.rows,
                PartitionSpec("hash", key="a", replicas=2))
            dim_schema = Schema([Column("id", "int64"),
                                 Column("rate", "float64")])
            dim_rows = dim_schema.empty(256)
            dim_rows["id"] = np.arange(256)
            dim_rows["rate"] = np.arange(256) * 0.5
            dim = cc.create_table("dim", dim_schema, dim_rows,
                                  PartitionSpec(replicas=2))
            query = Query(join=JoinSpec(dim, "id", "a", ("rate",)),
                          label="join")
            return sim, cluster, cc, fact, query

        _sim, _cluster, cc0, fact0, query0 = build_bench()
        reference, _ = cc0.far_view(fact0, query0,
                                    join_strategy="shuffle")
        ref_sha = sha(reference.data)

        # Crash after the shuffle is cached: stale fragments on the dead
        # node are pruned (incarnation mismatch) and the probe fails
        # over to the ring copies.
        sim, cluster, cc, fact, query = build_bench()
        cc.far_view(fact, query, join_strategy="shuffle")  # warm + cache
        FaultInjector(cluster).crash(1)
        after, _ = cc.far_view(fact, query, join_strategy="shuffle")
        assert sha(after.data) == ref_sha, \
            "post-crash shuffle failover changed the merged bytes"

        # Crash mid-shuffle: the ensure loop retries onto the survivors
        # and the k=2 ring still covers every fact shard.
        sim, cluster, cc, fact, query = build_bench()
        captured = {}

        def worker():
            result = yield from cc.far_view_proc(fact, query,
                                                 join_strategy="shuffle")
            captured["result"] = result

        proc = sim.process(worker())
        injector = FaultInjector(cluster)
        sim.schedule(50_000.0, injector.crash, 3)
        sim.run()
        assert proc.triggered, "mid-shuffle crash hung the join"
        assert sha(captured["result"].data) == ref_sha, \
            "mid-shuffle crash changed the merged bytes"

    def test_two_phase_abort_keeps_epochs_aligned(self):
        """A node crash between prepare and commit aborts the batch:
        every surviving shard stays at the old epoch (no split brain)."""
        from repro.operators.selection import Compare
        from repro.workloads.generator import make_rows
        from repro.common.records import default_schema

        sim = Simulator()
        cluster = FarviewCluster(sim, 4, TEST_CONFIG)
        cc = ClusterClient(cluster)
        cc.open_connection()
        schema = default_schema()
        rows = make_rows(schema, 64, seed=9)
        vst = cc.create_versioned_table("v", schema, rows)
        epoch_before = vst.epoch
        FaultInjector(cluster).crash(2)
        with pytest.raises(FaultError):
            cc.update_where(vst, Compare("a", "<", 10**9), {"c": 1})
        assert vst.epoch == epoch_before
        live_epochs = {s.table.epoch for i, s in enumerate(vst.shards)
                       if i != 2}
        assert live_epochs == {epoch_before}, \
            "abort left surviving shards at mixed epochs"

    def test_cluster_planner_ships_around_failed_regions(self):
        """Graceful degradation: placement='auto' reroutes a region
        failure to the ship path, byte-identically."""
        sim, cluster, cc, sharded, query, _wl = make_cluster(2, 1)
        reference, _ = cc.far_view(sharded, query)
        injector = FaultInjector(cluster)
        for region in range(len(cluster.node(0).regions.regions)):
            injector.fail_region(0, region)
        result, _ = cc.far_view_planned(sharded, query, placement="auto",
                                        stats=PlanStats(selectivity=0.5))
        assert sha(result.data) == sha(reference.data)
        with pytest.raises(RegionFailedError):
            cc.far_view_planned(sharded, query, placement="offload",
                                stats=PlanStats(selectivity=0.5))

    def test_random_chaos_runs_stay_exact(self):
        """Random plan sweep (seeded by the CI chaos matrix): every
        successful query byte-identical to no-fault, every failure
        typed, no hangs."""
        _sim0, _c0, cc0, sharded0, query0, _wl = make_cluster(4, 2, seed=21)
        reference, _ = cc0.far_view(sharded0, query0)
        ref_sha = sha(reference.data)
        for round_seed in range(3):
            sim, cluster, cc, sharded, query, _wl = make_cluster(
                4, 2, seed=21)
            cc.retry_policy = RetryPolicy(max_attempts=2,
                                          base_backoff_ns=1_000.0)
            plan = FaultPlan.random(
                100 * CHAOS_SEED + round_seed, 4,
                horizon_ns=sim.now + 40_000.0,
                crashes=2, degrades=1, region_fails=1)
            FaultInjector(cluster, plan).install()
            outcomes = []

            def worker():
                for _round in range(4):
                    try:
                        result = yield from cc.far_view_proc(sharded, query)
                    except FaultError as exc:
                        outcomes.append(("err", type(exc).__name__))
                    else:
                        outcomes.append(("ok", sha(result.data)))

            proc = sim.process(worker())
            sim.run()
            assert proc.triggered, "chaos run hung"
            for tag, detail in outcomes:
                if tag == "ok":
                    assert detail == ref_sha, "chaos produced wrong bytes"


# ---------------------------------------------------------------------------
# Materialized views under faults: typed refusal, no partial push,
# re-bootstrap convergence
# ---------------------------------------------------------------------------

VIEW_SQL = "SELECT c, COUNT(*) AS n FROM v GROUP BY c"


class TestViewFaults:
    """A view refresh is transactional against faults: it either folds
    the whole pending batch into every view and subscriber, or a typed
    :class:`FaultError` leaves view state, subscribers, and the pending
    segments untouched — never a hang, never a partial push."""

    @staticmethod
    def _view_bench():
        import numpy as np

        from repro.common.records import default_schema
        from repro.workloads.generator import make_rows

        sim = Simulator()
        cluster = FarviewCluster(sim, 4, TEST_CONFIG)
        cc = ClusterClient(cluster)
        cc.open_connection()
        schema = default_schema()
        rows = make_rows(schema, 512, seed=13 + CHAOS_SEED)
        rows["a"] = np.arange(512)
        vst = cc.create_versioned_table("v", schema, rows)
        view, _ = cc.create_view(VIEW_SQL, name="faultview")
        sub = cc.subscribe(view, auto=False)   # refresh on demand
        return sim, cluster, cc, schema, vst, view, sub

    def test_crash_mid_refresh_typed_no_partial_push(self):
        from repro.operators.selection import Compare

        sim, cluster, cc, _schema, vst, view, sub = self._view_bench()
        cc.update_where(vst, Compare("a", "<", 512), {"c": 7})
        cc.update_where(vst, Compare("a", "<", 256), {"d": 9})
        before_sha = view.sha256()
        before_steps = view.refresh_count
        before_pushed = sub.rows_pushed
        outcomes = []

        def refresher():
            try:
                yield from cc.refresh_views_proc()
            except FaultError as exc:
                outcomes.append(exc)
            else:
                outcomes.append(None)

        proc = sim.process(refresher())
        injector = FaultInjector(cluster)
        sim.schedule(1_000.0, injector.crash, 2)  # mid-read
        sim.run()
        assert proc.triggered, "crashed refresh hung"
        assert len(outcomes) == 1 and isinstance(outcomes[0], FaultError), \
            "mid-refresh crash did not surface a typed FaultError"
        assert view.sha256() == before_sha, \
            "failed refresh left partial view state"
        assert view.refresh_count == before_steps
        assert sub.rows_pushed == before_pushed, \
            "failed refresh pushed a partial update"
        # The whole batch stayed pending: recovery + one refresh folds
        # every committed delta row exactly once.
        injector.recover(2)
        stats, _ = cc.refresh_views()
        assert stats.delta_rows == 512 + 256, \
            "recovered refresh dropped or double-counted delta rows"
        rescan, _ = cc.create_view(VIEW_SQL, name="rescan")
        assert view.sha256() == rescan.sha256() == sub.sha256(), \
            "recovered refresh diverged from a fresh rescan"

    def test_bootstrap_crash_leaves_no_half_registered_view(self):
        """A typed failure while a new view bootstraps unwinds
        completely: no catalog entry, no leaked listener, no pin."""
        from repro.workloads.generator import make_rows

        sim, cluster, cc, schema, _vst, _view, _sub = self._view_bench()
        vst2 = cc.create_versioned_table(
            "w", schema, make_rows(schema, 128, seed=14 + CHAOS_SEED))
        assert all(s.table.num_listeners == 0 for s in vst2.shards)
        FaultInjector(cluster).crash(1)
        with pytest.raises(FaultError):
            cc.create_view("SELECT c, COUNT(*) AS n FROM w GROUP BY c",
                           name="doomed")
        assert "doomed" not in cc.views.views
        assert "w" not in cc.views.trackers, "abandoned tracker leaked"
        assert all(s.table.num_listeners == 0 for s in vst2.shards), \
            "abandoned bootstrap leaked a chain listener"
        assert all(s.table.active_pins == 0 for s in vst2.shards), \
            "abandoned bootstrap leaked an epoch pin"

    def test_rebootstrap_after_fault_converges_to_rescan(self):
        from repro.operators.selection import Compare

        sim, cluster, cc, _schema, vst, view, sub = self._view_bench()
        cc.update_where(vst, Compare("a", "<", 300), {"c": 3})
        injector = FaultInjector(cluster)
        injector.crash(0)
        with pytest.raises(FaultError):
            cc.refresh_views()
        injector.recover(0)
        fresh, _ = cc.rebootstrap_view(view)
        assert sub.view is fresh, "subscription did not rebind"
        rescan, _ = cc.create_view(VIEW_SQL, name="rescan")
        assert fresh.sha256() == rescan.sha256() == sub.sha256(), \
            "re-bootstrapped subscriber diverged from the rescan"
